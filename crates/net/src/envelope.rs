//! The datagram envelope: versioned, CRC-guarded framing for one UDP packet.
//!
//! Every datagram on the wire is one envelope:
//!
//! ```text
//! offset  size  field
//!      0     4  magic        "TLDG"
//!      4     1  version      0x01
//!      5     1  kind         0 = protocol (codec::WireMessage), 1 = control
//!      6     4  sender       NodeId, big-endian
//!     10     8  msg seq      monotonic per sender; a request keeps its seq
//!                            across retries so retransmissions are idempotent
//!     18     8  req id       0 for unsolicited traffic; a reply echoes the
//!                            request's msg seq here for correlation
//!     26     2  frag index   0-based fragment number
//!     28     2  frag count   total fragments of this message (>= 1)
//!     30     2  payload len  bytes of payload in *this* datagram
//!     32     N  payload      one fragment of the encoded message
//!   32+N     E  extensions   optional TLV records (see below), may be empty
//! 32+N+E     4  CRC-32       over bytes [0, 32+N+E)
//! ```
//!
//! The **extension region** between payload and CRC is a sequence of
//! `[tag u8][len u8][len bytes]` records. Decoders skip records with
//! unknown tags, which is what makes extensions version-tolerant: a peer
//! that predates a tag ignores it and still delivers the payload. The CRC
//! covers the extensions, so corruption there is rejected like anywhere
//! else. The only tag defined today is [`EXT_TRACE`]: a 28-byte
//! [`TraceContext`] `(origin u32, slot u64, prefix u64, ts_micros u64)`
//! stitching a block's receive/verify spans on remote nodes back to its
//! originator. It is attached only when tracing is enabled, so
//! tracing-off runs put exactly the v1 bytes on the wire.
//!
//! Messages larger than one MTU-sized datagram (full blocks, mostly) are
//! split into fragments sharing the sender's msg seq; [`crate::frag`]
//! reassembles them. Decoding validates every field and the checksum — a
//! malformed or bit-flipped datagram yields a clean [`NetError`], never a
//! panic, and the CRC rejects any single-bit corruption outright.

use crate::NetError;
use tldag_sim::NodeId;
use tldag_storage::crc32::crc32;

/// Leading magic of every tldag datagram.
pub const MAGIC: [u8; 4] = *b"TLDG";
/// Wire protocol version carried in every envelope.
pub const PROTOCOL_VERSION: u8 = 1;
/// Fixed header bytes before the payload.
pub const HEADER_LEN: usize = 32;
/// Trailing CRC bytes after the payload.
pub const TRAILER_LEN: usize = 4;
/// Total framing overhead per datagram.
pub const OVERHEAD: usize = HEADER_LEN + TRAILER_LEN;
/// Default datagram budget: conservative Ethernet MTU minus IP/UDP headers.
pub const DEFAULT_MTU: usize = 1400;
/// Extension tag carrying a [`TraceContext`].
pub const EXT_TRACE: u8 = 0x01;
/// Encoded size of a [`TraceContext`] extension body.
const TRACE_BODY_LEN: usize = 28;
/// On-wire size of a trace extension record (tag + len + body).
pub const TRACE_EXT_LEN: usize = 2 + TRACE_BODY_LEN;

/// The causal trace context riding the extension region: identifies the
/// block whose lifecycle this datagram advances, so spans recorded on the
/// receiver stitch to the originator's.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct TraceContext {
    /// Node that generated the block.
    pub origin: u32,
    /// The block's generation slot.
    pub slot: u64,
    /// First 8 bytes (big-endian) of the block's header digest.
    pub prefix: u64,
    /// Sender wall clock, microseconds since the UNIX epoch.
    pub ts_micros: u64,
}

impl TraceContext {
    fn encode_into(&self, out: &mut Vec<u8>) {
        out.push(EXT_TRACE);
        out.push(TRACE_BODY_LEN as u8);
        out.extend_from_slice(&self.origin.to_be_bytes());
        out.extend_from_slice(&self.slot.to_be_bytes());
        out.extend_from_slice(&self.prefix.to_be_bytes());
        out.extend_from_slice(&self.ts_micros.to_be_bytes());
    }

    fn decode(body: &[u8]) -> Option<Self> {
        if body.len() != TRACE_BODY_LEN {
            return None;
        }
        Some(TraceContext {
            origin: u32::from_be_bytes(body[0..4].try_into().ok()?),
            slot: u64::from_be_bytes(body[4..12].try_into().ok()?),
            prefix: u64::from_be_bytes(body[12..20].try_into().ok()?),
            ts_micros: u64::from_be_bytes(body[20..28].try_into().ok()?),
        })
    }
}

/// What the payload of an envelope is.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Kind {
    /// A `tldag_core::codec::WireMessage` (the Sec. IV-C message set).
    Wire,
    /// A `crate::control` runtime message (gossip sync, liveness, reports).
    Control,
}

impl Kind {
    fn to_byte(self) -> u8 {
        match self {
            Kind::Wire => 0,
            Kind::Control => 1,
        }
    }

    fn from_byte(b: u8) -> Result<Self, NetError> {
        match b {
            0 => Ok(Kind::Wire),
            1 => Ok(Kind::Control),
            other => Err(NetError::BadKind(other)),
        }
    }
}

/// A decoded envelope header (the payload is returned alongside).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct Envelope {
    /// Payload channel.
    pub kind: Kind,
    /// The sending node.
    pub sender: NodeId,
    /// Sender-monotonic message sequence number.
    pub msg_seq: u64,
    /// 0 for unsolicited traffic; otherwise the request seq being answered.
    pub req_id: u64,
    /// 0-based fragment index.
    pub frag_index: u16,
    /// Total fragments of the message this datagram belongs to.
    pub frag_count: u16,
    /// Trace context from the extension region, when the sender attached
    /// one (and this decoder recognised it).
    pub trace: Option<TraceContext>,
}

/// Encodes one datagram carrying one fragment.
fn encode_datagram(env: &Envelope, payload: &[u8]) -> Vec<u8> {
    debug_assert!(payload.len() <= u16::MAX as usize);
    let mut out = Vec::with_capacity(OVERHEAD + TRACE_EXT_LEN + payload.len());
    out.extend_from_slice(&MAGIC);
    out.push(PROTOCOL_VERSION);
    out.push(env.kind.to_byte());
    out.extend_from_slice(&env.sender.0.to_be_bytes());
    out.extend_from_slice(&env.msg_seq.to_be_bytes());
    out.extend_from_slice(&env.req_id.to_be_bytes());
    out.extend_from_slice(&env.frag_index.to_be_bytes());
    out.extend_from_slice(&env.frag_count.to_be_bytes());
    out.extend_from_slice(&(payload.len() as u16).to_be_bytes());
    out.extend_from_slice(payload);
    if let Some(trace) = &env.trace {
        trace.encode_into(&mut out);
    }
    let crc = crc32(&out);
    out.extend_from_slice(&crc.to_be_bytes());
    out
}

/// Splits `payload` into MTU-sized datagrams sharing `msg_seq`.
///
/// A message that fits in one datagram yields exactly one; larger messages
/// fragment with ascending `frag_index`. Retransmitting the returned
/// datagrams verbatim is safe: reassembly ignores duplicate *fragments* of
/// an in-flight message, and replies are correlated (exactly once) by the
/// request's `msg_seq`. A retransmitted message that already completed is
/// delivered to the handler again, so unsolicited-message handlers must be
/// idempotent — the runtime's are (requests re-serve, gossip re-inserts).
///
/// # Errors
///
/// [`NetError::Oversize`] when the message would need more than `u16::MAX`
/// fragments, or when `mtu` leaves no payload room.
pub fn encode_message(
    kind: Kind,
    sender: NodeId,
    msg_seq: u64,
    req_id: u64,
    payload: &[u8],
    mtu: usize,
) -> Result<Vec<Vec<u8>>, NetError> {
    encode_message_traced(kind, sender, msg_seq, req_id, payload, mtu, None)
}

/// [`encode_message`] with an optional [`TraceContext`] attached to
/// **every** fragment's extension region, so reassembly completion always
/// has the context no matter which fragment arrived last. The extension
/// bytes count against the MTU budget.
///
/// # Errors
///
/// As [`encode_message`].
#[allow(clippy::too_many_arguments)]
pub fn encode_message_traced(
    kind: Kind,
    sender: NodeId,
    msg_seq: u64,
    req_id: u64,
    payload: &[u8],
    mtu: usize,
    trace: Option<TraceContext>,
) -> Result<Vec<Vec<u8>>, NetError> {
    let ext_len = if trace.is_some() { TRACE_EXT_LEN } else { 0 };
    let room = mtu
        .saturating_sub(OVERHEAD + ext_len)
        .min(u16::MAX as usize);
    if room == 0 {
        return Err(NetError::Oversize);
    }
    let frag_count = payload.len().div_ceil(room).max(1);
    if frag_count > u16::MAX as usize {
        return Err(NetError::Oversize);
    }
    let mut out = Vec::with_capacity(frag_count);
    for i in 0..frag_count {
        let chunk = &payload[i * room..payload.len().min((i + 1) * room)];
        out.push(encode_datagram(
            &Envelope {
                kind,
                sender,
                msg_seq,
                req_id,
                frag_index: i as u16,
                frag_count: frag_count as u16,
                trace,
            },
            chunk,
        ));
    }
    Ok(out)
}

/// Parses the extension region, returning the first recognised trace
/// context. Unknown tags are skipped (forward compatibility); a record
/// whose stated length overruns the region is a framing violation.
fn parse_extensions(mut ext: &[u8]) -> Result<Option<TraceContext>, NetError> {
    let mut trace = None;
    while !ext.is_empty() {
        if ext.len() < 2 {
            return Err(NetError::LengthMismatch);
        }
        let (tag, len) = (ext[0], ext[1] as usize);
        if ext.len() < 2 + len {
            return Err(NetError::LengthMismatch);
        }
        let body = &ext[2..2 + len];
        if tag == EXT_TRACE && trace.is_none() {
            // A recognised tag with a malformed body is a framing violation
            // (the CRC already passed, so this is a sender bug, not noise).
            trace = Some(TraceContext::decode(body).ok_or(NetError::LengthMismatch)?);
        }
        ext = &ext[2 + len..];
    }
    Ok(trace)
}

/// Decodes one datagram into its envelope header and payload fragment.
///
/// Validation order: size, magic, checksum, version, kind, fragment sanity,
/// and length agreement — so a corrupted datagram is rejected by the
/// CRC and a foreign datagram by the magic, each as a distinct error the
/// transport can count. Bytes between the stated payload end and the CRC
/// are the extension region: well-formed TLV records with unknown tags are
/// skipped, anything else is a [`NetError::LengthMismatch`].
///
/// # Errors
///
/// A [`NetError`] naming the first violated invariant.
pub fn decode_datagram(data: &[u8]) -> Result<(Envelope, &[u8]), NetError> {
    if data.len() < OVERHEAD {
        return Err(NetError::Truncated);
    }
    if data[..4] != MAGIC {
        return Err(NetError::BadMagic);
    }
    let body = &data[..data.len() - TRAILER_LEN];
    let stated_crc = u32::from_be_bytes(data[data.len() - TRAILER_LEN..].try_into().expect("4"));
    if crc32(body) != stated_crc {
        return Err(NetError::BadCrc);
    }
    let version = data[4];
    if version != PROTOCOL_VERSION {
        return Err(NetError::BadVersion(version));
    }
    let kind = Kind::from_byte(data[5])?;
    let sender = NodeId(u32::from_be_bytes(data[6..10].try_into().expect("4")));
    let msg_seq = u64::from_be_bytes(data[10..18].try_into().expect("8"));
    let req_id = u64::from_be_bytes(data[18..26].try_into().expect("8"));
    let frag_index = u16::from_be_bytes(data[26..28].try_into().expect("2"));
    let frag_count = u16::from_be_bytes(data[28..30].try_into().expect("2"));
    let payload_len = u16::from_be_bytes(data[30..32].try_into().expect("2")) as usize;
    if frag_count == 0 || frag_index >= frag_count {
        return Err(NetError::BadFragment);
    }
    if payload_len > data.len() - OVERHEAD {
        return Err(NetError::LengthMismatch);
    }
    let trace = parse_extensions(&data[HEADER_LEN + payload_len..data.len() - TRAILER_LEN])?;
    Ok((
        Envelope {
            kind,
            sender,
            msg_seq,
            req_id,
            frag_index,
            frag_count,
            trace,
        },
        &data[HEADER_LEN..HEADER_LEN + payload_len],
    ))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn single_datagram_round_trip() {
        let frames = encode_message(Kind::Wire, NodeId(7), 42, 9, b"hello", 1400).unwrap();
        assert_eq!(frames.len(), 1);
        let (env, payload) = decode_datagram(&frames[0]).unwrap();
        assert_eq!(env.sender, NodeId(7));
        assert_eq!(env.msg_seq, 42);
        assert_eq!(env.req_id, 9);
        assert_eq!(env.kind, Kind::Wire);
        assert_eq!((env.frag_index, env.frag_count), (0, 1));
        assert_eq!(payload, b"hello");
    }

    #[test]
    fn empty_payload_still_yields_one_datagram() {
        let frames = encode_message(Kind::Control, NodeId(1), 1, 0, b"", 1400).unwrap();
        assert_eq!(frames.len(), 1);
        let (env, payload) = decode_datagram(&frames[0]).unwrap();
        assert_eq!(env.frag_count, 1);
        assert!(payload.is_empty());
    }

    #[test]
    fn large_message_fragments_and_each_fragment_decodes() {
        let payload: Vec<u8> = (0..5000u32).map(|i| i as u8).collect();
        let frames = encode_message(Kind::Wire, NodeId(2), 3, 0, &payload, 1400).unwrap();
        assert!(frames.len() > 1);
        let mut rebuilt = Vec::new();
        for (i, frame) in frames.iter().enumerate() {
            assert!(frame.len() <= 1400, "fragment exceeds MTU");
            let (env, chunk) = decode_datagram(frame).unwrap();
            assert_eq!(env.frag_index as usize, i);
            assert_eq!(env.frag_count as usize, frames.len());
            rebuilt.extend_from_slice(chunk);
        }
        assert_eq!(rebuilt, payload);
    }

    #[test]
    fn truncation_is_always_an_error() {
        let frames = encode_message(Kind::Wire, NodeId(1), 5, 0, b"payload bytes", 1400).unwrap();
        let frame = &frames[0];
        for len in 0..frame.len() {
            assert!(decode_datagram(&frame[..len]).is_err(), "prefix {len}");
        }
    }

    #[test]
    fn any_single_bit_flip_is_rejected() {
        let frames = encode_message(Kind::Wire, NodeId(1), 5, 0, b"abc", 1400).unwrap();
        let frame = &frames[0];
        for byte in 0..frame.len() {
            for bit in 0..8 {
                let mut tampered = frame.clone();
                tampered[byte] ^= 1 << bit;
                assert!(
                    decode_datagram(&tampered).is_err(),
                    "flip at byte {byte} bit {bit} must not decode"
                );
            }
        }
    }

    #[test]
    fn foreign_and_future_datagrams_classified() {
        assert_eq!(decode_datagram(&[0u8; 10]), Err(NetError::Truncated));
        let mut foreign = vec![0u8; OVERHEAD];
        foreign[..4].copy_from_slice(b"QUIC");
        assert_eq!(decode_datagram(&foreign), Err(NetError::BadMagic));
        // A future protocol version with a valid checksum is reported as such.
        let mut frame = encode_message(Kind::Wire, NodeId(1), 1, 0, b"x", 1400)
            .unwrap()
            .remove(0);
        frame[4] = 9;
        let body_len = frame.len() - TRAILER_LEN;
        let crc = crc32(&frame[..body_len]).to_be_bytes();
        frame[body_len..].copy_from_slice(&crc);
        assert_eq!(decode_datagram(&frame), Err(NetError::BadVersion(9)));
    }

    #[test]
    fn zero_room_mtu_is_refused() {
        assert_eq!(
            encode_message(Kind::Wire, NodeId(1), 1, 0, b"x", OVERHEAD),
            Err(NetError::Oversize)
        );
    }

    fn trace() -> TraceContext {
        TraceContext {
            origin: 3,
            slot: 17,
            prefix: 0xdead_beef_cafe_f00d,
            ts_micros: 1_700_000_000_000_000,
        }
    }

    #[test]
    fn trace_context_rides_every_fragment() {
        let payload: Vec<u8> = (0..5000u32).map(|i| i as u8).collect();
        let frames =
            encode_message_traced(Kind::Wire, NodeId(2), 3, 0, &payload, 1400, Some(trace()))
                .unwrap();
        assert!(frames.len() > 1);
        let mut rebuilt = Vec::new();
        for frame in &frames {
            assert!(frame.len() <= 1400, "extension must fit the MTU budget");
            let (env, chunk) = decode_datagram(frame).unwrap();
            assert_eq!(env.trace, Some(trace()));
            rebuilt.extend_from_slice(chunk);
        }
        assert_eq!(rebuilt, payload);
    }

    #[test]
    fn untraced_frames_carry_no_extension_bytes() {
        let plain = encode_message(Kind::Control, NodeId(1), 1, 0, b"x", 1400).unwrap();
        let (env, _) = decode_datagram(&plain[0]).unwrap();
        assert_eq!(env.trace, None);
        assert_eq!(plain[0].len(), OVERHEAD + 1, "exactly the v1 bytes");
    }

    #[test]
    fn unknown_extension_tags_are_skipped() {
        // Hand-build a datagram with an unknown ext record before the trace
        // record: a future peer's datagram must still decode here.
        let frames =
            encode_message_traced(Kind::Wire, NodeId(1), 9, 0, b"hi", 1400, Some(trace())).unwrap();
        let frame = &frames[0];
        let body_end = frame.len() - TRAILER_LEN;
        let mut future = frame[..body_end].to_vec();
        let trace_ext_start = HEADER_LEN + 2;
        let trace_ext = frame[trace_ext_start..body_end].to_vec();
        future.truncate(trace_ext_start);
        future.extend_from_slice(&[0x7f, 3, 1, 2, 3]); // unknown tag 0x7f
        future.extend_from_slice(&trace_ext);
        let crc = crc32(&future).to_be_bytes();
        future.extend_from_slice(&crc);
        let (env, payload) = decode_datagram(&future).unwrap();
        assert_eq!(payload, b"hi");
        assert_eq!(env.trace, Some(trace()), "trace survives after unknown tag");

        // Only the unknown record: decodes cleanly with no trace.
        let mut unknown_only = frame[..trace_ext_start].to_vec();
        unknown_only.extend_from_slice(&[0x7f, 0]);
        let crc = crc32(&unknown_only).to_be_bytes();
        unknown_only.extend_from_slice(&crc);
        let (env, _) = decode_datagram(&unknown_only).unwrap();
        assert_eq!(env.trace, None);
    }

    #[test]
    fn malformed_extension_region_is_rejected() {
        let frames = encode_message(Kind::Wire, NodeId(1), 9, 0, b"hi", 1400).unwrap();
        let frame = &frames[0];
        let body_end = frame.len() - TRAILER_LEN;
        // A lone tag byte (truncated TLV) and a record overrunning the
        // region are both framing violations, not silent successes.
        for ext in [&[0x01u8][..], &[0x01, 200, 1, 2][..]] {
            let mut bad = frame[..body_end].to_vec();
            bad.extend_from_slice(ext);
            let crc = crc32(&bad).to_be_bytes();
            bad.extend_from_slice(&crc);
            assert_eq!(decode_datagram(&bad), Err(NetError::LengthMismatch));
        }
    }
}
