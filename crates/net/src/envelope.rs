//! The datagram envelope: versioned, CRC-guarded framing for one UDP packet.
//!
//! Every datagram on the wire is one envelope:
//!
//! ```text
//! offset  size  field
//!      0     4  magic        "TLDG"
//!      4     1  version      0x01
//!      5     1  kind         0 = protocol (codec::WireMessage), 1 = control
//!      6     4  sender       NodeId, big-endian
//!     10     8  msg seq      monotonic per sender; a request keeps its seq
//!                            across retries so retransmissions are idempotent
//!     18     8  req id       0 for unsolicited traffic; a reply echoes the
//!                            request's msg seq here for correlation
//!     26     2  frag index   0-based fragment number
//!     28     2  frag count   total fragments of this message (>= 1)
//!     30     2  payload len  bytes of payload in *this* datagram
//!     32     N  payload      one fragment of the encoded message
//!   32+N     4  CRC-32       over bytes [0, 32+N)
//! ```
//!
//! Messages larger than one MTU-sized datagram (full blocks, mostly) are
//! split into fragments sharing the sender's msg seq; [`crate::frag`]
//! reassembles them. Decoding validates every field and the checksum — a
//! malformed or bit-flipped datagram yields a clean [`NetError`], never a
//! panic, and the CRC rejects any single-bit corruption outright.

use crate::NetError;
use tldag_sim::NodeId;
use tldag_storage::crc32::crc32;

/// Leading magic of every tldag datagram.
pub const MAGIC: [u8; 4] = *b"TLDG";
/// Wire protocol version carried in every envelope.
pub const PROTOCOL_VERSION: u8 = 1;
/// Fixed header bytes before the payload.
pub const HEADER_LEN: usize = 32;
/// Trailing CRC bytes after the payload.
pub const TRAILER_LEN: usize = 4;
/// Total framing overhead per datagram.
pub const OVERHEAD: usize = HEADER_LEN + TRAILER_LEN;
/// Default datagram budget: conservative Ethernet MTU minus IP/UDP headers.
pub const DEFAULT_MTU: usize = 1400;

/// What the payload of an envelope is.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Kind {
    /// A `tldag_core::codec::WireMessage` (the Sec. IV-C message set).
    Wire,
    /// A `crate::control` runtime message (gossip sync, liveness, reports).
    Control,
}

impl Kind {
    fn to_byte(self) -> u8 {
        match self {
            Kind::Wire => 0,
            Kind::Control => 1,
        }
    }

    fn from_byte(b: u8) -> Result<Self, NetError> {
        match b {
            0 => Ok(Kind::Wire),
            1 => Ok(Kind::Control),
            other => Err(NetError::BadKind(other)),
        }
    }
}

/// A decoded envelope header (the payload is returned alongside).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct Envelope {
    /// Payload channel.
    pub kind: Kind,
    /// The sending node.
    pub sender: NodeId,
    /// Sender-monotonic message sequence number.
    pub msg_seq: u64,
    /// 0 for unsolicited traffic; otherwise the request seq being answered.
    pub req_id: u64,
    /// 0-based fragment index.
    pub frag_index: u16,
    /// Total fragments of the message this datagram belongs to.
    pub frag_count: u16,
}

/// Encodes one datagram carrying one fragment.
fn encode_datagram(env: &Envelope, payload: &[u8]) -> Vec<u8> {
    debug_assert!(payload.len() <= u16::MAX as usize);
    let mut out = Vec::with_capacity(OVERHEAD + payload.len());
    out.extend_from_slice(&MAGIC);
    out.push(PROTOCOL_VERSION);
    out.push(env.kind.to_byte());
    out.extend_from_slice(&env.sender.0.to_be_bytes());
    out.extend_from_slice(&env.msg_seq.to_be_bytes());
    out.extend_from_slice(&env.req_id.to_be_bytes());
    out.extend_from_slice(&env.frag_index.to_be_bytes());
    out.extend_from_slice(&env.frag_count.to_be_bytes());
    out.extend_from_slice(&(payload.len() as u16).to_be_bytes());
    out.extend_from_slice(payload);
    let crc = crc32(&out);
    out.extend_from_slice(&crc.to_be_bytes());
    out
}

/// Splits `payload` into MTU-sized datagrams sharing `msg_seq`.
///
/// A message that fits in one datagram yields exactly one; larger messages
/// fragment with ascending `frag_index`. Retransmitting the returned
/// datagrams verbatim is safe: reassembly ignores duplicate *fragments* of
/// an in-flight message, and replies are correlated (exactly once) by the
/// request's `msg_seq`. A retransmitted message that already completed is
/// delivered to the handler again, so unsolicited-message handlers must be
/// idempotent — the runtime's are (requests re-serve, gossip re-inserts).
///
/// # Errors
///
/// [`NetError::Oversize`] when the message would need more than `u16::MAX`
/// fragments, or when `mtu` leaves no payload room.
pub fn encode_message(
    kind: Kind,
    sender: NodeId,
    msg_seq: u64,
    req_id: u64,
    payload: &[u8],
    mtu: usize,
) -> Result<Vec<Vec<u8>>, NetError> {
    let room = mtu.saturating_sub(OVERHEAD).min(u16::MAX as usize);
    if room == 0 {
        return Err(NetError::Oversize);
    }
    let frag_count = payload.len().div_ceil(room).max(1);
    if frag_count > u16::MAX as usize {
        return Err(NetError::Oversize);
    }
    let mut out = Vec::with_capacity(frag_count);
    for i in 0..frag_count {
        let chunk = &payload[i * room..payload.len().min((i + 1) * room)];
        out.push(encode_datagram(
            &Envelope {
                kind,
                sender,
                msg_seq,
                req_id,
                frag_index: i as u16,
                frag_count: frag_count as u16,
            },
            chunk,
        ));
    }
    Ok(out)
}

/// Decodes one datagram into its envelope header and payload fragment.
///
/// Validation order: size, magic, checksum, version, kind, fragment sanity,
/// and exact length agreement — so a corrupted datagram is rejected by the
/// CRC and a foreign datagram by the magic, each as a distinct error the
/// transport can count.
///
/// # Errors
///
/// A [`NetError`] naming the first violated invariant.
pub fn decode_datagram(data: &[u8]) -> Result<(Envelope, &[u8]), NetError> {
    if data.len() < OVERHEAD {
        return Err(NetError::Truncated);
    }
    if data[..4] != MAGIC {
        return Err(NetError::BadMagic);
    }
    let body = &data[..data.len() - TRAILER_LEN];
    let stated_crc = u32::from_be_bytes(data[data.len() - TRAILER_LEN..].try_into().expect("4"));
    if crc32(body) != stated_crc {
        return Err(NetError::BadCrc);
    }
    let version = data[4];
    if version != PROTOCOL_VERSION {
        return Err(NetError::BadVersion(version));
    }
    let kind = Kind::from_byte(data[5])?;
    let sender = NodeId(u32::from_be_bytes(data[6..10].try_into().expect("4")));
    let msg_seq = u64::from_be_bytes(data[10..18].try_into().expect("8"));
    let req_id = u64::from_be_bytes(data[18..26].try_into().expect("8"));
    let frag_index = u16::from_be_bytes(data[26..28].try_into().expect("2"));
    let frag_count = u16::from_be_bytes(data[28..30].try_into().expect("2"));
    let payload_len = u16::from_be_bytes(data[30..32].try_into().expect("2")) as usize;
    if frag_count == 0 || frag_index >= frag_count {
        return Err(NetError::BadFragment);
    }
    if payload_len != data.len() - OVERHEAD {
        return Err(NetError::LengthMismatch);
    }
    Ok((
        Envelope {
            kind,
            sender,
            msg_seq,
            req_id,
            frag_index,
            frag_count,
        },
        &data[HEADER_LEN..HEADER_LEN + payload_len],
    ))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn single_datagram_round_trip() {
        let frames = encode_message(Kind::Wire, NodeId(7), 42, 9, b"hello", 1400).unwrap();
        assert_eq!(frames.len(), 1);
        let (env, payload) = decode_datagram(&frames[0]).unwrap();
        assert_eq!(env.sender, NodeId(7));
        assert_eq!(env.msg_seq, 42);
        assert_eq!(env.req_id, 9);
        assert_eq!(env.kind, Kind::Wire);
        assert_eq!((env.frag_index, env.frag_count), (0, 1));
        assert_eq!(payload, b"hello");
    }

    #[test]
    fn empty_payload_still_yields_one_datagram() {
        let frames = encode_message(Kind::Control, NodeId(1), 1, 0, b"", 1400).unwrap();
        assert_eq!(frames.len(), 1);
        let (env, payload) = decode_datagram(&frames[0]).unwrap();
        assert_eq!(env.frag_count, 1);
        assert!(payload.is_empty());
    }

    #[test]
    fn large_message_fragments_and_each_fragment_decodes() {
        let payload: Vec<u8> = (0..5000u32).map(|i| i as u8).collect();
        let frames = encode_message(Kind::Wire, NodeId(2), 3, 0, &payload, 1400).unwrap();
        assert!(frames.len() > 1);
        let mut rebuilt = Vec::new();
        for (i, frame) in frames.iter().enumerate() {
            assert!(frame.len() <= 1400, "fragment exceeds MTU");
            let (env, chunk) = decode_datagram(frame).unwrap();
            assert_eq!(env.frag_index as usize, i);
            assert_eq!(env.frag_count as usize, frames.len());
            rebuilt.extend_from_slice(chunk);
        }
        assert_eq!(rebuilt, payload);
    }

    #[test]
    fn truncation_is_always_an_error() {
        let frames = encode_message(Kind::Wire, NodeId(1), 5, 0, b"payload bytes", 1400).unwrap();
        let frame = &frames[0];
        for len in 0..frame.len() {
            assert!(decode_datagram(&frame[..len]).is_err(), "prefix {len}");
        }
    }

    #[test]
    fn any_single_bit_flip_is_rejected() {
        let frames = encode_message(Kind::Wire, NodeId(1), 5, 0, b"abc", 1400).unwrap();
        let frame = &frames[0];
        for byte in 0..frame.len() {
            for bit in 0..8 {
                let mut tampered = frame.clone();
                tampered[byte] ^= 1 << bit;
                assert!(
                    decode_datagram(&tampered).is_err(),
                    "flip at byte {byte} bit {bit} must not decode"
                );
            }
        }
    }

    #[test]
    fn foreign_and_future_datagrams_classified() {
        assert_eq!(decode_datagram(&[0u8; 10]), Err(NetError::Truncated));
        let mut foreign = vec![0u8; OVERHEAD];
        foreign[..4].copy_from_slice(b"QUIC");
        assert_eq!(decode_datagram(&foreign), Err(NetError::BadMagic));
        // A future protocol version with a valid checksum is reported as such.
        let mut frame = encode_message(Kind::Wire, NodeId(1), 1, 0, b"x", 1400)
            .unwrap()
            .remove(0);
        frame[4] = 9;
        let body_len = frame.len() - TRAILER_LEN;
        let crc = crc32(&frame[..body_len]).to_be_bytes();
        frame[body_len..].copy_from_slice(&crc);
        assert_eq!(decode_datagram(&frame), Err(NetError::BadVersion(9)));
    }

    #[test]
    fn zero_room_mtu_is_refused() {
        assert_eq!(
            encode_message(Kind::Wire, NodeId(1), 1, 0, b"x", OVERHEAD),
            Err(NetError::Oversize)
        );
    }
}
