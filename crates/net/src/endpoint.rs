//! The endpoint: one socket, envelope framing, and request/reply plumbing.
//!
//! An [`Endpoint`] owns a [`Datagram`] transport and layers onto it:
//!
//! * envelope encode/decode with per-datagram metrics,
//! * fragmentation and budget-bounded reassembly,
//! * a pending-request table correlating replies by `req_id`, and
//! * [`Endpoint::request`] — synchronous request/response with per-attempt
//!   timeout and bounded exponential backoff. A request keeps its sequence
//!   number across retries, so retransmissions are idempotent on the
//!   responder and a late reply to an earlier attempt still matches.
//!
//! Exactly one thread runs [`Endpoint::run_receiver`]; replies are consumed
//! there and handed to the blocked requester, everything else (requests,
//! control traffic) goes to the caller-supplied handler. All send paths take
//! `&self`, so the endpoint is shared behind an `Arc`.

use crate::control::{decode_control, Control};
use crate::envelope::{decode_datagram, encode_message_traced, Kind, TraceContext, DEFAULT_MTU};
use crate::frag::Reassembler;
use crate::metrics::{NetMetrics, NetStats};
use crate::transport::{Datagram, RecvSlot, UdpTransport};
use crate::NetError;
use std::collections::HashMap;
use std::io;
use std::net::SocketAddr;
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::mpsc::{sync_channel, RecvTimeoutError, SyncSender};
use std::sync::Mutex;
use std::time::{Duration, Instant};
use tldag_core::codec::{self, CodecError, WireMessage};
use tldag_obs::LatencyHistogram;
use tldag_sim::NodeId;

/// Tuning knobs for an [`Endpoint`].
#[derive(Clone, Copy, Debug)]
pub struct EndpointConfig {
    /// Maximum datagram size, including envelope overhead.
    pub mtu: usize,
    /// First-attempt reply timeout; doubles per retry up to
    /// [`EndpointConfig::max_backoff`].
    pub request_timeout: Duration,
    /// Retransmissions after the first attempt before giving up.
    pub max_retries: u32,
    /// Upper bound on the per-attempt timeout as backoff grows.
    pub max_backoff: Duration,
    /// Byte budget for partially reassembled messages.
    pub reassembly_budget: usize,
    /// Datagrams received (and decoded) per receiver wakeup: the parked
    /// receive that ends the wait plus up to `batch - 1` drained without
    /// blocking. 1 reproduces the old one-datagram-per-wakeup loop.
    pub batch: usize,
    /// How long the receiver parks in the kernel per wakeup when idle.
    /// Long parks mean near-zero idle syscall churn; the receiver still
    /// wakes instantly on traffic.
    pub park_timeout: Duration,
}

impl Default for EndpointConfig {
    fn default() -> Self {
        EndpointConfig {
            mtu: DEFAULT_MTU,
            request_timeout: Duration::from_millis(80),
            max_retries: 6,
            max_backoff: Duration::from_millis(500),
            reassembly_budget: 4 << 20,
            batch: 16,
            park_timeout: Duration::from_millis(250),
        }
    }
}

/// A message delivered to the receive-loop handler (replies are routed to
/// their waiting requester internally and never reach the handler).
///
/// Inherits [`Control`]'s size skew: `Report` dwarfs everything else but
/// travels once per run, and `Inbound` itself lives on the receive-loop
/// stack — it is never stored in bulk, so indirection would buy nothing.
#[allow(clippy::large_enum_variant)]
#[derive(Debug)]
pub enum Inbound {
    /// A protocol message that is not a reply: serve it.
    Wire {
        /// Sending node (from the envelope).
        from: NodeId,
        /// Source address the datagram arrived from (reply here).
        src: SocketAddr,
        /// The sender's message sequence number — echo as `req_id` when
        /// replying.
        seq: u64,
        /// The decoded message.
        msg: WireMessage,
        /// Trace context from the envelope's extension region, if any.
        trace: Option<TraceContext>,
    },
    /// A runtime control message.
    Control {
        /// Sending node (from the envelope).
        from: NodeId,
        /// Source address the datagram arrived from.
        src: SocketAddr,
        /// The decoded control message.
        msg: Control,
        /// Trace context from the envelope's extension region, if any.
        trace: Option<TraceContext>,
    },
}

/// One socket endpoint of a 2LDAG node (or the harness controller).
pub struct Endpoint {
    id: NodeId,
    transport: Box<dyn Datagram>,
    config: EndpointConfig,
    next_seq: AtomicU64,
    pending: Mutex<HashMap<u64, SyncSender<(NodeId, WireMessage)>>>,
    metrics: NetMetrics,
    /// Wall-clock latency of answered requests (send to matched reply,
    /// retries included).
    request_rtt: LatencyHistogram,
    /// Time burned waiting on attempts that timed out before a retry (the
    /// realized backoff schedule).
    retry_backoff: LatencyHistogram,
    /// Datagrams decoded per productive receiver wakeup (recorded as a
    /// "duration" of N microseconds = N datagrams, reusing the log2
    /// histogram for a count distribution).
    batch_fill: LatencyHistogram,
}

impl std::fmt::Debug for Endpoint {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Endpoint")
            .field("id", &self.id)
            .field("addr", &self.transport.local_addr().ok())
            .finish()
    }
}

impl Endpoint {
    /// Binds a UDP endpoint for node `id` on `listen`.
    ///
    /// # Errors
    ///
    /// Socket bind failures.
    pub fn bind(id: NodeId, listen: SocketAddr, config: EndpointConfig) -> io::Result<Self> {
        Ok(Self::with_transport(
            id,
            Box::new(UdpTransport::bind(listen)?),
            config,
        ))
    }

    /// Builds an endpoint over an arbitrary transport (fault injection,
    /// tests).
    pub fn with_transport(
        id: NodeId,
        transport: Box<dyn Datagram>,
        config: EndpointConfig,
    ) -> Self {
        Endpoint {
            id,
            transport,
            config,
            next_seq: AtomicU64::new(1),
            pending: Mutex::new(HashMap::new()),
            metrics: NetMetrics::default(),
            request_rtt: LatencyHistogram::new(),
            retry_backoff: LatencyHistogram::new(),
            batch_fill: LatencyHistogram::new(),
        }
    }

    /// The node id this endpoint stamps into outgoing envelopes.
    pub fn id(&self) -> NodeId {
        self.id
    }

    /// The bound socket address.
    ///
    /// # Errors
    ///
    /// Propagates the transport's failure to report its address.
    pub fn local_addr(&self) -> io::Result<SocketAddr> {
        self.transport.local_addr()
    }

    /// The endpoint's live metrics.
    pub fn metrics(&self) -> &NetMetrics {
        &self.metrics
    }

    /// A point-in-time snapshot of the metrics.
    pub fn stats(&self) -> NetStats {
        self.metrics.snapshot()
    }

    /// Latency histogram of answered [`Endpoint::request`] calls.
    pub fn request_rtt(&self) -> &LatencyHistogram {
        &self.request_rtt
    }

    /// Histogram of per-attempt waits that timed out (realized backoff).
    pub fn retry_backoff(&self) -> &LatencyHistogram {
        &self.retry_backoff
    }

    /// Histogram of datagrams decoded per productive receiver wakeup
    /// (unit: datagrams, stored in the histogram's microsecond buckets).
    pub fn batch_fill(&self) -> &LatencyHistogram {
        &self.batch_fill
    }

    fn alloc_seq(&self) -> u64 {
        self.next_seq.fetch_add(1, Ordering::Relaxed)
    }

    fn send_frames(&self, to: SocketAddr, frames: &[Vec<u8>]) {
        // UDP send errors (e.g. ICMP-refused on loopback) are
        // indistinguishable from loss for the protocol; the retry layer
        // handles both, so the batch send skips failed datagrams.
        let batch: Vec<(&[u8], SocketAddr)> = frames.iter().map(|f| (f.as_slice(), to)).collect();
        if self.transport.send_many(&batch).is_ok() {
            NetMetrics::inc(&self.metrics.send_batches);
            NetMetrics::add(&self.metrics.datagrams_sent, frames.len() as u64);
            NetMetrics::add(
                &self.metrics.bytes_sent,
                frames.iter().map(|f| f.len() as u64).sum(),
            );
        }
    }

    fn encode_frames(
        &self,
        kind: Kind,
        seq: u64,
        req_id: u64,
        payload: &[u8],
        trace: Option<TraceContext>,
    ) -> Result<Vec<Vec<u8>>, NetError> {
        encode_message_traced(kind, self.id, seq, req_id, payload, self.config.mtu, trace)
    }

    /// Sends an unsolicited protocol message; returns its sequence number.
    ///
    /// # Errors
    ///
    /// [`NetError::Oversize`] when the message cannot be fragmented.
    pub fn send_wire(&self, to: SocketAddr, msg: &WireMessage) -> Result<u64, NetError> {
        let seq = self.alloc_seq();
        let frames = self.encode_frames(Kind::Wire, seq, 0, &codec::encode_message(msg), None)?;
        self.send_frames(to, &frames);
        Ok(seq)
    }

    /// Sends a protocol reply correlated to request `req_id`.
    ///
    /// # Errors
    ///
    /// [`NetError::Oversize`] when the message cannot be fragmented.
    pub fn send_reply(
        &self,
        to: SocketAddr,
        req_id: u64,
        msg: &WireMessage,
    ) -> Result<u64, NetError> {
        let seq = self.alloc_seq();
        let frames =
            self.encode_frames(Kind::Wire, seq, req_id, &codec::encode_message(msg), None)?;
        self.send_frames(to, &frames);
        Ok(seq)
    }

    /// Sends a control message.
    ///
    /// # Errors
    ///
    /// [`NetError::Oversize`] when the message cannot be fragmented
    /// (control messages always fit one datagram in practice).
    pub fn send_control(&self, to: SocketAddr, msg: &Control) -> Result<u64, NetError> {
        self.send_control_traced(to, msg, None)
    }

    /// [`Endpoint::send_control`] with a [`TraceContext`] riding the
    /// envelope's extension region. Old peers skip the extension and see a
    /// plain control message.
    ///
    /// # Errors
    ///
    /// [`NetError::Oversize`] when the message cannot be fragmented.
    pub fn send_control_traced(
        &self,
        to: SocketAddr,
        msg: &Control,
        trace: Option<TraceContext>,
    ) -> Result<u64, NetError> {
        let seq = self.alloc_seq();
        let frames = self.encode_frames(
            Kind::Control,
            seq,
            0,
            &crate::control::encode_control(msg),
            trace,
        )?;
        self.send_frames(to, &frames);
        Ok(seq)
    }

    /// Sends `msg` to `to` and waits for a correlated reply, retrying with
    /// bounded exponential backoff. Returns `None` once the retry budget is
    /// exhausted (counted in `request_timeouts`) — a silent peer costs
    /// bounded time, never a hang.
    ///
    /// Requires [`Endpoint::run_receiver`] to be live on another thread;
    /// without it every request times out.
    pub fn request(&self, to: SocketAddr, msg: &WireMessage) -> Option<(NodeId, WireMessage)> {
        let seq = self.alloc_seq();
        let frames = self
            .encode_frames(Kind::Wire, seq, 0, &codec::encode_message(msg), None)
            .ok()?;
        let (tx, rx) = sync_channel(2);
        self.pending
            .lock()
            .expect("pending table poisoned")
            .insert(seq, tx);
        NetMetrics::inc(&self.metrics.requests_sent);

        let started = Instant::now();
        let mut timeout = self.config.request_timeout;
        let mut outcome = None;
        for attempt in 0..=self.config.max_retries {
            if attempt > 0 {
                NetMetrics::inc(&self.metrics.request_retries);
            }
            self.send_frames(to, &frames);
            match rx.recv_timeout(timeout) {
                Ok(reply) => {
                    // Counted here, not in the receiver thread, so a caller
                    // that sees the reply also sees the counter.
                    NetMetrics::inc(&self.metrics.replies_matched);
                    self.request_rtt.record(started.elapsed());
                    outcome = Some(reply);
                    break;
                }
                Err(RecvTimeoutError::Timeout) => {
                    self.retry_backoff.record(timeout);
                    timeout = (timeout * 2).min(self.config.max_backoff);
                }
                Err(RecvTimeoutError::Disconnected) => break,
            }
        }
        self.pending
            .lock()
            .expect("pending table poisoned")
            .remove(&seq);
        if outcome.is_none() {
            NetMetrics::inc(&self.metrics.request_timeouts);
        }
        outcome
    }

    /// Runs the receive loop until `stop` is set: parks in the kernel until
    /// traffic (or the park timeout) wakes it, drains a batch of datagrams
    /// per wakeup, decodes envelopes, reassembles fragments, consumes
    /// replies, and hands everything else to `handler`. Malformed traffic
    /// is counted and dropped — never a panic.
    pub fn run_receiver(&self, stop: &AtomicBool, handler: &mut dyn FnMut(Inbound)) {
        let _ = self
            .transport
            .set_read_timeout(Some(self.config.park_timeout.max(Duration::from_millis(1))));
        let mut slots: Vec<RecvSlot> = (0..self.config.batch.max(1))
            .map(|_| RecvSlot::new(65536))
            .collect();
        let mut reassembler = Reassembler::new(self.config.reassembly_budget);
        let mut seen_evictions = 0u64;
        while !stop.load(Ordering::Relaxed) {
            NetMetrics::inc(&self.metrics.recv_wakeups);
            let filled = match self.transport.recv_many(&mut slots) {
                Ok(n) => n,
                Err(e)
                    if e.kind() == io::ErrorKind::WouldBlock
                        || e.kind() == io::ErrorKind::TimedOut =>
                {
                    // The park expired with no traffic: the loop's idle
                    // cost is one syscall per park timeout, nothing more.
                    NetMetrics::inc(&self.metrics.idle_wakeups);
                    continue;
                }
                Err(_) => continue, // e.g. ICMP port-unreachable surfaced on some OSes
            };
            self.batch_fill.record(Duration::from_micros(filled as u64));
            for slot in slots.iter().take(filled) {
                if slot.len == 0 {
                    continue;
                }
                self.process_datagram(
                    &slot.buf[..slot.len],
                    slot.src,
                    &mut reassembler,
                    &mut seen_evictions,
                    handler,
                );
            }
        }
    }

    /// Decodes one received datagram and routes its message: replies to
    /// the pending-request table, everything else to `handler`.
    fn process_datagram(
        &self,
        datagram: &[u8],
        src: SocketAddr,
        reassembler: &mut Reassembler,
        seen_evictions: &mut u64,
        handler: &mut dyn FnMut(Inbound),
    ) {
        NetMetrics::inc(&self.metrics.datagrams_received);
        NetMetrics::add(&self.metrics.bytes_received, datagram.len() as u64);
        let (env, fragment) = match decode_datagram(datagram) {
            Ok(d) => d,
            Err(e) => {
                match e {
                    NetError::BadCrc => NetMetrics::inc(&self.metrics.crc_drops),
                    NetError::BadVersion(_) => NetMetrics::inc(&self.metrics.version_drops),
                    _ => NetMetrics::inc(&self.metrics.malformed_drops),
                }
                return;
            }
        };
        let Some(payload) = reassembler.offer(&env, fragment) else {
            let evictions = reassembler.evictions();
            if evictions > *seen_evictions {
                NetMetrics::add(
                    &self.metrics.reassembly_evictions,
                    evictions - *seen_evictions,
                );
                *seen_evictions = evictions;
            }
            return;
        };
        if env.frag_count > 1 {
            NetMetrics::inc(&self.metrics.messages_reassembled);
        }
        match env.kind {
            Kind::Wire => match codec::decode_message(&payload) {
                Ok(msg) => {
                    if env.req_id != 0 {
                        self.route_reply(env.req_id, env.sender, msg);
                    } else {
                        handler(Inbound::Wire {
                            from: env.sender,
                            src,
                            seq: env.msg_seq,
                            msg,
                            trace: env.trace,
                        });
                    }
                }
                Err(CodecError::UnknownTag(_)) => {
                    // Version skew: a peer speaks a newer message set.
                    NetMetrics::inc(&self.metrics.unknown_tag_drops);
                }
                Err(_) => NetMetrics::inc(&self.metrics.codec_error_drops),
            },
            Kind::Control => match decode_control(&payload) {
                Ok(msg) => handler(Inbound::Control {
                    from: env.sender,
                    src,
                    msg,
                    trace: env.trace,
                }),
                Err(NetError::BadControlTag(_) | NetError::BadAddressFamily(_)) => {
                    // Version skew, not framing: count it as such.
                    NetMetrics::inc(&self.metrics.unknown_tag_drops);
                }
                Err(_) => NetMetrics::inc(&self.metrics.codec_error_drops),
            },
        }
    }

    /// Hands a reply to its waiting requester (or counts it as late).
    fn route_reply(&self, req_id: u64, from: NodeId, msg: WireMessage) {
        let sender = self
            .pending
            .lock()
            .expect("pending table poisoned")
            .get(&req_id)
            .cloned();
        match sender {
            Some(tx) => {
                if tx.try_send((from, msg)).is_err() {
                    NetMetrics::inc(&self.metrics.replies_unmatched);
                }
            }
            None => NetMetrics::inc(&self.metrics.replies_unmatched),
        }
    }
}
