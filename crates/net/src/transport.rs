//! Datagram transports: real UDP sockets and a fault-injecting wrapper.
//!
//! [`Datagram`] is the minimal socket surface the endpoint needs, so tests
//! and experiments can interpose. [`UdpTransport`] is the production
//! implementation over `std::net::UdpSocket`; [`FaultyTransport`] wraps any
//! transport and injects deterministic datagram loss, duplication, and
//! reordering on the *send* path — the knob behind the `fig11_wire`
//! loss-sweep experiment.

use std::io;
use std::net::{IpAddr, Ipv4Addr, SocketAddr, UdpSocket};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Mutex;
use std::time::Duration;
use tldag_sim::DetRng;

#[cfg(target_os = "linux")]
use std::os::fd::AsRawFd;

/// One slot of a batched receive ([`Datagram::recv_many`]): a reusable
/// buffer plus the length and source the transport fills in per wakeup.
#[derive(Debug)]
pub struct RecvSlot {
    /// Datagram buffer; its length bounds the largest receivable datagram.
    pub buf: Vec<u8>,
    /// Bytes of [`RecvSlot::buf`] filled by the last receive (0 = the slot
    /// was filled with an undecodable source address and must be skipped).
    pub len: usize,
    /// Source address of the received datagram.
    pub src: SocketAddr,
}

impl RecvSlot {
    /// A slot with a zeroed `capacity`-byte buffer.
    pub fn new(capacity: usize) -> Self {
        RecvSlot {
            buf: vec![0; capacity],
            len: 0,
            src: SocketAddr::new(IpAddr::V4(Ipv4Addr::UNSPECIFIED), 0),
        }
    }
}

/// Minimal datagram socket surface.
///
/// Send paths take `&self` (UDP sockets are thread-safe), so one transport
/// can be shared between a receiver thread and any number of senders.
pub trait Datagram: Send + Sync {
    /// Sends one datagram to `addr`.
    fn send_to(&self, buf: &[u8], addr: SocketAddr) -> io::Result<usize>;

    /// Receives one datagram, returning its size and source.
    fn recv_from(&self, buf: &mut [u8]) -> io::Result<(usize, SocketAddr)>;

    /// The local address this transport is bound to.
    fn local_addr(&self) -> io::Result<SocketAddr>;

    /// Sets the blocking-read timeout used by the receive loop.
    fn set_read_timeout(&self, dur: Option<Duration>) -> io::Result<()>;

    /// Sends a batch of `(payload, destination)` datagrams in one call.
    ///
    /// Per-datagram send failures are loss-equivalent for the protocol
    /// (the retry layer recovers), so implementations skip them rather
    /// than abort the batch. The portable default loops
    /// [`Datagram::send_to`]; [`UdpTransport`] hands the whole batch to
    /// the kernel with `sendmmsg` on Linux.
    ///
    /// # Errors
    ///
    /// Only transport-level failures that doom the entire batch.
    fn send_many(&self, batch: &[(&[u8], SocketAddr)]) -> io::Result<usize> {
        for (buf, addr) in batch {
            let _ = self.send_to(buf, *addr);
        }
        Ok(batch.len())
    }

    /// Receives up to `slots.len()` datagrams in one wakeup, returning how
    /// many slots were filled.
    ///
    /// The first receive honors the configured read timeout — this is the
    /// event loop's *park*, so an idle endpoint blocks in the kernel
    /// instead of spinning. Once traffic arrives, implementations may
    /// drain further already-queued datagrams without blocking
    /// ([`UdpTransport`] uses `recvmmsg(MSG_DONTWAIT)` on Linux); the
    /// portable default receives exactly one.
    ///
    /// # Errors
    ///
    /// Timeout expiry surfaces as `WouldBlock`/`TimedOut` from the parked
    /// receive, exactly like [`Datagram::recv_from`].
    fn recv_many(&self, slots: &mut [RecvSlot]) -> io::Result<usize> {
        let Some(first) = slots.first_mut() else {
            return Ok(0);
        };
        let (len, src) = self.recv_from(&mut first.buf)?;
        first.len = len;
        first.src = src;
        Ok(1)
    }
}

impl<T: Datagram + ?Sized> Datagram for std::sync::Arc<T> {
    fn send_to(&self, buf: &[u8], addr: SocketAddr) -> io::Result<usize> {
        (**self).send_to(buf, addr)
    }
    fn recv_from(&self, buf: &mut [u8]) -> io::Result<(usize, SocketAddr)> {
        (**self).recv_from(buf)
    }
    fn local_addr(&self) -> io::Result<SocketAddr> {
        (**self).local_addr()
    }
    fn set_read_timeout(&self, dur: Option<Duration>) -> io::Result<()> {
        (**self).set_read_timeout(dur)
    }
    fn send_many(&self, batch: &[(&[u8], SocketAddr)]) -> io::Result<usize> {
        (**self).send_many(batch)
    }
    fn recv_many(&self, slots: &mut [RecvSlot]) -> io::Result<usize> {
        (**self).recv_many(slots)
    }
}

/// The production transport: a plain UDP socket.
#[derive(Debug)]
pub struct UdpTransport {
    socket: UdpSocket,
}

impl UdpTransport {
    /// Binds a UDP socket on `addr` (use port 0 for an ephemeral port).
    ///
    /// # Errors
    ///
    /// Any socket-level bind failure.
    pub fn bind(addr: SocketAddr) -> io::Result<Self> {
        Ok(UdpTransport {
            socket: UdpSocket::bind(addr)?,
        })
    }
}

impl Datagram for UdpTransport {
    fn send_to(&self, buf: &[u8], addr: SocketAddr) -> io::Result<usize> {
        self.socket.send_to(buf, addr)
    }

    fn recv_from(&self, buf: &mut [u8]) -> io::Result<(usize, SocketAddr)> {
        self.socket.recv_from(buf)
    }

    fn local_addr(&self) -> io::Result<SocketAddr> {
        self.socket.local_addr()
    }

    fn set_read_timeout(&self, dur: Option<Duration>) -> io::Result<()> {
        self.socket.set_read_timeout(dur)
    }

    fn send_many(&self, batch: &[(&[u8], SocketAddr)]) -> io::Result<usize> {
        #[cfg(target_os = "linux")]
        if batch.len() > 1 {
            if let Ok(sent) = crate::mmsg::send_batch(self.socket.as_raw_fd(), batch) {
                // The kernel accepted a prefix; the rest goes out the
                // portable way (send errors are loss-equivalent).
                for (buf, addr) in &batch[sent..] {
                    let _ = self.socket.send_to(buf, *addr);
                }
                return Ok(batch.len());
            }
        }
        for (buf, addr) in batch {
            let _ = self.socket.send_to(buf, *addr);
        }
        Ok(batch.len())
    }

    fn recv_many(&self, slots: &mut [RecvSlot]) -> io::Result<usize> {
        let Some((first, rest)) = slots.split_first_mut() else {
            return Ok(0);
        };
        // The park: blocks up to the configured read timeout.
        let (len, src) = self.socket.recv_from(&mut first.buf)?;
        first.len = len;
        first.src = src;
        let mut filled = 1;
        #[cfg(target_os = "linux")]
        if !rest.is_empty() {
            if let Ok(n) = crate::mmsg::recv_batch_nonblocking(self.socket.as_raw_fd(), rest) {
                filled += n;
            }
        }
        #[cfg(not(target_os = "linux"))]
        let _ = rest;
        Ok(filled)
    }
}

/// Fault rates for [`FaultyTransport`], each an independent per-datagram
/// probability applied on send.
#[derive(Clone, Copy, Debug, Default, PartialEq)]
pub struct FaultSpec {
    /// Probability a datagram is silently dropped.
    pub drop: f64,
    /// Probability a datagram is sent twice.
    pub duplicate: f64,
    /// Probability a datagram is held back and sent after the next one.
    pub reorder: f64,
}

impl FaultSpec {
    /// A loss-only spec (the primary `fig11_wire` axis).
    pub fn loss(p: f64) -> Self {
        FaultSpec {
            drop: p,
            ..FaultSpec::default()
        }
    }

    /// Loss plus mild duplication/reordering scaled off the loss rate — the
    /// "everything at once" degraded-network profile.
    pub fn degraded(p: f64) -> Self {
        FaultSpec {
            drop: p,
            duplicate: p / 4.0,
            reorder: p / 2.0,
        }
    }
}

struct FaultState {
    rng: DetRng,
    /// Datagram held back by a reorder decision.
    held: Option<(Vec<u8>, SocketAddr)>,
}

/// A [`Datagram`] wrapper injecting deterministic send-path faults.
///
/// Faults are decided by a seeded [`DetRng`], so a sweep is reproducible.
/// Wrapping both endpoints of a conversation makes both directions lossy.
pub struct FaultyTransport<T: Datagram> {
    inner: T,
    spec: FaultSpec,
    state: Mutex<FaultState>,
    injected_drops: AtomicU64,
    injected_duplicates: AtomicU64,
    injected_reorders: AtomicU64,
}

impl<T: Datagram> FaultyTransport<T> {
    /// Wraps `inner`, injecting faults per `spec` with randomness from `rng`.
    pub fn new(inner: T, spec: FaultSpec, rng: DetRng) -> Self {
        FaultyTransport {
            inner,
            spec,
            state: Mutex::new(FaultState { rng, held: None }),
            injected_drops: AtomicU64::new(0),
            injected_duplicates: AtomicU64::new(0),
            injected_reorders: AtomicU64::new(0),
        }
    }

    /// Datagrams dropped by injection so far.
    pub fn injected_drops(&self) -> u64 {
        self.injected_drops.load(Ordering::Relaxed)
    }

    /// Datagrams duplicated by injection so far.
    pub fn injected_duplicates(&self) -> u64 {
        self.injected_duplicates.load(Ordering::Relaxed)
    }

    /// Datagrams reordered by injection so far.
    pub fn injected_reorders(&self) -> u64 {
        self.injected_reorders.load(Ordering::Relaxed)
    }
}

impl<T: Datagram> Drop for FaultyTransport<T> {
    /// Flushes a reorder-held datagram: without this, the *last* datagram
    /// of a stream that hit the reorder branch would be silently lost while
    /// the stats report it as reordered, not dropped.
    fn drop(&mut self) {
        if let Ok(mut state) = self.state.lock() {
            if let Some((buf, addr)) = state.held.take() {
                let _ = self.inner.send_to(&buf, addr);
            }
        }
    }
}

impl<T: Datagram> Datagram for FaultyTransport<T> {
    fn send_to(&self, buf: &[u8], addr: SocketAddr) -> io::Result<usize> {
        let mut state = self.state.lock().expect("fault state poisoned");
        // Anything held from a previous reorder decision goes out *after*
        // the current datagram — releasing it below swaps the pair.
        let released = state.held.take();
        if self.spec.drop > 0.0 && state.rng.chance(self.spec.drop) {
            self.injected_drops.fetch_add(1, Ordering::Relaxed);
            if let Some((held_buf, held_addr)) = released {
                self.inner.send_to(&held_buf, held_addr)?;
            }
            return Ok(buf.len()); // swallowed: the caller believes it sent
        }
        if released.is_none() && self.spec.reorder > 0.0 && state.rng.chance(self.spec.reorder) {
            self.injected_reorders.fetch_add(1, Ordering::Relaxed);
            state.held = Some((buf.to_vec(), addr));
            return Ok(buf.len());
        }
        let duplicate = self.spec.duplicate > 0.0 && state.rng.chance(self.spec.duplicate);
        drop(state);
        self.inner.send_to(buf, addr)?;
        if duplicate {
            self.injected_duplicates.fetch_add(1, Ordering::Relaxed);
            self.inner.send_to(buf, addr)?;
        }
        if let Some((held_buf, held_addr)) = released {
            self.inner.send_to(&held_buf, held_addr)?;
        }
        Ok(buf.len())
    }

    fn recv_from(&self, buf: &mut [u8]) -> io::Result<(usize, SocketAddr)> {
        self.inner.recv_from(buf)
    }

    fn local_addr(&self) -> io::Result<SocketAddr> {
        self.inner.local_addr()
    }

    fn set_read_timeout(&self, dur: Option<Duration>) -> io::Result<()> {
        self.inner.set_read_timeout(dur)
    }

    // send_many deliberately stays the default per-datagram loop so the
    // fault decisions (and the DetRng draw order behind them) are
    // identical whether the caller batches or not.

    fn recv_many(&self, slots: &mut [RecvSlot]) -> io::Result<usize> {
        // Faults are send-path only; receiving keeps the inner batching.
        self.inner.recv_many(slots)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::AtomicUsize;
    use std::sync::Arc;

    /// Records sends instead of performing them.
    #[derive(Default)]
    struct RecordingTransport {
        sent: Mutex<Vec<Vec<u8>>>,
        count: AtomicUsize,
    }

    impl Datagram for RecordingTransport {
        fn send_to(&self, buf: &[u8], _addr: SocketAddr) -> io::Result<usize> {
            self.sent.lock().unwrap().push(buf.to_vec());
            self.count.fetch_add(1, Ordering::Relaxed);
            Ok(buf.len())
        }
        fn recv_from(&self, _buf: &mut [u8]) -> io::Result<(usize, SocketAddr)> {
            Err(io::Error::new(io::ErrorKind::WouldBlock, "no recv"))
        }
        fn local_addr(&self) -> io::Result<SocketAddr> {
            Ok("127.0.0.1:0".parse().expect("addr"))
        }
        fn set_read_timeout(&self, _dur: Option<Duration>) -> io::Result<()> {
            Ok(())
        }
    }

    fn addr() -> SocketAddr {
        "127.0.0.1:9".parse().expect("addr")
    }

    #[test]
    fn lossless_spec_is_transparent() {
        let t = FaultyTransport::new(
            RecordingTransport::default(),
            FaultSpec::default(),
            DetRng::seed_from(1),
        );
        for i in 0..50u8 {
            t.send_to(&[i], addr()).unwrap();
        }
        assert_eq!(t.inner.sent.lock().unwrap().len(), 50);
        assert_eq!(t.injected_drops(), 0);
    }

    #[test]
    fn drops_land_near_the_configured_rate() {
        let t = FaultyTransport::new(
            RecordingTransport::default(),
            FaultSpec::loss(0.3),
            DetRng::seed_from(2),
        );
        for i in 0..1000u32 {
            t.send_to(&i.to_be_bytes(), addr()).unwrap();
        }
        let dropped = t.injected_drops();
        assert!((200..400).contains(&dropped), "drops = {dropped}");
        assert_eq!(t.inner.sent.lock().unwrap().len() as u64, 1000 - dropped);
    }

    #[test]
    fn reorder_swaps_adjacent_datagrams_without_losing_any() {
        let t = FaultyTransport::new(
            RecordingTransport::default(),
            FaultSpec {
                reorder: 0.5,
                ..FaultSpec::default()
            },
            DetRng::seed_from(3),
        );
        for i in 0..100u8 {
            t.send_to(&[i], addr()).unwrap();
        }
        // Flush any held datagram by sending one more.
        t.send_to(&[200], addr()).unwrap();
        let sent = t.inner.sent.lock().unwrap();
        assert!(t.injected_reorders() > 10);
        let mut seen: Vec<u8> = sent.iter().map(|d| d[0]).collect();
        assert!(seen.len() >= 100, "reordering must not drop datagrams");
        seen.sort_unstable();
        seen.dedup();
        assert!(seen.len() >= 100, "every datagram still delivered once");
    }

    #[test]
    fn drop_flushes_a_held_reorder_datagram() {
        let inner = Arc::new(RecordingTransport::default());
        let t = FaultyTransport::new(
            Arc::clone(&inner),
            FaultSpec {
                reorder: 1.0,
                ..FaultSpec::default()
            },
            DetRng::seed_from(5),
        );
        t.send_to(&[42], addr()).unwrap();
        assert_eq!(inner.sent.lock().unwrap().len(), 0, "datagram held");
        drop(t);
        assert_eq!(
            inner.sent.lock().unwrap().len(),
            1,
            "teardown must flush the held datagram, not lose it"
        );
    }

    #[test]
    fn batched_send_applies_faults_per_datagram() {
        let t = FaultyTransport::new(
            RecordingTransport::default(),
            FaultSpec::loss(0.3),
            DetRng::seed_from(2),
        );
        let bufs: Vec<Vec<u8>> = (0..1000u32).map(|i| i.to_be_bytes().to_vec()).collect();
        let batch: Vec<(&[u8], SocketAddr)> = bufs.iter().map(|b| (b.as_slice(), addr())).collect();
        assert_eq!(t.send_many(&batch).unwrap(), 1000);
        // Same seed as `drops_land_near_the_configured_rate`: batching must
        // not change the per-datagram fault decisions.
        let dropped = t.injected_drops();
        assert!((200..400).contains(&dropped), "drops = {dropped}");
        assert_eq!(t.inner.sent.lock().unwrap().len() as u64, 1000 - dropped);
    }

    #[test]
    fn udp_recv_many_drains_a_batch_per_wakeup() {
        let rx = UdpTransport::bind("127.0.0.1:0".parse().unwrap()).unwrap();
        let tx = UdpTransport::bind("127.0.0.1:0".parse().unwrap()).unwrap();
        let dst = rx.local_addr().unwrap();
        rx.set_read_timeout(Some(Duration::from_secs(5))).unwrap();
        let bufs: Vec<Vec<u8>> = (0..6u8).map(|i| vec![i; 8 + i as usize]).collect();
        let batch: Vec<(&[u8], SocketAddr)> = bufs.iter().map(|b| (b.as_slice(), dst)).collect();
        assert_eq!(tx.send_many(&batch).unwrap(), 6);
        let mut slots: Vec<RecvSlot> = (0..8).map(|_| RecvSlot::new(1024)).collect();
        let mut got: Vec<Vec<u8>> = Vec::new();
        let deadline = std::time::Instant::now() + Duration::from_secs(5);
        while got.len() < 6 && std::time::Instant::now() < deadline {
            let n = rx.recv_many(&mut slots).unwrap();
            for slot in slots.iter().take(n).filter(|s| s.len > 0) {
                assert_eq!(slot.src, tx.local_addr().unwrap());
                got.push(slot.buf[..slot.len].to_vec());
            }
        }
        got.sort();
        assert_eq!(got, bufs, "all six datagrams delivered intact");
    }

    #[test]
    fn duplicates_send_twice() {
        let t = FaultyTransport::new(
            RecordingTransport::default(),
            FaultSpec {
                duplicate: 1.0,
                ..FaultSpec::default()
            },
            DetRng::seed_from(4),
        );
        t.send_to(&[1], addr()).unwrap();
        assert_eq!(t.inner.sent.lock().unwrap().len(), 2);
        assert_eq!(t.injected_duplicates(), 1);
    }
}
