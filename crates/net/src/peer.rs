//! The peer table: addressing plus liveness tracking under churn.
//!
//! Deployments bootstrap from a static peer list (`id@host:port`,
//! mirroring the paper's registration-time provisioning of identities),
//! but the table is **dynamic**: the membership control plane inserts
//! late joiners as their announcements arrive and forgets leavers and
//! evicted peers. Liveness is tracked per peer from any
//! authenticated-by-CRC envelope that arrives, so the runtime can
//! distinguish "never heard from" from "went quiet" when a request times
//! out — the signal behind liveness-based eviction of silent departures.

use std::collections::{BTreeMap, HashMap};
use std::net::SocketAddr;
use std::sync::{Mutex, RwLock};
use std::time::{Duration, Instant};
use tldag_sim::NodeId;

/// Address book + liveness for a node's peers.
#[derive(Debug)]
pub struct PeerTable {
    addrs: RwLock<BTreeMap<NodeId, SocketAddr>>,
    last_heard: Mutex<HashMap<NodeId, Instant>>,
}

impl PeerTable {
    /// Builds a table from static `(id, addr)` bootstrap entries.
    pub fn new(entries: impl IntoIterator<Item = (NodeId, SocketAddr)>) -> Self {
        PeerTable {
            addrs: RwLock::new(entries.into_iter().collect()),
            last_heard: Mutex::new(HashMap::new()),
        }
    }

    /// The address of `peer`, if known.
    pub fn addr(&self, peer: NodeId) -> Option<SocketAddr> {
        self.addrs
            .read()
            .expect("peer table poisoned")
            .get(&peer)
            .copied()
    }

    /// All known peer ids, ascending.
    pub fn ids(&self) -> Vec<NodeId> {
        self.addrs
            .read()
            .expect("peer table poisoned")
            .keys()
            .copied()
            .collect()
    }

    /// Number of known peers.
    pub fn len(&self) -> usize {
        self.addrs.read().expect("peer table poisoned").len()
    }

    /// Whether the table is empty.
    pub fn is_empty(&self) -> bool {
        self.addrs.read().expect("peer table poisoned").is_empty()
    }

    /// Registers (or re-addresses) a peer — a join, or a re-join of a
    /// previously evicted id. Returns `true` when the entry changed.
    pub fn insert(&self, peer: NodeId, addr: SocketAddr) -> bool {
        self.addrs
            .write()
            .expect("peer table poisoned")
            .insert(peer, addr)
            != Some(addr)
    }

    /// Forgets a peer entirely: address *and* liveness history, so a
    /// re-joining id starts from a clean slate instead of inheriting the
    /// old incarnation's last-heard timestamp.
    pub fn forget(&self, peer: NodeId) {
        self.addrs
            .write()
            .expect("peer table poisoned")
            .remove(&peer);
        self.last_heard
            .lock()
            .expect("peer liveness poisoned")
            .remove(&peer);
    }

    /// Records that a valid envelope from `peer` just arrived.
    pub fn mark_heard(&self, peer: NodeId) {
        self.last_heard
            .lock()
            .expect("peer liveness poisoned")
            .insert(peer, Instant::now());
    }

    /// When `peer` was last heard from, if ever.
    pub fn last_heard(&self, peer: NodeId) -> Option<Instant> {
        self.last_heard
            .lock()
            .expect("peer liveness poisoned")
            .get(&peer)
            .copied()
    }

    /// Whether `peer` was heard from within `window`.
    pub fn alive_within(&self, peer: NodeId, window: Duration) -> bool {
        self.last_heard(peer)
            .is_some_and(|at| at.elapsed() <= window)
    }

    /// Whether `peer` was heard from once but has now been silent longer
    /// than `window` — the eviction predicate. A peer that was *never*
    /// heard from is a bootstrap straggler, not an eviction candidate;
    /// see [`PeerTable::silent_peers`].
    pub fn gone_quiet(&self, peer: NodeId, window: Duration) -> bool {
        self.last_heard(peer)
            .is_some_and(|at| at.elapsed() > window)
    }

    /// Peers never heard from at all (bootstrap stragglers).
    pub fn silent_peers(&self) -> Vec<NodeId> {
        let heard = self.last_heard.lock().expect("peer liveness poisoned");
        self.addrs
            .read()
            .expect("peer table poisoned")
            .keys()
            .filter(|id| !heard.contains_key(id))
            .copied()
            .collect()
    }
}

/// Parses a `0@127.0.0.1:9000,2@127.0.0.1:9002` peer list.
///
/// # Errors
///
/// A human-readable message naming the offending entry.
pub fn parse_peer_list(raw: &str) -> Result<Vec<(NodeId, SocketAddr)>, String> {
    let mut out = Vec::new();
    for entry in raw.split(',').filter(|e| !e.is_empty()) {
        let (id_raw, addr_raw) = entry
            .split_once('@')
            .ok_or_else(|| format!("peer `{entry}` is not id@host:port"))?;
        let id: u32 = id_raw
            .parse()
            .map_err(|_| format!("peer `{entry}` has a non-numeric id"))?;
        let addr: SocketAddr = addr_raw
            .parse()
            .map_err(|_| format!("peer `{entry}` has an invalid address"))?;
        out.push((NodeId(id), addr));
    }
    Ok(out)
}

/// Renders peers back into the `id@addr,...` form accepted by
/// [`parse_peer_list`] (the harness hands this to spawned node processes).
pub fn format_peer_list(peers: &[(NodeId, SocketAddr)]) -> String {
    peers
        .iter()
        .map(|(id, addr)| format!("{}@{addr}", id.0))
        .collect::<Vec<_>>()
        .join(",")
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parse_and_format_round_trip() {
        let raw = "0@127.0.0.1:9000,2@127.0.0.1:9002";
        let peers = parse_peer_list(raw).unwrap();
        assert_eq!(peers.len(), 2);
        assert_eq!(peers[0].0, NodeId(0));
        assert_eq!(format_peer_list(&peers), raw);
    }

    #[test]
    fn malformed_entries_are_named() {
        assert!(parse_peer_list("nope").unwrap_err().contains("nope"));
        assert!(parse_peer_list("x@127.0.0.1:1").is_err());
        assert!(parse_peer_list("1@not-an-addr").is_err());
        assert!(parse_peer_list("").unwrap().is_empty());
    }

    #[test]
    fn insert_and_forget_track_churn() {
        let a: SocketAddr = "127.0.0.1:9001".parse().unwrap();
        let b: SocketAddr = "127.0.0.1:9002".parse().unwrap();
        let table = PeerTable::new([(NodeId(0), a)]);
        assert!(table.insert(NodeId(5), b), "new peer is a change");
        assert!(!table.insert(NodeId(5), b), "same addr is idempotent");
        assert_eq!(table.ids(), vec![NodeId(0), NodeId(5)]);
        table.mark_heard(NodeId(5));
        table.forget(NodeId(5));
        assert_eq!(table.addr(NodeId(5)), None);
        assert!(
            table.last_heard(NodeId(5)).is_none(),
            "a re-join must not inherit the evicted incarnation's liveness"
        );
        // Re-join on a different port re-addresses the id.
        assert!(table.insert(NodeId(5), a));
        assert_eq!(table.addr(NodeId(5)), Some(a));
    }

    #[test]
    fn gone_quiet_distinguishes_silence_from_never_heard() {
        let a: SocketAddr = "127.0.0.1:9001".parse().unwrap();
        let table = PeerTable::new([(NodeId(1), a)]);
        // Never heard: a bootstrap straggler, not an eviction candidate.
        assert!(!table.gone_quiet(NodeId(1), Duration::from_millis(0)));
        table.mark_heard(NodeId(1));
        assert!(!table.gone_quiet(NodeId(1), Duration::from_secs(60)));
        std::thread::sleep(Duration::from_millis(5));
        assert!(table.gone_quiet(NodeId(1), Duration::from_millis(1)));
    }

    #[test]
    fn liveness_tracks_heard_peers() {
        let a: SocketAddr = "127.0.0.1:9001".parse().unwrap();
        let table = PeerTable::new([(NodeId(1), a), (NodeId(2), a)]);
        assert_eq!(table.silent_peers(), vec![NodeId(1), NodeId(2)]);
        assert!(!table.alive_within(NodeId(1), Duration::from_secs(60)));
        table.mark_heard(NodeId(1));
        assert!(table.alive_within(NodeId(1), Duration::from_secs(60)));
        assert_eq!(table.silent_peers(), vec![NodeId(2)]);
        assert!(table.last_heard(NodeId(2)).is_none());
    }
}
