//! The peer table: static bootstrap addressing plus liveness tracking.
//!
//! Deployments are provisioned with a static peer list (`id@host:port`,
//! mirroring the paper's registration-time provisioning of identities);
//! liveness is tracked per peer from any authenticated-by-CRC envelope that
//! arrives, so the runtime can distinguish "never heard from" from "went
//! quiet" when a request times out.

use std::collections::{BTreeMap, HashMap};
use std::net::SocketAddr;
use std::sync::Mutex;
use std::time::{Duration, Instant};
use tldag_sim::NodeId;

/// Address book + liveness for a node's peers.
#[derive(Debug)]
pub struct PeerTable {
    addrs: BTreeMap<NodeId, SocketAddr>,
    last_heard: Mutex<HashMap<NodeId, Instant>>,
}

impl PeerTable {
    /// Builds a table from static `(id, addr)` bootstrap entries.
    pub fn new(entries: impl IntoIterator<Item = (NodeId, SocketAddr)>) -> Self {
        PeerTable {
            addrs: entries.into_iter().collect(),
            last_heard: Mutex::new(HashMap::new()),
        }
    }

    /// The address of `peer`, if known.
    pub fn addr(&self, peer: NodeId) -> Option<SocketAddr> {
        self.addrs.get(&peer).copied()
    }

    /// All known peer ids, ascending.
    pub fn ids(&self) -> Vec<NodeId> {
        self.addrs.keys().copied().collect()
    }

    /// Number of known peers.
    pub fn len(&self) -> usize {
        self.addrs.len()
    }

    /// Whether the table is empty.
    pub fn is_empty(&self) -> bool {
        self.addrs.is_empty()
    }

    /// Records that a valid envelope from `peer` just arrived.
    pub fn mark_heard(&self, peer: NodeId) {
        self.last_heard
            .lock()
            .expect("peer liveness poisoned")
            .insert(peer, Instant::now());
    }

    /// When `peer` was last heard from, if ever.
    pub fn last_heard(&self, peer: NodeId) -> Option<Instant> {
        self.last_heard
            .lock()
            .expect("peer liveness poisoned")
            .get(&peer)
            .copied()
    }

    /// Whether `peer` was heard from within `window`.
    pub fn alive_within(&self, peer: NodeId, window: Duration) -> bool {
        self.last_heard(peer)
            .is_some_and(|at| at.elapsed() <= window)
    }

    /// Peers never heard from at all (bootstrap stragglers).
    pub fn silent_peers(&self) -> Vec<NodeId> {
        let heard = self.last_heard.lock().expect("peer liveness poisoned");
        self.addrs
            .keys()
            .filter(|id| !heard.contains_key(id))
            .copied()
            .collect()
    }
}

/// Parses a `0@127.0.0.1:9000,2@127.0.0.1:9002` peer list.
///
/// # Errors
///
/// A human-readable message naming the offending entry.
pub fn parse_peer_list(raw: &str) -> Result<Vec<(NodeId, SocketAddr)>, String> {
    let mut out = Vec::new();
    for entry in raw.split(',').filter(|e| !e.is_empty()) {
        let (id_raw, addr_raw) = entry
            .split_once('@')
            .ok_or_else(|| format!("peer `{entry}` is not id@host:port"))?;
        let id: u32 = id_raw
            .parse()
            .map_err(|_| format!("peer `{entry}` has a non-numeric id"))?;
        let addr: SocketAddr = addr_raw
            .parse()
            .map_err(|_| format!("peer `{entry}` has an invalid address"))?;
        out.push((NodeId(id), addr));
    }
    Ok(out)
}

/// Renders peers back into the `id@addr,...` form accepted by
/// [`parse_peer_list`] (the harness hands this to spawned node processes).
pub fn format_peer_list(peers: &[(NodeId, SocketAddr)]) -> String {
    peers
        .iter()
        .map(|(id, addr)| format!("{}@{addr}", id.0))
        .collect::<Vec<_>>()
        .join(",")
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parse_and_format_round_trip() {
        let raw = "0@127.0.0.1:9000,2@127.0.0.1:9002";
        let peers = parse_peer_list(raw).unwrap();
        assert_eq!(peers.len(), 2);
        assert_eq!(peers[0].0, NodeId(0));
        assert_eq!(format_peer_list(&peers), raw);
    }

    #[test]
    fn malformed_entries_are_named() {
        assert!(parse_peer_list("nope").unwrap_err().contains("nope"));
        assert!(parse_peer_list("x@127.0.0.1:1").is_err());
        assert!(parse_peer_list("1@not-an-addr").is_err());
        assert!(parse_peer_list("").unwrap().is_empty());
    }

    #[test]
    fn liveness_tracks_heard_peers() {
        let a: SocketAddr = "127.0.0.1:9001".parse().unwrap();
        let table = PeerTable::new([(NodeId(1), a), (NodeId(2), a)]);
        assert_eq!(table.silent_peers(), vec![NodeId(1), NodeId(2)]);
        assert!(!table.alive_within(NodeId(1), Duration::from_secs(60)));
        table.mark_heard(NodeId(1));
        assert!(table.alive_within(NodeId(1), Duration::from_secs(60)));
        assert_eq!(table.silent_peers(), vec![NodeId(2)]);
        assert!(table.last_heard(NodeId(2)).is_none());
    }
}
