//! Live node telemetry: histograms, the event journal, the `/metrics`
//! exposition, and the `tldag status` scraper.
//!
//! Every deployed [`crate::runtime::NetNode`] owns a [`NodeTelemetry`]:
//! lock-free latency histograms for the slot loop's phases, PoP round
//! trips, and fsyncs, plus a bounded [`Journal`] of structured events
//! (slot lifecycle, membership changes, retries, timeouts, pruned
//! misses). With `--metrics-addr` set, the node serves two HTTP routes:
//!
//! * `GET /metrics` — Prometheus-style text built by [`render_metrics`]
//!   from a [`MetricsView`] (transport counters, PoP counters, storage
//!   gauges, roster state, and every histogram), and
//! * `GET /journal` — the journal as JSONL, one event per line (the same
//!   schema as the simulator's `Trace::to_jsonl`).
//!
//! The scraper half ([`scrape_metrics`], [`StatusRow`],
//! [`render_status_table`], [`status_json`]) powers `tldag status`: it
//! pulls `/metrics` from every node of a live cluster, re-estimates
//! quantiles from the scraped bucket series, and renders one row per node
//! plus a `TOTAL` row aggregated by summing the raw samples.

use crate::metrics::NetStats;
use std::net::SocketAddr;
use std::sync::atomic::AtomicU64;
use std::sync::Mutex;
use std::time::Duration;
use tldag_core::pop::validator::PopMetrics;
pub use tldag_obs::HistogramSnapshot;
use tldag_obs::{
    histogram_quantile, http_get, parse_exposition, Expo, Journal, LatencyHistogram, Phase,
    PhaseTimings, Sample, SpanStore,
};
use tldag_sim::NodeId;

/// Default bound on the journal ring (events, not bytes).
pub const JOURNAL_CAPACITY: usize = 1024;

/// Everything one node records about itself while running. All recording
/// paths are relaxed atomics or a short mutex on the journal ring — safe
/// to share between the slot loop, the dispatcher, and a metrics scrape.
#[derive(Debug)]
pub struct NodeTelemetry {
    /// Slot-loop phase latencies (generate/exchange/gossip/verify/commit).
    pub phases: PhaseTimings,
    /// End-to-end slot latency: from generation start until the slot's
    /// verification completed. In lockstep mode this tracks the slot-loop
    /// iteration; in pipelined mode it measures true pipeline depth (a
    /// slot's verification can finish several generations later).
    pub slot_latency: LatencyHistogram,
    /// Wall-clock latency of whole PoP verifications (wire round trips
    /// included).
    pub pop_rtt: LatencyHistogram,
    /// Latency of storage `sync()` calls (the commit point's fsync).
    pub fsync: LatencyHistogram,
    /// Bounded structured event journal.
    pub journal: Journal,
    /// Block-lifecycle span ring (`--trace`). Disabled (capacity 0) by
    /// default, so untraced runs record nothing and count drops instead.
    pub spans: SpanStore,
    /// PoP verifications attempted so far.
    pub pop_attempts: AtomicU64,
    /// PoP verifications that reached consensus so far.
    pub pop_successes: AtomicU64,
    /// PoP message/byte counters accumulated over every run.
    pop: Mutex<PopMetrics>,
}

impl Default for NodeTelemetry {
    fn default() -> Self {
        Self::new(JOURNAL_CAPACITY)
    }
}

impl NodeTelemetry {
    /// Telemetry with a journal bounded to `journal_capacity` events and
    /// span tracing disabled.
    pub fn new(journal_capacity: usize) -> Self {
        Self::with_span_capacity(journal_capacity, 0)
    }

    /// Telemetry with an additional block-lifecycle span ring of
    /// `span_capacity` spans (0 disables tracing).
    pub fn with_span_capacity(journal_capacity: usize, span_capacity: usize) -> Self {
        NodeTelemetry {
            phases: PhaseTimings::new(),
            slot_latency: LatencyHistogram::new(),
            pop_rtt: LatencyHistogram::new(),
            fsync: LatencyHistogram::new(),
            journal: Journal::bounded(journal_capacity),
            spans: SpanStore::bounded(span_capacity),
            pop_attempts: AtomicU64::new(0),
            pop_successes: AtomicU64::new(0),
            pop: Mutex::new(PopMetrics::default()),
        }
    }

    /// Folds one PoP run's counters into the node-lifetime totals.
    pub fn merge_pop(&self, metrics: &PopMetrics) {
        self.pop
            .lock()
            .expect("pop metrics poisoned")
            .merge(metrics);
    }

    /// The accumulated PoP counters.
    pub fn pop(&self) -> PopMetrics {
        *self.pop.lock().expect("pop metrics poisoned")
    }
}

/// A point-in-time view of one node's observable state — the input to
/// [`render_metrics`]. The runtime assembles it under its own locks so the
/// renderer stays a pure function.
#[derive(Clone, Debug)]
pub struct MetricsView {
    /// The reporting node.
    pub node: NodeId,
    /// The slot its loop currently executes.
    pub slot: u64,
    /// Transport counters.
    pub net: NetStats,
    /// Accumulated PoP counters.
    pub pop: PopMetrics,
    /// PoP verifications attempted.
    pub pop_attempts: u64,
    /// PoP verifications that reached consensus.
    pub pop_successes: u64,
    /// Chain length (blocks).
    pub chain_len: u64,
    /// Leading blocks guaranteed durable.
    pub durable_len: u64,
    /// First retained sequence number (retention floor).
    pub pruned_floor: u64,
    /// Physical fsyncs issued by the store.
    pub fsync_count: u64,
    /// On-disk log segments backing the store.
    pub segment_count: u64,
    /// Roster members ever known (founders + joins).
    pub roster_members: u64,
    /// Members that have left or been evicted.
    pub roster_departed: u64,
    /// Peers currently banned by this node's PoP blacklist (offense-driven,
    /// Sec. IV-D.6; parole can shrink it again).
    pub blacklist_banned: u64,
    /// Distinct peers the net layer has flagged as adversarial from wire
    /// evidence (conflicting `SlotDigest`s, rejected rejoin flaps).
    pub adversaries_detected: u64,
    /// Journal events currently retained.
    pub journal_len: u64,
    /// Journal events evicted by the ring bound.
    pub journal_dropped: u64,
    /// Lifecycle spans ever recorded by the trace ring.
    pub trace_spans: u64,
    /// Spans recorded against a disabled (capacity-0) trace ring.
    pub trace_dropped: u64,
    /// Live spans overwritten because the trace ring was full.
    pub trace_evicted: u64,
    /// Configured pipeline window (1 = lockstep).
    pub window: u64,
    /// Slots currently in flight: generated but not yet verified locally
    /// (always ≤ window; 1 means the pipeline is drained).
    pub window_occupancy: u64,
    /// How far the roster-wide completion low-watermark trails this
    /// node's generation head, in slots — the stall-pressure gauge.
    pub watermark_lag: u64,
    /// Per-phase slot-loop latency snapshots.
    pub phases: Vec<(Phase, HistogramSnapshot)>,
    /// End-to-end slot latency snapshot (generation start → verified).
    pub slot_latency: HistogramSnapshot,
    /// Datagrams handled per receiver wakeup (a count histogram stored in
    /// the microsecond buckets: "µs" reads as "datagrams").
    pub batch_fill: HistogramSnapshot,
    /// PoP round-trip latency snapshot.
    pub pop_rtt: HistogramSnapshot,
    /// Request/reply round-trip latency snapshot.
    pub request_rtt: HistogramSnapshot,
    /// Realized retry-backoff waits snapshot.
    pub retry_backoff: HistogramSnapshot,
    /// Storage sync latency snapshot.
    pub fsync: HistogramSnapshot,
}

/// Renders a [`MetricsView`] as Prometheus-style exposition text.
pub fn render_metrics(view: &MetricsView) -> String {
    let mut expo = Expo::new();
    expo.gauge("tldag_node", "Node id of this process.", view.node.0 as f64);
    expo.gauge(
        "tldag_slot",
        "Slot the node's loop currently executes.",
        view.slot as f64,
    );
    expo.gauge(
        "tldag_chain_len",
        "Chain length in blocks.",
        view.chain_len as f64,
    );
    expo.gauge(
        "tldag_chain_durable_len",
        "Leading blocks guaranteed to survive a crash.",
        view.durable_len as f64,
    );
    expo.gauge(
        "tldag_pruned_floor",
        "First sequence number still retained.",
        view.pruned_floor as f64,
    );
    expo.counter(
        "tldag_store_fsync_total",
        "Physical fsync calls issued by the store.",
        view.fsync_count,
    );
    expo.gauge(
        "tldag_store_segments",
        "On-disk log segments backing the store.",
        view.segment_count as f64,
    );
    expo.gauge(
        "tldag_roster_members",
        "Members ever known to the roster.",
        view.roster_members as f64,
    );
    expo.gauge(
        "tldag_roster_departed",
        "Members that left or were evicted.",
        view.roster_departed as f64,
    );
    expo.gauge(
        "tldag_blacklist_banned",
        "Peers currently banned by the PoP blacklist.",
        view.blacklist_banned as f64,
    );
    expo.gauge(
        "tldag_adversaries_detected",
        "Distinct peers flagged as adversarial from wire evidence.",
        view.adversaries_detected as f64,
    );
    expo.gauge(
        "tldag_journal_events",
        "Events currently retained in the journal ring.",
        view.journal_len as f64,
    );
    expo.counter(
        "tldag_journal_dropped_total",
        "Events evicted by the journal's ring bound.",
        view.journal_dropped,
    );
    expo.counter(
        "tldag_trace_spans_total",
        "Block-lifecycle spans ever recorded by the trace ring.",
        view.trace_spans,
    );
    expo.counter(
        "tldag_trace_dropped_total",
        "Spans recorded while tracing was disabled.",
        view.trace_dropped,
    );
    expo.counter(
        "tldag_trace_evicted_total",
        "Live spans overwritten because the trace ring was full.",
        view.trace_evicted,
    );
    expo.gauge(
        "tldag_window",
        "Configured pipeline window (1 = lockstep).",
        view.window as f64,
    );
    expo.gauge(
        "tldag_window_occupancy",
        "Slots generated but not yet verified locally.",
        view.window_occupancy as f64,
    );
    expo.gauge(
        "tldag_watermark_lag",
        "Slots the roster-wide completion low-watermark trails the head.",
        view.watermark_lag as f64,
    );
    expo.counter(
        "tldag_pop_attempts_total",
        "PoP verifications attempted.",
        view.pop_attempts,
    );
    expo.counter(
        "tldag_pop_successes_total",
        "PoP verifications that reached consensus.",
        view.pop_successes,
    );

    for (name, value) in &view.net.fields() {
        expo.counter(
            &format!("tldag_net_{name}_total"),
            "Transport counter (see crate::metrics).",
            *value,
        );
    }
    for (name, value) in &view.pop.fields() {
        expo.counter(
            &format!("tldag_pop_{name}_total"),
            "PoP validator counter (see PopMetrics).",
            *value,
        );
    }

    let phase_labels: Vec<[(&str, &str); 1]> = view
        .phases
        .iter()
        .map(|(p, _)| [("phase", p.name())])
        .collect();
    let phase_series: Vec<(&[(&str, &str)], &HistogramSnapshot)> = view
        .phases
        .iter()
        .zip(phase_labels.iter())
        .map(|((_, snap), labels)| (labels.as_slice(), snap))
        .collect();
    expo.histogram(
        "tldag_phase_latency_micros",
        "Slot-loop phase latency in microseconds.",
        &phase_series,
    );
    expo.histogram(
        "tldag_slot_latency_micros",
        "End-to-end slot latency (generation start to verified) in \
microseconds.",
        &[(&[], &view.slot_latency)],
    );
    expo.histogram(
        "tldag_batch_fill",
        "Datagrams handled per receiver wakeup (bucket bounds are counts, \
not microseconds).",
        &[(&[], &view.batch_fill)],
    );
    expo.histogram(
        "tldag_pop_rtt_micros",
        "Whole-PoP verification latency in microseconds.",
        &[(&[], &view.pop_rtt)],
    );
    expo.histogram(
        "tldag_request_rtt_micros",
        "Answered request/reply round trip in microseconds.",
        &[(&[], &view.request_rtt)],
    );
    expo.histogram(
        "tldag_retry_backoff_micros",
        "Per-attempt waits that timed out before a retry, in microseconds.",
        &[(&[], &view.retry_backoff)],
    );
    expo.histogram(
        "tldag_fsync_micros",
        "Storage sync latency in microseconds.",
        &[(&[], &view.fsync)],
    );
    expo.finish()
}

/// Scrapes `/metrics` from one node and parses the exposition.
///
/// # Errors
///
/// Connection/read failures and malformed exposition text, as a
/// human-readable string.
pub fn scrape_metrics(addr: SocketAddr, timeout: Duration) -> Result<Vec<Sample>, String> {
    let body = http_get(addr, "/metrics", timeout).map_err(|e| format!("scrape {addr}: {e}"))?;
    parse_exposition(&body).map_err(|e| format!("scrape {addr}: {e}"))
}

/// One row of the `tldag status` table, extracted from scraped samples.
#[derive(Clone, Debug)]
pub struct StatusRow {
    /// The scrape target (`host:port`, or `TOTAL` for the aggregate).
    pub target: String,
    /// Node id (`None` for the aggregate row).
    pub node: Option<u64>,
    /// Current slot (max over nodes for the aggregate).
    pub slot: u64,
    /// Chain length (sum for the aggregate).
    pub chain_len: u64,
    /// PoP attempts / successes.
    pub pop_attempts: u64,
    /// PoP verifications that reached consensus.
    pub pop_successes: u64,
    /// Requests initiated.
    pub requests_sent: u64,
    /// Request retransmissions.
    pub request_retries: u64,
    /// Requests that exhausted their retry budget.
    pub request_timeouts: u64,
    /// Slots generated but not yet verified locally (max for the
    /// aggregate — summing occupancies across nodes is meaningless).
    pub window_occupancy: u64,
    /// Slots the roster-wide low-watermark trails the head (max for the
    /// aggregate).
    pub watermark_lag: u64,
    /// Generate-phase median latency in microseconds.
    pub generate_p50: u64,
    /// Verify-phase median latency in microseconds.
    pub verify_p50: u64,
    /// Commit-phase median latency in microseconds.
    pub commit_p50: u64,
    /// Request round-trip median in microseconds.
    pub rtt_p50: u64,
    /// Request round-trip 99th percentile in microseconds.
    pub rtt_p99: u64,
}

fn scalar(samples: &[Sample], name: &str) -> u64 {
    tldag_obs::expo::sample_value(samples, name, &[]).unwrap_or(0.0) as u64
}

fn quantile(samples: &[Sample], name: &str, labels: &[(&str, &str)], q: f64) -> u64 {
    histogram_quantile(samples, name, labels, q).unwrap_or(0.0) as u64
}

impl StatusRow {
    /// Builds a row from one node's scraped samples.
    pub fn from_samples(target: impl Into<String>, samples: &[Sample]) -> StatusRow {
        StatusRow {
            target: target.into(),
            node: tldag_obs::expo::sample_value(samples, "tldag_node", &[]).map(|v| v as u64),
            slot: scalar(samples, "tldag_slot"),
            chain_len: scalar(samples, "tldag_chain_len"),
            pop_attempts: scalar(samples, "tldag_pop_attempts_total"),
            pop_successes: scalar(samples, "tldag_pop_successes_total"),
            requests_sent: scalar(samples, "tldag_net_requests_sent_total"),
            request_retries: scalar(samples, "tldag_net_request_retries_total"),
            request_timeouts: scalar(samples, "tldag_net_request_timeouts_total"),
            window_occupancy: scalar(samples, "tldag_window_occupancy"),
            watermark_lag: scalar(samples, "tldag_watermark_lag"),
            generate_p50: quantile(
                samples,
                "tldag_phase_latency_micros",
                &[("phase", "generate")],
                0.5,
            ),
            verify_p50: quantile(
                samples,
                "tldag_phase_latency_micros",
                &[("phase", "verify")],
                0.5,
            ),
            commit_p50: quantile(
                samples,
                "tldag_phase_latency_micros",
                &[("phase", "commit")],
                0.5,
            ),
            rtt_p50: quantile(samples, "tldag_request_rtt_micros", &[], 0.5),
            rtt_p99: quantile(samples, "tldag_request_rtt_micros", &[], 0.99),
        }
    }

    /// One JSON object for this row (stable key order, no trailing spaces).
    pub fn to_json(&self) -> String {
        let node = match self.node {
            Some(n) => n.to_string(),
            None => "null".to_string(),
        };
        format!(
            "{{\"target\":\"{}\",\"node\":{},\"slot\":{},\"chain_len\":{},\
\"pop_attempts\":{},\"pop_successes\":{},\"requests_sent\":{},\
\"request_retries\":{},\"request_timeouts\":{},\"window_occupancy\":{},\
\"watermark_lag\":{},\"generate_p50_us\":{},\
\"verify_p50_us\":{},\"commit_p50_us\":{},\"rtt_p50_us\":{},\"rtt_p99_us\":{}}}",
            self.target,
            node,
            self.slot,
            self.chain_len,
            self.pop_attempts,
            self.pop_successes,
            self.requests_sent,
            self.request_retries,
            self.request_timeouts,
            self.window_occupancy,
            self.watermark_lag,
            self.generate_p50,
            self.verify_p50,
            self.commit_p50,
            self.rtt_p50,
            self.rtt_p99,
        )
    }
}

/// Merges scraped sample sets by summing the values of identical
/// `(name, labels)` series — counters and cumulative bucket series sum
/// correctly; gauges become sums too, which the aggregate row corrects for
/// where a sum is wrong (slot uses the per-node max instead).
pub fn merge_samples(per_node: &[Vec<Sample>]) -> Vec<Sample> {
    let mut merged: Vec<Sample> = Vec::new();
    for samples in per_node {
        for s in samples {
            match merged
                .iter_mut()
                .find(|m| m.name == s.name && m.labels == s.labels)
            {
                Some(m) => m.value += s.value,
                None => merged.push(s.clone()),
            }
        }
    }
    merged
}

/// Builds the aggregate `TOTAL` row: counters and histograms are summed
/// across nodes (quantiles re-estimated from the merged buckets); `slot`,
/// `window_occupancy`, and `watermark_lag` are per-node maxima, `node` is
/// absent.
pub fn total_row(per_node: &[Vec<Sample>], rows: &[StatusRow]) -> StatusRow {
    let merged = merge_samples(per_node);
    let mut total = StatusRow::from_samples("TOTAL", &merged);
    total.node = None;
    total.slot = rows.iter().map(|r| r.slot).max().unwrap_or(0);
    total.window_occupancy = rows.iter().map(|r| r.window_occupancy).max().unwrap_or(0);
    total.watermark_lag = rows.iter().map(|r| r.watermark_lag).max().unwrap_or(0);
    total
}

/// Renders status rows as an aligned table.
pub fn render_status_table(rows: &[StatusRow]) -> String {
    let mut out = String::new();
    out.push_str(&format!(
        "{:<22} {:>4} {:>6} {:>6} {:>9} {:>8} {:>7} {:>8} {:>4} {:>4} {:>9} {:>9} {:>9} {:>9}\n",
        "TARGET",
        "NODE",
        "SLOT",
        "CHAIN",
        "POP OK/AT",
        "REQS",
        "RETRY",
        "TIMEOUT",
        "OCC",
        "LAG",
        "GEN P50",
        "VRF P50",
        "CMT P50",
        "RTT P50"
    ));
    for row in rows {
        let node = row.node.map_or("-".to_string(), |n| n.to_string());
        out.push_str(&format!(
            "{:<22} {:>4} {:>6} {:>6} {:>9} {:>8} {:>7} {:>8} {:>4} {:>4} {:>8}u {:>8}u {:>8}u {:>8}u\n",
            row.target,
            node,
            row.slot,
            row.chain_len,
            format!("{}/{}", row.pop_successes, row.pop_attempts),
            row.requests_sent,
            row.request_retries,
            row.request_timeouts,
            row.window_occupancy,
            row.watermark_lag,
            row.generate_p50,
            row.verify_p50,
            row.commit_p50,
            row.rtt_p50,
        ));
    }
    out
}

/// Renders status rows (the per-node rows plus the aggregate) as one JSON
/// document: `{"targets":[...],"total":{...}}`.
pub fn status_json(rows: &[StatusRow], total: &StatusRow) -> String {
    let targets: Vec<String> = rows.iter().map(StatusRow::to_json).collect();
    format!(
        "{{\"targets\":[{}],\"total\":{}}}",
        targets.join(","),
        total.to_json()
    )
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::time::Duration;

    fn sample_view() -> MetricsView {
        let telemetry = NodeTelemetry::new(16);
        telemetry
            .phases
            .record(Phase::Generate, Duration::from_micros(120));
        telemetry
            .phases
            .record(Phase::Verify, Duration::from_micros(900));
        telemetry.pop_rtt.record_micros(1500);
        telemetry.fsync.record_micros(80);
        telemetry.merge_pop(&PopMetrics {
            messages_sent: 9,
            timeouts: 1,
            ..PopMetrics::default()
        });
        MetricsView {
            node: NodeId(2),
            slot: 7,
            net: NetStats {
                datagrams_sent: 100,
                requests_sent: 40,
                request_retries: 3,
                request_timeouts: 1,
                ..NetStats::default()
            },
            pop: telemetry.pop(),
            pop_attempts: 5,
            pop_successes: 4,
            chain_len: 8,
            durable_len: 8,
            pruned_floor: 0,
            fsync_count: 9,
            segment_count: 1,
            roster_members: 3,
            roster_departed: 0,
            blacklist_banned: 1,
            adversaries_detected: 1,
            journal_len: 2,
            journal_dropped: 0,
            trace_spans: 6,
            trace_dropped: 1,
            trace_evicted: 0,
            window: 4,
            window_occupancy: 3,
            watermark_lag: 2,
            phases: telemetry.phases.snapshot(),
            slot_latency: telemetry.slot_latency.snapshot(),
            batch_fill: HistogramSnapshot::default(),
            pop_rtt: telemetry.pop_rtt.snapshot(),
            request_rtt: HistogramSnapshot::default(),
            retry_backoff: HistogramSnapshot::default(),
            fsync: telemetry.fsync.snapshot(),
        }
    }

    #[test]
    fn exposition_round_trips_into_a_status_row() {
        let view = sample_view();
        let text = render_metrics(&view);
        let samples = parse_exposition(&text).expect("well-formed exposition");
        let row = StatusRow::from_samples("local", &samples);
        assert_eq!(row.node, Some(2));
        assert_eq!(row.slot, 7);
        assert_eq!(row.chain_len, 8);
        assert_eq!(row.pop_attempts, 5);
        assert_eq!(row.pop_successes, 4);
        assert_eq!(row.requests_sent, 40);
        assert_eq!(row.request_retries, 3);
        assert_eq!(row.request_timeouts, 1);
        assert_eq!(row.window_occupancy, 3);
        assert_eq!(row.watermark_lag, 2);
        // 120µs lands in the (64, 127] bucket → p50 estimate 127.
        assert_eq!(row.generate_p50, 127);
        assert!(row.verify_p50 >= 900 && row.verify_p50 < 1800);
    }

    #[test]
    fn known_metric_names_present() {
        let text = render_metrics(&sample_view());
        for name in [
            "tldag_node",
            "tldag_slot",
            "tldag_window",
            "tldag_window_occupancy",
            "tldag_watermark_lag",
            "tldag_slot_latency_micros_count",
            "tldag_batch_fill_count",
            "tldag_chain_len",
            "tldag_store_fsync_total",
            "tldag_store_segments",
            "tldag_roster_members",
            "tldag_blacklist_banned",
            "tldag_adversaries_detected",
            "tldag_pop_offenses_total",
            "tldag_journal_dropped_total",
            "tldag_trace_spans_total",
            "tldag_trace_dropped_total",
            "tldag_trace_evicted_total",
            "tldag_net_datagrams_sent_total",
            "tldag_pop_messages_sent_total",
            "tldag_phase_latency_micros_bucket",
            "tldag_pop_rtt_micros_count",
            "tldag_request_rtt_micros_count",
            "tldag_retry_backoff_micros_count",
            "tldag_fsync_micros_sum",
        ] {
            assert!(text.contains(name), "missing {name} in exposition");
        }
    }

    #[test]
    fn aggregate_row_sums_counters_and_maxes_slot() {
        let view = sample_view();
        let text = render_metrics(&view);
        let samples = parse_exposition(&text).expect("parses");
        let mut second = samples.clone();
        // Pretend node 3 is one slot ahead.
        for s in &mut second {
            if s.name == "tldag_node" {
                s.value = 3.0;
            }
            if s.name == "tldag_slot" {
                s.value = 8.0;
            }
        }
        let per_node = vec![samples.clone(), second.clone()];
        let rows = vec![
            StatusRow::from_samples("a", &samples),
            StatusRow::from_samples("b", &second),
        ];
        let total = total_row(&per_node, &rows);
        assert_eq!(total.node, None);
        assert_eq!(total.slot, 8);
        assert_eq!(total.chain_len, 16);
        assert_eq!(total.pop_attempts, 10);
        let table = render_status_table(&[rows[0].clone(), total.clone()]);
        assert!(table.contains("TOTAL"));
        let json = status_json(&rows, &total);
        assert!(json.starts_with("{\"targets\":["));
        assert!(json.contains("\"total\":{\"target\":\"TOTAL\""));
    }
}
