//! The peer runtime: a full 2LDAG node over a real UDP socket.
//!
//! [`NetNode`] is the deployment form of one `LedgerNode`: an [`Endpoint`]
//! plus an inbound dispatcher thread that serves the Sec. IV-C responder
//! role (`REQ_CHILD` / `FetchBlock`, with the cooperative `Nack` /
//! `PrunedNack` answers), and a slot loop that generates blocks, gossips
//! slot-tagged digests, and optionally runs the PoP verification workload
//! as a validator — over the wire, with timeout/retry loss recovery.
//!
//! ## Digest parity with the in-memory engine
//!
//! The slotted protocol is synchronous: a block generated at slot `t`
//! references the freshest digest each neighbor broadcast at `t-1`. The
//! runtime reproduces that over an asynchronous datagram network with a
//! **digest barrier**: before generating at slot `t`, the node waits until
//! it holds a [`Control::SlotDigest`] for slot `t-1` from every neighbor,
//! pulling stragglers with [`Control::DigestReq`] (loss recovery on the
//! gossip path). All per-node randomness comes from the engine's
//! `(seed, slot, node)` derived streams, so a cluster of `NetNode`s on a
//! shared seed produces **byte-identical chains** to `TldagNetwork` on the
//! same seed — `tldag cluster` asserts exactly that.

use crate::control::{Control, RunReport};
use crate::endpoint::{Endpoint, EndpointConfig, Inbound};
use crate::metrics::NetStats;
use crate::peer::PeerTable;
use std::collections::{BTreeMap, HashMap, HashSet};
use std::net::SocketAddr;
use std::path::PathBuf;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::{Arc, Mutex, RwLock};
use std::time::{Duration, Instant};
use tldag_core::block::BlockId;
use tldag_core::codec::WireMessage;
use tldag_core::config::ProtocolConfig;
use tldag_core::network::{derived_rng, stream};
use tldag_core::node::{BlockFetch, ChildServe, LedgerNode};
use tldag_core::pop::messages::{ChildReply, FetchResponse, PopTransport};
use tldag_core::pop::validator::{PopReport, Validator};
use tldag_core::store::{BackendFactory, BlockBackend, BlockStore};
use tldag_core::workload::sensor_payload;
use tldag_crypto::sha256::sha256;
use tldag_crypto::Digest;
use tldag_sim::topology::{Topology, TopologyConfig};
use tldag_sim::{DetRng, NodeId};
use tldag_storage::{DiskFactory, StorageOptions};

/// Where a deployed node keeps its chain `S_i`.
#[derive(Clone, Debug)]
pub enum StorageMode {
    /// In-memory (volatile) chain.
    Memory,
    /// Durable segmented block log under the given directory.
    Disk(PathBuf),
}

/// Configuration of one deployed node.
#[derive(Clone, Debug)]
pub struct NetNodeConfig {
    /// This node's id within the deployment topology.
    pub id: NodeId,
    /// Address to bind the UDP socket on.
    pub listen: SocketAddr,
    /// Static bootstrap peer list (every other node of the deployment).
    pub peers: Vec<(NodeId, SocketAddr)>,
    /// Harness controller to report to, if any.
    pub controller: Option<SocketAddr>,
    /// Shared experiment seed; also determines the topology.
    pub seed: u64,
    /// Total nodes in the deployment (topology size).
    pub nodes: usize,
    /// Deployment area side in meters (topology parameter).
    pub side_m: f64,
    /// Consensus path-length parameter γ.
    pub gamma: usize,
    /// Slots to execute.
    pub slots: u64,
    /// Whether to run the PoP verification workload as a validator.
    pub pop: bool,
    /// Chain storage backend.
    pub storage: StorageMode,
    /// Transport tuning.
    pub endpoint: EndpointConfig,
    /// Give-up deadline for the per-slot digest barrier.
    pub slot_timeout: Duration,
    /// Give-up deadline for the startup hello exchange.
    pub hello_timeout: Duration,
    /// How long a controller-less node keeps serving after its last slot.
    pub linger: Duration,
}

impl NetNodeConfig {
    /// A config with deployment-shaped defaults; `peers` and addresses must
    /// still be filled in.
    pub fn new(id: NodeId, listen: SocketAddr, seed: u64, nodes: usize, slots: u64) -> Self {
        NetNodeConfig {
            id,
            listen,
            peers: Vec::new(),
            controller: None,
            seed,
            nodes,
            side_m: 300.0,
            gamma: 3,
            slots,
            pop: false,
            storage: StorageMode::Memory,
            endpoint: EndpointConfig::default(),
            slot_timeout: Duration::from_secs(10),
            hello_timeout: Duration::from_secs(10),
            linger: Duration::from_millis(1500),
        }
    }
}

/// End-of-run summary of one [`NetNode`].
#[derive(Clone, Copy, Debug)]
pub struct NodeOutcome {
    /// The protocol-level summary (also what is reported to the harness).
    pub run: RunReport,
    /// Transport counters.
    pub stats: NetStats,
}

/// The protocol configuration every deployment component derives from the
/// CLI-visible knobs — one definition shared by `tldag run`, `tldag node`,
/// `tldag cluster`, and the in-memory reference engine, so parity checks
/// compare like with like.
pub fn deployment_protocol_config(gamma: usize) -> ProtocolConfig {
    ProtocolConfig::paper_default()
        .with_body_bits(8 * 1024)
        .with_gamma(gamma)
        .with_difficulty(6)
}

/// The deployment topology for `(seed, nodes, side_m)` — identical to the
/// simulator CLI's placement, so node processes and the reference engine
/// agree on `G(V, E)` without exchanging it.
pub fn deployment_topology(seed: u64, nodes: usize, side_m: f64) -> Topology {
    let cfg = TopologyConfig {
        nodes,
        side_m,
        ..TopologyConfig::paper_default()
    };
    Topology::random_connected(&cfg, &mut DetRng::seed_from(seed))
}

/// `sha256` over a chain's header digests in sequence order — the same
/// quantity as `TldagNetwork::chain_digest`, computable node-locally.
pub fn chain_digest_of(store: &dyn BlockBackend) -> Digest {
    let mut bytes = Vec::new();
    for block in store.iter() {
        bytes.extend_from_slice(block.header_digest().as_bytes());
    }
    sha256(&bytes)
}

/// Combines per-node chain digests (in node order) into the network digest —
/// the same quantity as `TldagNetwork::network_digest`.
pub fn network_digest_of(chain_digests: &[Digest]) -> Digest {
    let mut bytes = Vec::with_capacity(chain_digests.len() * 32);
    for d in chain_digests {
        bytes.extend_from_slice(d.as_bytes());
    }
    sha256(&bytes)
}

/// Serves one inbound protocol request against a node's state, returning
/// the reply to send (or `None` when the node stays silent / the message is
/// not a request). Mirrors the simulator's responder semantics exactly:
/// cooperative `Nack` for a definitive miss, `PrunedNack` with the pruned
/// floor for a retention miss, and — unlike the simulator, where silence
/// models absence — an explicit `Nack` for an unavailable block, so honest
/// requesters fail fast instead of burning their retry budget.
pub fn serve_wire_request(node: &LedgerNode, msg: &WireMessage) -> Option<WireMessage> {
    match msg {
        WireMessage::ReqChild { target, .. } => {
            node.serve_child_request(target).map(|serve| match serve {
                ChildServe::Found(block_id, header) => WireMessage::RpyChild(ChildReply {
                    claimed_owner: node.id(),
                    block_id,
                    header,
                }),
                ChildServe::NoChild => WireMessage::Nack { from: node.id() },
                ChildServe::Pruned => WireMessage::PrunedNack {
                    from: node.id(),
                    retained_from: node.pruned_floor(),
                },
            })
        }
        WireMessage::FetchBlock { id, .. } => Some(match node.serve_block(*id) {
            BlockFetch::Served(block) => WireMessage::Block(Box::new(block)),
            BlockFetch::Pruned { retained_from } => WireMessage::PrunedNack {
                from: node.id(),
                retained_from,
            },
            BlockFetch::Unavailable => WireMessage::Nack { from: node.id() },
        }),
        _ => None,
    }
}

/// [`PopTransport`] over a real socket: each exchange is an
/// [`Endpoint::request`] with retry/backoff, so datagram loss surfaces to
/// the validator as a timeout only after the retry budget is spent.
pub struct NetPopTransport<'a> {
    /// The validator's endpoint.
    pub endpoint: &'a Endpoint,
    /// Peer addressing.
    pub peers: &'a PeerTable,
}

impl PopTransport for NetPopTransport<'_> {
    fn fetch_block(
        &mut self,
        validator: NodeId,
        owner: NodeId,
        id: BlockId,
    ) -> Option<FetchResponse> {
        let addr = self.peers.addr(owner)?;
        let msg = WireMessage::FetchBlock {
            from: validator,
            id,
        };
        match self.endpoint.request(addr, &msg)? {
            (_, WireMessage::Block(block)) => Some(FetchResponse::Block(block)),
            (_, WireMessage::PrunedNack { retained_from, .. }) => {
                Some(FetchResponse::Pruned { retained_from })
            }
            // An explicit Nack means "not available"; like silence, but
            // without waiting out the retries.
            _ => None,
        }
    }

    fn request_child(
        &mut self,
        validator: NodeId,
        responder: NodeId,
        target: Digest,
    ) -> Option<tldag_core::pop::messages::ChildResponse> {
        use tldag_core::pop::messages::ChildResponse;
        let addr = self.peers.addr(responder)?;
        let msg = WireMessage::ReqChild {
            from: validator,
            target,
        };
        match self.endpoint.request(addr, &msg)? {
            (_, WireMessage::RpyChild(reply)) => Some(ChildResponse::Found(reply)),
            (_, WireMessage::Nack { .. }) => Some(ChildResponse::NoChild),
            (_, WireMessage::PrunedNack { .. }) => Some(ChildResponse::Pruned),
            _ => None,
        }
    }
}

/// The verification-target candidates the in-memory engine would scan at
/// `slot`, computed closed-form from the deployment invariants (uniform
/// schedule, no departures): node `j` holds blocks `0..=slot` with
/// generation time equal to their sequence number. Enumeration order
/// matches the engine's scan (owners ascending, sequences ascending), so
/// the derived target stream picks the same block.
pub fn wire_pop_candidates(
    nodes: usize,
    validator: NodeId,
    slot: u64,
    min_age: u64,
) -> Vec<BlockId> {
    let mut out = Vec::new();
    if slot < min_age {
        return out;
    }
    let max_seq = slot - min_age;
    for owner in 0..nodes as u32 {
        if owner == validator.0 {
            continue;
        }
        for seq in 0..=max_seq {
            out.push(BlockId::new(NodeId(owner), seq as u32));
        }
    }
    out
}

/// Shared state between the slot loop and the inbound dispatcher thread.
struct Shared {
    node: RwLock<LedgerNode>,
    /// Slot-tagged digests heard per peer (pruned as slots complete).
    digests: Mutex<HashMap<NodeId, BTreeMap<u64, Digest>>>,
    /// Own digest per recent slot, serving [`Control::DigestReq`] pulls
    /// (pruned past the deepest lag any live barrier can exhibit).
    own_digests: Mutex<BTreeMap<u64, Digest>>,
    /// Peers that acknowledged our hello.
    hello_acks: Mutex<HashSet<NodeId>>,
    /// Highest slot each peer is known to have *completed* (generation and
    /// verification) — from [`Control::SlotDone`] directly, or inferred
    /// from a [`Control::SlotDigest`] (generating slot `t` implies `t-1`
    /// completed everywhere). Drives the PoP-mode phase lockstep.
    done: Mutex<HashMap<NodeId, u64>>,
    /// Controller asked us to exit.
    shutdown: AtomicBool,
    /// Controller acknowledged our report.
    report_acked: AtomicBool,
}

/// A deployed 2LDAG node: endpoint + dispatcher + slot loop.
pub struct NetNode {
    config: NetNodeConfig,
    cfg: ProtocolConfig,
    topology: Topology,
    endpoint: Arc<Endpoint>,
    peers: Arc<PeerTable>,
    shared: Arc<Shared>,
}

impl NetNode {
    /// Binds the node's socket and provisions its storage backend.
    ///
    /// # Errors
    ///
    /// Bind failures, and storage errors when reopening a disk backend.
    pub fn new(config: NetNodeConfig) -> Result<Self, String> {
        let cfg = deployment_protocol_config(config.gamma);
        let topology = deployment_topology(config.seed, config.nodes, config.side_m);
        if config.id.index() >= topology.len() {
            return Err(format!(
                "--id {} out of range for a {}-node deployment",
                config.id,
                topology.len()
            ));
        }
        // Fail fast on an incomplete peer list: the derived topology names
        // every node, and a missing address would otherwise surface as
        // slot-long barrier timeouts instead of a startup error.
        let missing: Vec<u32> = topology
            .node_ids()
            .filter(|&n| n != config.id && config.peers.iter().all(|(p, _)| *p != n))
            .map(|n| n.0)
            .collect();
        if !missing.is_empty() {
            return Err(format!(
                "--peers is missing addresses for nodes {missing:?} of the \
{}-node deployment",
                topology.len()
            ));
        }
        let backend: Box<dyn BlockBackend> = match &config.storage {
            StorageMode::Memory => Box::new(BlockStore::new()),
            StorageMode::Disk(dir) => {
                std::fs::create_dir_all(dir)
                    .map_err(|e| format!("cannot use storage dir {}: {e}", dir.display()))?;
                DiskFactory::new(dir.clone(), StorageOptions::default()).create(config.id)
            }
        };
        let node = LedgerNode::with_backend(
            config.id,
            topology.neighbors(config.id).to_vec(),
            &cfg,
            backend,
        );
        let endpoint = Endpoint::bind(config.id, config.listen, config.endpoint)
            .map_err(|e| format!("cannot bind {}: {e}", config.listen))?;
        let peers = PeerTable::new(config.peers.iter().copied());
        Ok(NetNode {
            cfg,
            topology,
            endpoint: Arc::new(endpoint),
            peers: Arc::new(peers),
            shared: Arc::new(Shared {
                node: RwLock::new(node),
                digests: Mutex::new(HashMap::new()),
                own_digests: Mutex::new(BTreeMap::new()),
                hello_acks: Mutex::new(HashSet::new()),
                done: Mutex::new(HashMap::new()),
                shutdown: AtomicBool::new(false),
                report_acked: AtomicBool::new(false),
            }),
            config,
        })
    }

    /// The bound socket address (useful with an ephemeral `--listen` port).
    ///
    /// # Errors
    ///
    /// Propagates the socket's failure to report its address.
    pub fn local_addr(&self) -> std::io::Result<SocketAddr> {
        self.endpoint.local_addr()
    }

    /// Runs the node to completion: hello bootstrap, `slots` slots of
    /// generate → gossip → (optional) PoP, then report/linger. Returns the
    /// final summary.
    ///
    /// # Errors
    ///
    /// Startup failures (peers never came up) and storage failures; barrier
    /// timeouts are *not* errors — they mark the run `degraded` instead.
    pub fn run(self) -> Result<NodeOutcome, String> {
        let stop = Arc::new(AtomicBool::new(false));
        let receiver = {
            let endpoint = Arc::clone(&self.endpoint);
            let shared = Arc::clone(&self.shared);
            let peers = Arc::clone(&self.peers);
            let stop = Arc::clone(&stop);
            std::thread::spawn(move || {
                let mut handler = |inbound: Inbound| dispatch(&endpoint, &shared, &peers, inbound);
                endpoint.run_receiver(&stop, &mut handler);
            })
        };

        let outcome = self.drive();
        stop.store(true, Ordering::Relaxed);
        receiver.join().map_err(|_| "receiver thread panicked")?;
        outcome
    }

    /// The slot loop, separated so `run` can always tear the receiver down.
    fn drive(&self) -> Result<NodeOutcome, String> {
        let id = self.config.id;
        let seed = self.config.seed;
        self.hello_barrier()?;

        let mut degraded = false;
        let min_age = self.config.nodes as u64; // the paper's workload default
        let mut pop_attempts = 0u64;
        let mut pop_successes = 0u64;
        let neighbors: Vec<NodeId> = self.topology.neighbors(id).to_vec();

        let all_peers = self.peers.ids();
        for slot in 0..self.config.slots {
            // --- Digest barrier: collect every neighbor's slot-1 digest.
            if slot > 0 && !self.digest_barrier(&neighbors, slot - 1) {
                degraded = true;
            }
            // --- Phase lockstep (PoP mode only): the engine verifies slot
            // t-1 before anyone generates slot t, so generation waits for
            // every peer's SlotDone(t-1) — otherwise a fast peer's slot-t
            // block could answer a slow validator's slot-(t-1) PoP with
            // children the reference engine has not generated yet.
            if self.config.pop && slot > 0 && !self.done_barrier(slot - 1) {
                degraded = true;
            }

            // --- Apply gossip and generate, mirroring the engine's phases.
            let digest = {
                let mut node = self.shared.node.write().expect("node lock poisoned");
                node.begin_slot();
                if slot > 0 {
                    let mut buffered = self.shared.digests.lock().expect("digests poisoned");
                    for &nb in &neighbors {
                        let latest = buffered
                            .get(&nb)
                            .and_then(|per_slot| per_slot.range(..slot).next_back())
                            .map(|(_, &d)| d);
                        if let Some(d) = latest {
                            node.receive_digest(nb, d);
                        }
                    }
                    // Applied digests are spent; older entries can never be
                    // read again, so the buffer stays O(lag), not O(slots).
                    for per_slot in buffered.values_mut() {
                        *per_slot = per_slot.split_off(&(slot - 1));
                    }
                }
                let mut rng = derived_rng(seed, stream::GENERATE, slot, id);
                let payload = sensor_payload(&mut rng, id, slot);
                let block = node
                    .generate_block(&self.cfg, slot, payload)
                    .map_err(|e| format!("generation failed at slot {slot}: {e}"))?;
                // PerSlot durability: the engine's slot-boundary commit point.
                node.store_mut()
                    .sync()
                    .map_err(|e| format!("sync failed at slot {slot}: {e}"))?;
                block.header_digest()
            };
            {
                let mut own = self
                    .shared
                    .own_digests
                    .lock()
                    .expect("own digests poisoned");
                own.insert(slot, digest);
                // Peers can lag at most one barrier window; 16 slots of
                // history is far beyond any pull a live peer can issue.
                *own = own.split_off(&slot.saturating_sub(16));
            }
            // PoP walks the whole DAG, so in PoP mode every peer needs the
            // digest (the barrier below proves global generation progress);
            // without PoP only neighbors consume it.
            let gossip_targets: &[NodeId] = if self.config.pop {
                &all_peers
            } else {
                &neighbors
            };
            for &peer in gossip_targets {
                if let Some(addr) = self.peers.addr(peer) {
                    let _ = self
                        .endpoint
                        .send_control(addr, &Control::SlotDigest { slot, digest });
                }
            }

            // --- Verification workload: one PoP per generating validator.
            if self.config.pop {
                // The engine's verify phase starts after *all* generation
                // in the slot: wait until every peer announced its slot-t
                // digest, proving its chain holds blocks 0..=t.
                if !self.digest_barrier(&all_peers, slot) {
                    degraded = true;
                }
                let candidates = wire_pop_candidates(self.config.nodes, id, slot, min_age);
                let mut target_rng = derived_rng(seed, stream::TARGET, slot, id);
                if let Some(&target) = target_rng.choose(&candidates) {
                    pop_attempts += 1;
                    let report = self.run_wire_pop(slot, target);
                    if report.is_success() {
                        pop_successes += 1;
                    }
                }
                // Announce slot completion whether or not a target
                // qualified — peers gate their next slot on it.
                for &peer in &all_peers {
                    if let Some(addr) = self.peers.addr(peer) {
                        let _ = self
                            .endpoint
                            .send_control(addr, &Control::SlotDone { slot });
                    }
                }
            }
        }

        // --- Epilogue: flush, summarise, report, linger.
        let (chain_len, chain_digest) = {
            let mut node = self.shared.node.write().expect("node lock poisoned");
            node.store_mut()
                .sync()
                .map_err(|e| format!("final sync failed: {e}"))?;
            (node.chain_len() as u64, chain_digest_of(node.store()))
        };
        let run = RunReport {
            node: id,
            slots: self.config.slots,
            chain_len,
            chain_digest,
            pop_attempts,
            pop_successes,
            degraded,
        };
        self.epilogue(&run);
        Ok(NodeOutcome {
            run,
            stats: self.endpoint.stats(),
        })
    }

    /// Sends hellos until every peer acked (sockets are up) or the deadline
    /// passes.
    fn hello_barrier(&self) -> Result<(), String> {
        let deadline = Instant::now() + self.config.hello_timeout;
        let all: Vec<NodeId> = self.peers.ids();
        loop {
            let missing: Vec<NodeId> = {
                let acks = self.shared.hello_acks.lock().expect("hello acks poisoned");
                all.iter().filter(|p| !acks.contains(p)).copied().collect()
            };
            if missing.is_empty() {
                return Ok(());
            }
            if Instant::now() > deadline {
                return Err(format!(
                    "peers never came up: {:?}",
                    missing.iter().map(|p| p.0).collect::<Vec<_>>()
                ));
            }
            for peer in &missing {
                if let Some(addr) = self.peers.addr(*peer) {
                    let _ = self.endpoint.send_control(
                        addr,
                        &Control::Hello {
                            from: self.config.id,
                        },
                    );
                }
            }
            std::thread::sleep(Duration::from_millis(50));
        }
    }

    /// Waits until every node in `from` announced its digest for `slot`,
    /// pulling stragglers with [`Control::DigestReq`]. Returns `false` on
    /// timeout.
    fn digest_barrier(&self, from: &[NodeId], slot: u64) -> bool {
        let deadline = Instant::now() + self.config.slot_timeout;
        let mut next_pull = Instant::now() + Duration::from_millis(120);
        loop {
            let missing: Vec<NodeId> = {
                let buffered = self.shared.digests.lock().expect("digests poisoned");
                from.iter()
                    .filter(|nb| {
                        !buffered
                            .get(nb)
                            .is_some_and(|per_slot| per_slot.contains_key(&slot))
                    })
                    .copied()
                    .collect()
            };
            if missing.is_empty() {
                return true;
            }
            let now = Instant::now();
            if now > deadline {
                return false;
            }
            if now >= next_pull {
                for nb in &missing {
                    if let Some(addr) = self.peers.addr(*nb) {
                        let _ = self
                            .endpoint
                            .send_control(addr, &Control::DigestReq { slot });
                    }
                }
                next_pull = now + Duration::from_millis(120);
            }
            std::thread::sleep(Duration::from_millis(5));
        }
    }

    /// Waits until every peer completed `slot` (generation *and* its PoP).
    /// While blocked, re-broadcasts our own [`Control::SlotDone`] for
    /// `slot`: if ours was lost, the peers are the ones blocked — on us —
    /// and the mutual re-broadcast releases everyone. Returns `false` on
    /// timeout.
    fn done_barrier(&self, slot: u64) -> bool {
        let deadline = Instant::now() + self.config.slot_timeout;
        let mut next_push = Instant::now() + Duration::from_millis(120);
        let all = self.peers.ids();
        loop {
            let blocked = {
                let done = self.shared.done.lock().expect("done poisoned");
                all.iter().any(|p| done.get(p).is_none_or(|&s| s < slot))
            };
            if !blocked {
                return true;
            }
            let now = Instant::now();
            if now > deadline {
                return false;
            }
            if now >= next_push {
                for &peer in &all {
                    if let Some(addr) = self.peers.addr(peer) {
                        let _ = self
                            .endpoint
                            .send_control(addr, &Control::SlotDone { slot });
                    }
                }
                next_push = now + Duration::from_millis(120);
            }
            std::thread::sleep(Duration::from_millis(5));
        }
    }

    /// One PoP verification of `target` over the wire, with the engine's
    /// derived randomness for this `(slot, validator)`.
    fn run_wire_pop(&self, slot: u64, target: BlockId) -> PopReport {
        let (mut trust_cache, mut blacklist) = {
            let mut node = self.shared.node.write().expect("node lock poisoned");
            (node.take_trust_cache(), node.take_blacklist(&self.cfg))
        };
        let report = {
            // A read lock: the dispatcher keeps serving peers' requests
            // concurrently, so symmetric cross-verification cannot deadlock.
            let node = self.shared.node.read().expect("node lock poisoned");
            let mut pop_rng = derived_rng(self.config.seed, stream::POP, slot, self.config.id);
            let mut transport = NetPopTransport {
                endpoint: &self.endpoint,
                peers: &self.peers,
            };
            let mut validator = Validator::new(
                &self.cfg,
                &self.topology,
                self.config.id,
                node.store(),
                &mut trust_cache,
                &mut blacklist,
                &mut pop_rng,
            );
            validator.run(target, &mut transport)
        };
        let mut node = self.shared.node.write().expect("node lock poisoned");
        node.restore_trust_cache(trust_cache);
        node.restore_blacklist(blacklist);
        report
    }

    /// Reports to the controller (until acked) or lingers serving peers,
    /// then honours a shutdown request or the linger deadline.
    fn epilogue(&self, run: &RunReport) {
        match self.config.controller {
            Some(controller) => {
                let deadline = Instant::now() + self.config.slot_timeout;
                while !self.shared.report_acked.load(Ordering::Relaxed) && Instant::now() < deadline
                {
                    let _ = self
                        .endpoint
                        .send_control(controller, &Control::Report(*run));
                    std::thread::sleep(Duration::from_millis(100));
                }
                // Keep serving until the controller releases the cluster (it
                // does so only after *every* node reported) or we time out.
                let release = Instant::now() + self.config.slot_timeout;
                while !self.shared.shutdown.load(Ordering::Relaxed) && Instant::now() < release {
                    std::thread::sleep(Duration::from_millis(20));
                }
            }
            None => {
                // No controller: serve for the linger window so slower peers
                // can still finish their barriers against us.
                let release = Instant::now() + self.config.linger;
                while !self.shared.shutdown.load(Ordering::Relaxed) && Instant::now() < release {
                    std::thread::sleep(Duration::from_millis(20));
                }
            }
        }
    }
}

/// The inbound dispatcher: serves protocol requests against the node state
/// and folds control traffic into the shared runtime state.
fn dispatch(endpoint: &Endpoint, shared: &Shared, peers: &PeerTable, inbound: Inbound) {
    match inbound {
        Inbound::Wire {
            from,
            src,
            seq,
            msg,
        } => {
            if peers.addr(from).is_some() {
                peers.mark_heard(from);
            }
            let reply = {
                let node = shared.node.read().expect("node lock poisoned");
                serve_wire_request(&node, &msg)
            };
            if let Some(reply) = reply {
                let _ = endpoint.send_reply(src, seq, &reply);
            }
        }
        Inbound::Control { from, src, msg } => {
            if peers.addr(from).is_some() {
                peers.mark_heard(from);
            }
            match msg {
                Control::Hello { from: peer } => {
                    let _ = endpoint.send_control(
                        src,
                        &Control::HelloAck {
                            from: endpoint.id(),
                        },
                    );
                    // Symmetric bootstrap: hearing a hello proves the peer is
                    // up just as well as an ack does.
                    shared
                        .hello_acks
                        .lock()
                        .expect("hello acks poisoned")
                        .insert(peer);
                }
                Control::HelloAck { from: peer } => {
                    shared
                        .hello_acks
                        .lock()
                        .expect("hello acks poisoned")
                        .insert(peer);
                }
                Control::SlotDigest { slot, digest } => {
                    shared
                        .digests
                        .lock()
                        .expect("digests poisoned")
                        .entry(from)
                        .or_default()
                        .entry(slot)
                        .or_insert(digest);
                    // Generating slot t requires having passed the done
                    // barrier for t-1, so a digest doubles as a (possibly
                    // lost) SlotDone(t-1) — lockstep stays live even when
                    // the explicit announcement was dropped.
                    if slot > 0 {
                        mark_done(shared, from, slot - 1);
                    }
                }
                Control::SlotDone { slot } => mark_done(shared, from, slot),
                Control::DigestReq { slot } => {
                    let own = shared.own_digests.lock().expect("own digests poisoned");
                    if let Some(&digest) = own.get(&slot) {
                        let _ = endpoint.send_control(src, &Control::SlotDigest { slot, digest });
                    }
                }
                Control::Shutdown => shared.shutdown.store(true, Ordering::Relaxed),
                Control::ReportAck => shared.report_acked.store(true, Ordering::Relaxed),
                Control::Report(_) => {} // only the harness controller consumes these
            }
        }
    }
}

/// Raises `peer`'s highest-completed-slot watermark (monotonic).
fn mark_done(shared: &Shared, peer: NodeId, slot: u64) {
    let mut done = shared.done.lock().expect("done poisoned");
    let entry = done.entry(peer).or_insert(slot);
    if *entry < slot {
        *entry = slot;
    }
}
