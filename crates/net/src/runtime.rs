//! The peer runtime: a full 2LDAG node over a real UDP socket.
//!
//! [`NetNode`] is the deployment form of one `LedgerNode`: an [`Endpoint`]
//! plus an inbound dispatcher thread that serves the Sec. IV-C responder
//! role (`REQ_CHILD` / `FetchBlock`, with the cooperative `Nack` /
//! `PrunedNack` answers), and a slot loop that generates blocks, gossips
//! slot-tagged digests, and optionally runs the PoP verification workload
//! as a validator — over the wire, with timeout/retry loss recovery.
//!
//! ## Digest parity with the in-memory engine
//!
//! The slotted protocol is synchronous: a block generated at slot `t`
//! references the freshest digest each neighbor broadcast at `t-1`. The
//! runtime reproduces that over an asynchronous datagram network with a
//! **digest barrier**: before generating at slot `t`, the node waits until
//! it holds a [`Control::SlotDigest`] for slot `t-1` from every neighbor,
//! pulling stragglers with [`Control::DigestReq`] (loss recovery on the
//! gossip path). All per-node randomness comes from the engine's
//! `(seed, slot, node)` derived streams, so a cluster of `NetNode`s on a
//! shared seed produces **byte-identical chains** to `TldagNetwork` on the
//! same seed — `tldag cluster` asserts exactly that.
//!
//! ## Dynamic membership
//!
//! The runtime executes the engine's `node_joins` / `node_leaves`
//! semantics over the wire (see [`crate::membership`]):
//!
//! * **Join**: a `--join` process handshakes with any bootstrap peer
//!   ([`Control::JoinReq`] → [`Control::JoinAck`] + roster transfer),
//!   announces itself ([`Control::JoinAnnounce`], re-gossiped by every
//!   peer that learns something new), and starts generating at its join
//!   slot with an empty chain — its state catch-up rides the existing
//!   pull-based `DigestReq` recovery path, so a joiner needs no bulk
//!   transfer to participate.
//! * **Leave**: a node whose schedule ends at slot `m` generates its last
//!   block at `m - 1`, broadcasts [`Control::Leave`], and keeps *serving*
//!   until the run winds down (its historical blocks stay fetchable,
//!   matching the engine's "blocks stay referenced" semantics while the
//!   process is alive; once it exits, PoP reports `BlockUnavailable`,
//!   also matching).
//! * **Eviction**: a peer that blocks a barrier and has gone silent
//!   longer than the configured eviction window is treated as having left
//!   at the blocked slot; the eviction is gossiped so the cluster
//!   converges. Evictions always mark the run degraded — the reference
//!   engine did not schedule them.
//!
//! Membership deltas apply at **slot boundaries**, leaves before joins —
//! the canonical order every process (and the reference engine replay in
//! the harness) uses, which keeps the digest barrier correct when the
//! roster changes mid-run.

use crate::control::{Control, RunReport, WireMember};
use crate::endpoint::{Endpoint, EndpointConfig, Inbound};
use crate::envelope::TraceContext;
use crate::membership::{join_site, ChurnEvent, Roster};
use crate::metrics::NetStats;
use crate::peer::PeerTable;
use crate::telemetry::{render_metrics, MetricsView, NodeTelemetry, JOURNAL_CAPACITY};
use crate::transport::{FaultSpec, FaultyTransport, UdpTransport};
use std::collections::{BTreeMap, HashMap, HashSet};
use std::fmt;
use std::net::SocketAddr;
use std::path::PathBuf;
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::{Arc, Condvar, Mutex, RwLock};
use std::time::{Duration, Instant};
use tldag_core::attack::Behavior;
use tldag_core::blacklist::Blacklist;
use tldag_core::block::{BlockBody, BlockId, DataBlock, DigestEntry};
use tldag_core::codec::WireMessage;
use tldag_core::config::ProtocolConfig;
use tldag_core::error::TldagError;
use tldag_core::network::{derived_rng, stream};
use tldag_core::node::{BlockFetch, ChildServe, LedgerNode};
use tldag_core::pop::messages::{ChildReply, FetchResponse, PopTransport};
use tldag_core::pop::validator::{PopReport, Validator};
use tldag_core::store::{BackendFactory, BlockBackend, BlockStore, TrustCache};
use tldag_core::workload::sensor_payload;
use tldag_crypto::sha256::sha256;
use tldag_crypto::{Digest, KeyPair};
use tldag_obs::{
    trace_json, unix_micros, EventKind, HttpServer, Phase, Routes, SpanEvent, SpanKind, SpanStore,
    DEFAULT_SPAN_CAPACITY,
};
use tldag_sim::topology::{Topology, TopologyConfig};
use tldag_sim::{Bits, DetRng, NodeId};
use tldag_storage::{DiskFactory, StorageOptions};

/// Where a deployed node keeps its chain `S_i`.
#[derive(Clone, Debug)]
pub enum StorageMode {
    /// In-memory (volatile) chain.
    Memory,
    /// Durable segmented block log under the given directory.
    Disk(PathBuf),
}

/// Configuration of one deployed node.
#[derive(Clone, Debug)]
pub struct NetNodeConfig {
    /// This node's id within the deployment topology.
    pub id: NodeId,
    /// Address to bind the UDP socket on.
    pub listen: SocketAddr,
    /// Static bootstrap peer list (every founder of the deployment; empty
    /// for a `--join` process, which learns peers from the handshake).
    pub peers: Vec<(NodeId, SocketAddr)>,
    /// Harness controller to report to, if any.
    pub controller: Option<SocketAddr>,
    /// Shared experiment seed; also determines the topology.
    pub seed: u64,
    /// Founding nodes in the deployment (initial topology size).
    pub nodes: usize,
    /// Deployment area side in meters (topology parameter).
    pub side_m: f64,
    /// Consensus path-length parameter γ.
    pub gamma: usize,
    /// Protocol horizon: founders execute slots `0..slots`.
    pub slots: u64,
    /// Whether to run the PoP verification workload as a validator.
    pub pop: bool,
    /// Epoch window `W`: how many slots generation may run ahead of the
    /// roster-wide completion low-watermark. `1` is the classic lockstep
    /// (each slot fully verified everywhere before the next generation);
    /// `W ≥ 2` pipelines generation against a background verify worker.
    /// Only meaningful with `pop` (without verification the slot loop's
    /// only cross-node dependency is the neighbor digest, which no window
    /// can relax). Every process of a deployment must use the same value.
    pub window: u64,
    /// Chain storage backend.
    pub storage: StorageMode,
    /// Transport tuning.
    pub endpoint: EndpointConfig,
    /// Give-up deadline for the per-slot digest barrier.
    pub slot_timeout: Duration,
    /// Give-up deadline for the startup hello exchange / join handshake.
    pub hello_timeout: Duration,
    /// How long a controller-less node keeps serving after its last slot.
    pub linger: Duration,
    /// Scheduled churn shared by every process of the deployment
    /// (`--churn`); drives deterministic membership for parity runs.
    pub churn: Vec<ChurnEvent>,
    /// Bootstrap peer for a dynamic join: when set, this node is a late
    /// joiner and `peers` may be empty.
    pub join: Option<SocketAddr>,
    /// The joiner's first generation slot. `None` on a `--join` node
    /// means "pick from the handshake" (bootstrap's slot plus a margin).
    pub join_slot: Option<u64>,
    /// Stop generating at this slot (the node's graceful leave). Defaults
    /// to this node's scheduled leave in `churn`, if any.
    pub leave_at: Option<u64>,
    /// Evict a barrier-blocking peer after this much silence. `None`
    /// disables liveness eviction (the default for parity runs).
    pub evict_after: Option<Duration>,
    /// Datagram fault injection on this node's transport (experiments).
    pub fault: Option<FaultSpec>,
    /// Hard wall-clock cap on the whole process: a watchdog thread exits
    /// the process (code 124) once it passes, so a wedged or orphaned
    /// node can never outlive its harness. `None` disables.
    pub deadline: Option<Duration>,
    /// Serve `GET /metrics` (Prometheus text) and `GET /journal` (JSONL)
    /// on this address while the node runs. `None` disables the listener;
    /// telemetry is recorded either way.
    pub metrics_addr: Option<SocketAddr>,
    /// Record block-lifecycle spans (generated → gossiped-out → received →
    /// verified → committed) and stamp digest gossip with a wire-level
    /// trace context, served from `GET /trace`. Tracing never changes the
    /// protocol bytes' *content* — an untraced peer decodes stamped frames
    /// identically — and a tracing-off run puts exactly the v1 bytes on
    /// the wire.
    pub trace: bool,
    /// How this node behaves once `behavior_from` is reached. Anything but
    /// [`Behavior::Honest`] makes the process a wire adversary: silent
    /// kinds stop serving, gossip attackers push conflicting digests, and
    /// the flapper goes dark until evicted, then spams rejoins. The
    /// adversary's *canonical* chain stays protocol-conformant (the engine
    /// generates for malicious nodes too), which is what keeps honest-node
    /// parity with a reference engine run under the same placement.
    pub behavior: Behavior,
    /// First slot the behaviour activates at (honest before that).
    pub behavior_from: u64,
}

impl NetNodeConfig {
    /// A config with deployment-shaped defaults; `peers` and addresses must
    /// still be filled in.
    pub fn new(id: NodeId, listen: SocketAddr, seed: u64, nodes: usize, slots: u64) -> Self {
        NetNodeConfig {
            id,
            listen,
            peers: Vec::new(),
            controller: None,
            seed,
            nodes,
            side_m: 300.0,
            gamma: 3,
            slots,
            pop: false,
            window: 1,
            storage: StorageMode::Memory,
            endpoint: EndpointConfig::default(),
            slot_timeout: Duration::from_secs(10),
            hello_timeout: Duration::from_secs(10),
            linger: Duration::from_millis(1500),
            churn: Vec::new(),
            join: None,
            join_slot: None,
            leave_at: None,
            evict_after: None,
            fault: None,
            deadline: None,
            metrics_addr: None,
            trace: false,
            behavior: Behavior::Honest,
            behavior_from: 0,
        }
    }
}

/// End-of-run summary of one [`NetNode`].
#[derive(Clone, Copy, Debug)]
pub struct NodeOutcome {
    /// The protocol-level summary (also what is reported to the harness).
    pub run: RunReport,
    /// Transport counters.
    pub stats: NetStats,
}

/// The protocol configuration every deployment component derives from the
/// CLI-visible knobs — one definition shared by `tldag run`, `tldag node`,
/// `tldag cluster`, and the in-memory reference engine, so parity checks
/// compare like with like.
pub fn deployment_protocol_config(gamma: usize) -> ProtocolConfig {
    ProtocolConfig::paper_default()
        .with_body_bits(8 * 1024)
        .with_gamma(gamma)
        .with_difficulty(6)
}

/// The deployment topology for `(seed, nodes, side_m)` — identical to the
/// simulator CLI's placement, so node processes and the reference engine
/// agree on `G(V, E)` without exchanging it.
pub fn deployment_topology(seed: u64, nodes: usize, side_m: f64) -> Topology {
    let cfg = TopologyConfig {
        nodes,
        side_m,
        ..TopologyConfig::paper_default()
    };
    Topology::random_connected(&cfg, &mut DetRng::seed_from(seed))
}

/// The deployment radio range in meters (the paper's default) — the
/// parameter joins use to wire the newcomer's radio links.
pub fn deployment_range_m() -> f64 {
    TopologyConfig::paper_default().range_m
}

/// `sha256` over a chain's header digests in sequence order — the same
/// quantity as `TldagNetwork::chain_digest`, computable node-locally.
pub fn chain_digest_of(store: &dyn BlockBackend) -> Digest {
    let mut bytes = Vec::new();
    for block in store.iter() {
        bytes.extend_from_slice(block.header_digest().as_bytes());
    }
    sha256(&bytes)
}

/// Combines per-node chain digests (in node order) into the network digest —
/// the same quantity as `TldagNetwork::network_digest`.
pub fn network_digest_of(chain_digests: &[Digest]) -> Digest {
    let mut bytes = Vec::with_capacity(chain_digests.len() * 32);
    for d in chain_digests {
        bytes.extend_from_slice(d.as_bytes());
    }
    sha256(&bytes)
}

/// First 8 bytes (big-endian) of a header digest — the block identity key
/// every lifecycle span and wire trace context carries.
pub fn digest_prefix(digest: &Digest) -> u64 {
    let mut p = [0u8; 8];
    p.copy_from_slice(&digest.as_bytes()[..8]);
    u64::from_be_bytes(p)
}

/// Records one lifecycle span on this node's trace ring. A no-op (modulo
/// the drop counter) when tracing is off.
fn record_span(shared: &Shared, node: u32, slot: u64, origin: u32, prefix: u64, kind: SpanKind) {
    if shared.telemetry.spans.is_enabled() {
        shared.telemetry.spans.record(SpanEvent {
            slot,
            origin,
            prefix,
            node,
            kind,
            ts_micros: unix_micros(),
        });
    }
}

/// Serves one inbound protocol request against a node's state, returning
/// the reply to send (or `None` when the node stays silent / the message is
/// not a request). Mirrors the simulator's responder semantics exactly:
/// cooperative `Nack` for a definitive miss, `PrunedNack` with the pruned
/// floor for a retention miss, and — unlike the simulator, where silence
/// models absence — an explicit `Nack` for an unavailable block, so honest
/// requesters fail fast instead of burning their retry budget.
pub fn serve_wire_request(node: &LedgerNode, msg: &WireMessage) -> Option<WireMessage> {
    match msg {
        WireMessage::ReqChild { target, .. } => {
            node.serve_child_request(target).map(|serve| match serve {
                ChildServe::Found(block_id, header) => WireMessage::RpyChild(ChildReply {
                    claimed_owner: node.id(),
                    block_id,
                    header,
                }),
                ChildServe::NoChild => WireMessage::Nack { from: node.id() },
                ChildServe::Pruned => WireMessage::PrunedNack {
                    from: node.id(),
                    retained_from: node.pruned_floor(),
                },
            })
        }
        WireMessage::ReqChildAt {
            target, horizon, ..
        } => node
            .serve_child_request_within(target, *horizon)
            .map(|serve| match serve {
                ChildServe::Found(block_id, header) => WireMessage::RpyChild(ChildReply {
                    claimed_owner: node.id(),
                    block_id,
                    header,
                }),
                ChildServe::NoChild => WireMessage::Nack { from: node.id() },
                ChildServe::Pruned => WireMessage::PrunedNack {
                    from: node.id(),
                    retained_from: node.pruned_floor(),
                },
            }),
        WireMessage::FetchBlock { id, .. } => Some(match node.serve_block(*id) {
            BlockFetch::Served(block) => WireMessage::Block(Box::new(block)),
            BlockFetch::Pruned { retained_from } => WireMessage::PrunedNack {
                from: node.id(),
                retained_from,
            },
            BlockFetch::Unavailable => WireMessage::Nack { from: node.id() },
        }),
        _ => None,
    }
}

/// [`PopTransport`] over a real socket: each exchange is an
/// [`Endpoint::request`] with retry/backoff, so datagram loss surfaces to
/// the validator as a timeout only after the retry budget is spent.
pub struct NetPopTransport<'a> {
    /// The validator's endpoint.
    pub endpoint: &'a Endpoint,
    /// Peer addressing.
    pub peers: &'a PeerTable,
    /// When set, child requests carry this horizon so run-ahead responders
    /// answer from their store *as of that slot* — the pipelined validator
    /// must see exactly what a lockstep one would have.
    pub horizon: Option<u64>,
    /// When set, every block fetched during the PoP walk is stamped with a
    /// [`SpanKind::Verified`] span on this ring (`None` = tracing off).
    pub spans: Option<&'a SpanStore>,
}

impl PopTransport for NetPopTransport<'_> {
    fn fetch_block(
        &mut self,
        validator: NodeId,
        owner: NodeId,
        id: BlockId,
    ) -> Option<FetchResponse> {
        let addr = self.peers.addr(owner)?;
        let msg = WireMessage::FetchBlock {
            from: validator,
            id,
        };
        match self.endpoint.request(addr, &msg)? {
            (_, WireMessage::Block(block)) => {
                if let Some(spans) = self.spans {
                    spans.record(SpanEvent {
                        slot: block.header.time,
                        origin: block.id.owner.0,
                        prefix: digest_prefix(&block.header_digest()),
                        node: self.endpoint.id().0,
                        kind: SpanKind::Verified,
                        ts_micros: unix_micros(),
                    });
                }
                Some(FetchResponse::Block(block))
            }
            (_, WireMessage::PrunedNack { retained_from, .. }) => {
                Some(FetchResponse::Pruned { retained_from })
            }
            // An explicit Nack means "not available"; like silence, but
            // without waiting out the retries.
            _ => None,
        }
    }

    fn request_child(
        &mut self,
        validator: NodeId,
        responder: NodeId,
        target: Digest,
    ) -> Option<tldag_core::pop::messages::ChildResponse> {
        use tldag_core::pop::messages::ChildResponse;
        let addr = self.peers.addr(responder)?;
        let msg = match self.horizon {
            Some(horizon) => WireMessage::ReqChildAt {
                from: validator,
                target,
                horizon,
            },
            None => WireMessage::ReqChild {
                from: validator,
                target,
            },
        };
        match self.endpoint.request(addr, &msg)? {
            (_, WireMessage::RpyChild(reply)) => Some(ChildResponse::Found(reply)),
            (_, WireMessage::Nack { .. }) => Some(ChildResponse::NoChild),
            (_, WireMessage::PrunedNack { .. }) => Some(ChildResponse::Pruned),
            _ => None,
        }
    }
}

/// The verification-target candidates the in-memory engine would scan at
/// `slot`, computed closed-form from the deployment invariants (uniform
/// schedule): a member that joined at slot `j` holds blocks with sequence
/// `t - j` and generation time `t` for every `t` it generated in, and
/// departed members are skipped entirely — exactly the engine's
/// `choose_target` scan under the same membership history. Enumeration
/// order matches the engine's (owners ascending, sequences ascending), so
/// the derived target stream picks the same block.
pub fn wire_pop_candidates(
    roster: &Roster,
    validator: NodeId,
    slot: u64,
    min_age: u64,
) -> Vec<BlockId> {
    let mut out = Vec::new();
    if slot < min_age {
        return out;
    }
    let horizon = slot - min_age; // latest qualifying generation time
    for owner in (0..roster.total_ids()).map(NodeId) {
        if owner == validator || roster.departed_by(owner, slot) {
            continue;
        }
        let Some(member) = roster.member(owner) else {
            continue;
        };
        let mut t = member.join_slot;
        while t <= horizon {
            out.push(BlockId::new(owner, (t - member.join_slot) as u32));
            t += 1;
        }
    }
    out
}

/// Shared state between the slot loop and the inbound dispatcher thread.
struct Shared {
    node: RwLock<LedgerNode>,
    /// The deployment graph, mutated at slot boundaries as membership
    /// changes apply (joins add radio links, leaves cut them).
    topology: RwLock<Topology>,
    /// The membership view (who generates at which slot, and where).
    roster: Mutex<Roster>,
    /// Slot-tagged digests heard per peer (pruned as slots complete).
    digests: Mutex<HashMap<NodeId, BTreeMap<u64, Digest>>>,
    /// Own digest per recent slot, serving [`Control::DigestReq`] pulls
    /// (pruned past the deepest lag any live barrier can exhibit).
    own_digests: Mutex<BTreeMap<u64, Digest>>,
    /// Peers that acknowledged our hello (founders) or join announcement
    /// (joiners).
    hello_acks: Mutex<HashSet<NodeId>>,
    /// Highest slot each peer is known to have *completed* (generation and
    /// verification) — from [`Control::SlotDone`] directly, or inferred
    /// from a [`Control::SlotDigest`] (generating slot `t` implies `t-1`
    /// completed everywhere). Drives the PoP-mode phase lockstep.
    done: Mutex<HashMap<NodeId, u64>>,
    /// The join handshake's ack, once received: responder, its current
    /// slot, and how many roster entries to expect.
    join_ack: Mutex<Option<(NodeId, u64, u32)>>,
    /// Ids received via [`Control::RosterEntry`] (handshake completion).
    transfer_seen: Mutex<HashSet<NodeId>>,
    /// The slot the loop currently executes (served to join handshakes).
    current_slot: AtomicU64,
    /// The configured epoch window (1 = lockstep); the dispatcher needs
    /// it to infer completion watermarks from digests.
    window: u64,
    /// Our own verify watermark: every slot below it has been verified
    /// locally (the inline PoP in lockstep mode, the verify worker in
    /// pipelined mode). Non-PoP runs advance it with generation.
    verified_through: AtomicU64,
    /// Version counter + condvar forming the pipeline's progress signal:
    /// bumped whenever shared protocol state changes (digest heard, done
    /// watermark raised, membership delta, own slot verified), so
    /// pipelined waits park instead of polling.
    progress: Mutex<u64>,
    /// Wakes the waits parked on [`Shared::progress`].
    progress_cv: Condvar,
    /// Generation start times of slots still in the pipeline, consumed by
    /// whoever completes the slot's verification (end-to-end latency).
    slot_started: Mutex<HashMap<u64, Instant>>,
    /// The generation loop failed mid-run: the verify worker must wind
    /// down instead of waiting out its timeouts slot by slot.
    pipeline_abort: AtomicBool,
    /// Controller asked us to exit.
    shutdown: AtomicBool,
    /// Controller acknowledged our report.
    report_acked: AtomicBool,
    /// Histograms + journal, shared with the dispatcher, the metrics
    /// listener, and (via [`NetNode::telemetry`]) in-process harnesses.
    telemetry: Arc<NodeTelemetry>,
    /// Traced block identities heard per slot — `(origin, prefix)` from
    /// inbound digest gossip's trace contexts — consumed at the slot's
    /// local commit point to stamp every known block of the slot with a
    /// [`SpanKind::Committed`] span. Empty when tracing is off.
    trace_keys: Mutex<BTreeMap<u64, Vec<(u32, u64)>>>,
    /// The resolved metrics listener address (meaningful with port 0),
    /// reported back in the [`RunReport`].
    metrics_resolved: Mutex<Option<SocketAddr>>,
    /// Peers flagged as adversarial from wire evidence — conflicting
    /// `SlotDigest` pairs or rejected rejoin flaps — exported as the
    /// `tldag_adversaries_detected` gauge and named in the journal.
    suspects: Mutex<HashSet<NodeId>>,
    /// The PoP blacklist's banned-peer count, sampled after every PoP run
    /// (the blacklist itself travels with whoever holds the trust state)
    /// and exported as the `tldag_blacklist_banned` gauge.
    blacklist_banned: AtomicU64,
    /// Dark-mode flag for the flapping adversary: while set, the
    /// dispatcher neither serves requests nor acks control traffic, so
    /// honest peers see the silence their eviction logic keys on.
    muted: AtomicBool,
}

/// What a slot loop hands back to the epilogue.
struct SlotLoopOutcome {
    degraded: bool,
    pop_attempts: u64,
    pop_successes: u64,
}

/// A deployed 2LDAG node: endpoint + dispatcher + slot loop.
pub struct NetNode {
    config: NetNodeConfig,
    cfg: ProtocolConfig,
    endpoint: Arc<Endpoint>,
    peers: Arc<PeerTable>,
    shared: Arc<Shared>,
}

impl NetNode {
    /// Binds the node's socket and provisions its storage backend.
    ///
    /// # Errors
    ///
    /// Bind failures, storage errors when reopening a disk backend, and
    /// inconsistent membership configuration.
    pub fn new(mut config: NetNodeConfig) -> Result<Self, String> {
        if !(1..=32).contains(&config.window) {
            return Err(format!("--window {} out of range (1..=32)", config.window));
        }
        let cfg = deployment_protocol_config(config.gamma);
        let topology = deployment_topology(config.seed, config.nodes, config.side_m);
        let is_joiner = config.join.is_some();

        // Resolve this node's scheduled join/leave from the churn spec.
        for event in &config.churn {
            match *event {
                ChurnEvent::Join { id, slot } if id == config.id => {
                    config.join_slot.get_or_insert(slot);
                }
                ChurnEvent::Leave { id, slot } if id == config.id => {
                    config.leave_at.get_or_insert(slot);
                }
                _ => {}
            }
        }

        if is_joiner {
            if config.id.index() < config.nodes {
                return Err(format!(
                    "--join is for late joiners: --id {} names a founder of the \
{}-node deployment",
                    config.id, config.nodes
                ));
            }
        } else {
            if config.id.index() >= topology.len() {
                return Err(format!(
                    "--id {} out of range for a {}-node deployment (late joiners \
need --join)",
                    config.id,
                    topology.len()
                ));
            }
            // Fail fast on an incomplete peer list: the derived topology names
            // every founder, and a missing address would otherwise surface as
            // slot-long barrier timeouts instead of a startup error.
            let missing: Vec<u32> = topology
                .node_ids()
                .filter(|&n| n != config.id && config.peers.iter().all(|(p, _)| *p != n))
                .map(|n| n.0)
                .collect();
            if !missing.is_empty() {
                return Err(format!(
                    "--peers is missing addresses for nodes {missing:?} of the \
{}-node deployment",
                    topology.len()
                ));
            }
        }

        let backend: Box<dyn BlockBackend> = match &config.storage {
            StorageMode::Memory => Box::new(BlockStore::new()),
            StorageMode::Disk(dir) => {
                std::fs::create_dir_all(dir)
                    .map_err(|e| format!("cannot use storage dir {}: {e}", dir.display()))?;
                DiskFactory::new(dir.clone(), StorageOptions::default()).create(config.id)
            }
        };
        // A joiner's neighbor set is wired when its join applies at the
        // join-slot boundary; founders take theirs from the topology.
        let neighbors = if is_joiner {
            Vec::new()
        } else {
            topology.neighbors(config.id).to_vec()
        };
        let node = LedgerNode::with_backend(config.id, neighbors, &cfg, backend);

        let endpoint = match config.fault {
            None => Endpoint::bind(config.id, config.listen, config.endpoint)
                .map_err(|e| format!("cannot bind {}: {e}", config.listen))?,
            Some(spec) => {
                let udp = UdpTransport::bind(config.listen)
                    .map_err(|e| format!("cannot bind {}: {e}", config.listen))?;
                let rng =
                    DetRng::seed_from(config.seed ^ 0x000f_a017 ^ (u64::from(config.id.0) << 40));
                let faults = Arc::new(FaultyTransport::new(udp, spec, rng));
                Endpoint::with_transport(config.id, Box::new(faults), config.endpoint)
            }
        };
        let self_addr = endpoint
            .local_addr()
            .map_err(|e| format!("cannot read bound address: {e}"))?;
        let peers = PeerTable::new(config.peers.iter().copied());

        // The roster starts from the founders plus every scheduled event;
        // dynamic joins/leaves merge in as their announcements arrive.
        let mut roster = Roster::founders(config.nodes);
        for (id, addr) in &config.peers {
            roster.set_addr(*id, *addr);
        }
        for event in &config.churn {
            match *event {
                ChurnEvent::Join { id, slot } => {
                    roster.learn_join(id, None, slot);
                }
                ChurnEvent::Leave { id, slot } => {
                    roster.learn_leave(id, slot);
                }
            }
        }
        if let Some(slot) = config.join_slot {
            roster.learn_join(config.id, Some(self_addr), slot);
        }
        roster.set_addr(config.id, self_addr);

        Ok(NetNode {
            cfg,
            endpoint: Arc::new(endpoint),
            peers: Arc::new(peers),
            shared: Arc::new(Shared {
                node: RwLock::new(node),
                topology: RwLock::new(topology),
                roster: Mutex::new(roster),
                digests: Mutex::new(HashMap::new()),
                own_digests: Mutex::new(BTreeMap::new()),
                hello_acks: Mutex::new(HashSet::new()),
                done: Mutex::new(HashMap::new()),
                join_ack: Mutex::new(None),
                transfer_seen: Mutex::new(HashSet::new()),
                current_slot: AtomicU64::new(0),
                window: config.window,
                verified_through: AtomicU64::new(0),
                progress: Mutex::new(0),
                progress_cv: Condvar::new(),
                slot_started: Mutex::new(HashMap::new()),
                pipeline_abort: AtomicBool::new(false),
                shutdown: AtomicBool::new(false),
                report_acked: AtomicBool::new(false),
                telemetry: Arc::new(NodeTelemetry::with_span_capacity(
                    JOURNAL_CAPACITY,
                    if config.trace {
                        DEFAULT_SPAN_CAPACITY
                    } else {
                        0
                    },
                )),
                trace_keys: Mutex::new(BTreeMap::new()),
                metrics_resolved: Mutex::new(None),
                suspects: Mutex::new(HashSet::new()),
                blacklist_banned: AtomicU64::new(0),
                muted: AtomicBool::new(false),
            }),
            config,
        })
    }

    /// The bound socket address (useful with an ephemeral `--listen` port).
    ///
    /// # Errors
    ///
    /// Propagates the socket's failure to report its address.
    pub fn local_addr(&self) -> std::io::Result<SocketAddr> {
        self.endpoint.local_addr()
    }

    /// Shared handle to the node's telemetry (histograms + journal). The
    /// handle stays valid while `run` consumes the node, so in-process
    /// harnesses can read end-of-run latency distributions.
    pub fn telemetry(&self) -> Arc<NodeTelemetry> {
        Arc::clone(&self.shared.telemetry)
    }

    /// Runs the node to completion: bootstrap (hello exchange for
    /// founders, join handshake for `--join` nodes), the slot loop of
    /// generate → gossip → (optional) PoP, then report/linger. Returns
    /// the final summary.
    ///
    /// # Errors
    ///
    /// Startup failures (peers never came up, handshake never answered)
    /// and storage failures; barrier timeouts are *not* errors — they
    /// mark the run `degraded` instead.
    pub fn run(self) -> Result<NodeOutcome, String> {
        // Watchdog: whatever happens to the slot loop or the harness, this
        // process cannot outlive its deadline — no orphaned UDP listeners.
        if let Some(deadline) = self.config.deadline {
            let cutoff = Instant::now() + deadline;
            std::thread::spawn(move || loop {
                if Instant::now() >= cutoff {
                    eprintln!("tldag node: watchdog deadline passed, exiting");
                    std::process::exit(124);
                }
                std::thread::sleep(Duration::from_millis(200));
            });
        }
        let stop = Arc::new(AtomicBool::new(false));
        // Metrics listener: serves scrapes for the node's whole lifetime
        // (slot loop, report, linger), so `tldag status` sees mid-run and
        // end-of-run state alike.
        let metrics_server = match self.config.metrics_addr {
            Some(addr) => {
                let endpoint = Arc::clone(&self.endpoint);
                let shared = Arc::clone(&self.shared);
                let node_id = self.config.id;
                let routes: Arc<Routes> = Arc::new(move |path: &str| match path {
                    "/metrics" => Some((
                        "text/plain; version=0.0.4".to_string(),
                        render_metrics(&collect_view(node_id, &endpoint, &shared)),
                    )),
                    "/journal" => Some((
                        "application/jsonl".to_string(),
                        shared.telemetry.journal.to_jsonl(),
                    )),
                    "/trace" => Some((
                        "application/json".to_string(),
                        trace_json(
                            node_id.0,
                            &shared.telemetry.spans.snapshot(),
                            shared.telemetry.spans.dropped(),
                            shared.telemetry.spans.evicted(),
                        ),
                    )),
                    _ => None,
                });
                let server = HttpServer::spawn(addr, routes)
                    .map_err(|e| format!("cannot bind metrics listener {addr}: {e}"))?;
                // With port 0 the kernel picks the port; the resolved
                // address on stdout (and in the RunReport) is the only way
                // a harness can find the listener.
                let resolved = server.addr();
                println!("metrics listening on {resolved}");
                *self
                    .shared
                    .metrics_resolved
                    .lock()
                    .expect("metrics addr poisoned") = Some(resolved);
                Some(server)
            }
            None => None,
        };
        let receiver = {
            let endpoint = Arc::clone(&self.endpoint);
            let shared = Arc::clone(&self.shared);
            let peers = Arc::clone(&self.peers);
            let stop = Arc::clone(&stop);
            std::thread::spawn(move || {
                let mut handler = |inbound: Inbound| dispatch(&endpoint, &shared, &peers, inbound);
                endpoint.run_receiver(&stop, &mut handler);
            })
        };

        let outcome = self.drive();
        stop.store(true, Ordering::Relaxed);
        receiver.join().map_err(|_| "receiver thread panicked")?;
        if let Some(server) = metrics_server {
            server.shutdown();
        }
        outcome
    }

    /// The slot loop, separated so `run` can always tear the receiver down.
    fn drive(&self) -> Result<NodeOutcome, String> {
        let mut catch_up_ms = 0u64;
        let start_slot = match self.config.join {
            Some(bootstrap) => {
                let started = Instant::now();
                let slot = self.join_handshake(bootstrap)?;
                catch_up_ms = started.elapsed().as_millis() as u64;
                slot
            }
            None => {
                self.hello_barrier()?;
                0
            }
        };
        let end_slot = self
            .config
            .leave_at
            .unwrap_or(self.config.slots)
            .min(self.config.slots);
        if start_slot >= end_slot {
            return Err(format!(
                "nothing to execute: join slot {start_slot} is not before end slot {end_slot}"
            ));
        }

        let min_age = self.config.nodes as u64; // the paper's workload default
        let loop_started = Instant::now();
        let outcome = if self.config.pop && self.config.window > 1 {
            self.slot_loop_pipelined(start_slot, end_slot, min_age)?
        } else {
            self.slot_loop_lockstep(start_slot, end_slot, min_age)?
        };
        let slot_loop_ms = (loop_started.elapsed().as_millis() as u64).max(1);
        self.wind_down(start_slot, end_slot, catch_up_ms, slot_loop_ms, outcome)
    }

    /// The classic slot-lockstep loop (`window == 1`, and every non-PoP
    /// run): generate → gossip → verify inline, with per-slot barriers.
    /// Kept intact as the pipelined path's baseline.
    fn slot_loop_lockstep(
        &self,
        start_slot: u64,
        end_slot: u64,
        min_age: u64,
    ) -> Result<SlotLoopOutcome, String> {
        let id = self.config.id;
        let seed = self.config.seed;
        let mut degraded = false;
        let mut pop_attempts = 0u64;
        let mut pop_successes = 0u64;
        // Membership events already folded into the local topology; the
        // founders' initial graph counts as applied.
        let mut applied_joins: HashSet<NodeId> =
            (0..self.config.nodes as u32).map(NodeId).collect();
        let mut applied_leaves: HashSet<NodeId> = HashSet::new();
        let mut behavior_applied = false;

        let telemetry = &self.shared.telemetry;
        for slot in start_slot..end_slot {
            let slot_begin = Instant::now();
            self.shared.current_slot.store(slot, Ordering::Relaxed);
            telemetry
                .journal
                .record(slot, EventKind::SlotStart, format!("slot {slot} begins"));
            if !behavior_applied && self.adversary_active(slot) {
                behavior_applied = true;
                if self.config.behavior == Behavior::Flapper {
                    self.flap_phase(slot);
                    break;
                }
                self.activate_behavior(slot);
            }
            let retries_before = self.endpoint.stats().request_retries;
            self.apply_membership(slot, &mut applied_joins, &mut applied_leaves);
            let neighbors: Vec<NodeId> = self
                .shared
                .topology
                .read()
                .expect("topology poisoned")
                .neighbors(id)
                .to_vec();

            // --- Digest barrier: collect the slot-1 digest of every
            // neighbor that generated at slot-1 under the current roster.
            // The barrier waits are the wire's cross-shard exchange.
            let exchange_started = Instant::now();
            if slot > start_slot && !self.digest_barrier(&neighbors, slot - 1) {
                degraded = true;
                telemetry.journal.record(
                    slot,
                    EventKind::Timeout,
                    format!("digest barrier for slot {} timed out", slot - 1),
                );
            }
            // --- Phase lockstep (PoP mode only): the engine verifies slot
            // t-1 before anyone generates slot t, so generation waits for
            // every peer's SlotDone(t-1) — otherwise a fast peer's slot-t
            // block could answer a slow validator's slot-(t-1) PoP with
            // children the reference engine has not generated yet.
            if self.config.pop && slot > start_slot && !self.done_barrier(slot - 1) {
                degraded = true;
                telemetry.journal.record(
                    slot,
                    EventKind::Timeout,
                    format!("done barrier for slot {} timed out", slot - 1),
                );
            }
            telemetry
                .phases
                .record(Phase::Exchange, exchange_started.elapsed());

            // --- Apply gossip and generate, mirroring the engine's phases.
            let generate_started = Instant::now();
            let (digest, equivocation) = {
                let mut node = self.shared.node.write().expect("node lock poisoned");
                node.begin_slot();
                // In PoP mode the fold moves to the verify phase below
                // (gossip-then-verify, the engine's order); here it would
                // land *after* the previous slot's offense accounting and
                // shift the blacklist ban/parole cadence off the reference.
                if slot > start_slot && !self.config.pop {
                    let mut buffered = self.shared.digests.lock().expect("digests poisoned");
                    for &nb in &neighbors {
                        let latest = buffered
                            .get(&nb)
                            .and_then(|per_slot| per_slot.range(..slot).next_back())
                            .map(|(_, &d)| d);
                        if let Some(d) = latest {
                            node.receive_digest(nb, d);
                        }
                    }
                    // Applied digests are spent; older entries can never be
                    // read again, so the buffer stays O(lag), not O(slots).
                    for per_slot in buffered.values_mut() {
                        *per_slot = per_slot.split_off(&(slot - 1));
                    }
                }
                let mut rng = derived_rng(seed, stream::GENERATE, slot, id);
                let payload = sensor_payload(&mut rng, id, slot);
                let block = node
                    .generate_block(&self.cfg, slot, payload)
                    .map_err(|e| format!("generation failed at slot {slot}: {e}"))?;
                telemetry
                    .phases
                    .record(Phase::Generate, generate_started.elapsed());
                telemetry.journal.record(
                    slot,
                    EventKind::Generate,
                    format!("generated block #{}", node.chain_len() - 1),
                );
                // PerSlot durability: the engine's slot-boundary commit point.
                let sync_started = Instant::now();
                node.store_mut()
                    .sync()
                    .map_err(|e| format!("sync failed at slot {slot}: {e}"))?;
                let synced = sync_started.elapsed();
                telemetry.fsync.record(synced);
                telemetry.phases.record(Phase::Commit, synced);
                let equivocation = (behavior_applied
                    && self.config.behavior == Behavior::Equivocate)
                    .then(|| (block.id, block.header.digests.clone()));
                (block.header_digest(), equivocation)
            };
            let gossip_started = Instant::now();
            {
                let mut own = self
                    .shared
                    .own_digests
                    .lock()
                    .expect("own digests poisoned");
                own.insert(slot, digest);
                // Peers can lag at most one barrier window, but a late
                // joiner's catch-up pull may reach further back; 64 slots
                // of 32-byte history is cheap insurance.
                *own = own.split_off(&slot.saturating_sub(64));
            }
            let prefix = digest_prefix(&digest);
            record_span(&self.shared, id.0, slot, id.0, prefix, SpanKind::Generated);
            // PoP walks the whole DAG, so in PoP mode every generating peer
            // needs the digest (the barrier below proves global generation
            // progress); without PoP only neighbors consume it.
            let gossip_targets: Vec<(NodeId, SocketAddr)> = if self.config.pop {
                self.generator_addrs(slot)
            } else {
                neighbors
                    .iter()
                    .filter_map(|&nb| self.peers.addr(nb).map(|a| (nb, a)))
                    .collect()
            };
            let trace_ctx = self.gossip_trace_ctx(slot, prefix);
            for (_, addr) in &gossip_targets {
                let _ = self.endpoint.send_control_traced(
                    *addr,
                    &Control::SlotDigest { slot, digest },
                    trace_ctx,
                );
            }
            if !gossip_targets.is_empty() {
                record_span(
                    &self.shared,
                    id.0,
                    slot,
                    id.0,
                    prefix,
                    SpanKind::GossipedOut,
                );
            }
            if behavior_applied {
                self.adversary_gossip(slot, digest, equivocation, &gossip_targets);
            }
            telemetry
                .phases
                .record(Phase::Gossip, gossip_started.elapsed());

            // --- Verification workload: one PoP per generating validator.
            if self.config.pop {
                let verify_started = Instant::now();
                // The engine's verify phase starts after *all* generation
                // in the slot: wait until every generating peer announced
                // its slot-t digest, proving its chain holds its blocks
                // through t.
                let all_generators: Vec<NodeId> = {
                    let roster = self.shared.roster.lock().expect("roster poisoned");
                    roster
                        .generators_at(slot)
                        .into_iter()
                        .filter(|&p| p != id)
                        .collect()
                };
                if !self.digest_barrier(&all_generators, slot) {
                    degraded = true;
                }
                // Fold this slot's gossip *before* the PoP runs, mirroring
                // the engine's gossip-then-verify phase order. The order is
                // load-bearing for parity under ban-inducing adversaries: a
                // folded digest earns blacklist service (parole) credit and
                // the PoP below records offenses, so folding after the PoP
                // would land each ban one slot early relative to the
                // reference and change which digests the chain accepts from
                // then on.
                let fold_started = Instant::now();
                let mut folded: Vec<(NodeId, Digest)> = Vec::new();
                for &nb in &neighbors {
                    let expected = {
                        let roster = self.shared.roster.lock().expect("roster poisoned");
                        roster.generates_at(nb, slot)
                    };
                    if !expected {
                        continue;
                    }
                    let mut entry = None;
                    for attempt in 0..2 {
                        entry = self
                            .shared
                            .digests
                            .lock()
                            .expect("digests poisoned")
                            .get(&nb)
                            .and_then(|per_slot| per_slot.get(&slot))
                            .copied();
                        if entry.is_some() || attempt > 0 {
                            break;
                        }
                        // A conflict discard can empty the entry between the
                        // barrier above and this read; the re-barrier pulls
                        // the canonical digest back from the peer directly.
                        if !self.digest_barrier(std::slice::from_ref(&nb), slot) {
                            break;
                        }
                    }
                    match entry {
                        Some(d) => folded.push((nb, d)),
                        None => {
                            degraded = true;
                            telemetry.journal.record(
                                slot,
                                EventKind::Timeout,
                                format!("no slot-{slot} digest from {nb} to fold"),
                            );
                        }
                    }
                }
                {
                    let mut node = self.shared.node.write().expect("node lock poisoned");
                    for (nb, d) in folded {
                        node.receive_digest(nb, d);
                    }
                }
                {
                    // Applied entries are spent; this slot's stay buffered
                    // one more slot as conflict bait for late fakes, older
                    // ones are pruned so the buffer stays O(lag).
                    let mut buffered = self.shared.digests.lock().expect("digests poisoned");
                    for per_slot in buffered.values_mut() {
                        *per_slot = per_slot.split_off(&slot);
                    }
                }
                telemetry
                    .phases
                    .record(Phase::Gossip, fold_started.elapsed());
                // The engine never makes a malicious node a validator (its
                // verify phase filters them out), so an active adversary
                // skips the PoP identically — empty candidates — or the
                // PoP counters would diverge from the reference run.
                let candidates = if behavior_applied {
                    Vec::new()
                } else {
                    let roster = self.shared.roster.lock().expect("roster poisoned");
                    wire_pop_candidates(&roster, id, slot, min_age)
                };
                let mut target_rng = derived_rng(seed, stream::TARGET, slot, id);
                if let Some(&target) = target_rng.choose(&candidates) {
                    pop_attempts += 1;
                    telemetry.pop_attempts.fetch_add(1, Ordering::Relaxed);
                    let pop_started = Instant::now();
                    let report = self.run_wire_pop(slot, target);
                    telemetry.pop_rtt.record(pop_started.elapsed());
                    telemetry.merge_pop(&report.metrics);
                    if report.is_success() {
                        pop_successes += 1;
                        telemetry.pop_successes.fetch_add(1, Ordering::Relaxed);
                    }
                    telemetry.journal.record(
                        slot,
                        EventKind::Pop,
                        format!(
                            "verified {target}: {} ({} distinct, {} msgs)",
                            if report.is_success() { "ok" } else { "failed" },
                            report.distinct_nodes,
                            report.metrics.total_messages(),
                        ),
                    );
                    if report.metrics.timeouts > 0 {
                        telemetry.journal.record(
                            slot,
                            EventKind::Timeout,
                            format!("{} PoP requests timed out", report.metrics.timeouts),
                        );
                    }
                    if report.metrics.pruned_misses > 0 {
                        telemetry.journal.record(
                            slot,
                            EventKind::Pruned,
                            format!("{} pruned misses during PoP", report.metrics.pruned_misses),
                        );
                    }
                }
                // Announce slot completion whether or not a target
                // qualified — peers gate their next slot on it.
                for (_, addr) in self.generator_addrs(slot) {
                    let _ = self
                        .endpoint
                        .send_control(addr, &Control::SlotDone { slot });
                }
                telemetry
                    .phases
                    .record(Phase::Verify, verify_started.elapsed());
            }
            let retries = self.endpoint.stats().request_retries - retries_before;
            if retries > 0 {
                telemetry.journal.record(
                    slot,
                    EventKind::Retry,
                    format!("{retries} request retransmissions"),
                );
            }
            // The slot is fully executed (generated, gossiped, verified):
            // raise the local watermark and close the latency sample.
            self.record_slot_committed(slot);
            self.shared
                .verified_through
                .store(slot + 1, Ordering::Relaxed);
            telemetry.slot_latency.record(slot_begin.elapsed());
        }
        Ok(SlotLoopOutcome {
            degraded,
            pop_attempts,
            pop_successes,
        })
    }

    /// The epoch-windowed pipeline (`window > 1`, PoP mode): the
    /// generation half runs up to `window` slots ahead of the roster-wide
    /// completion low-watermark while a background worker verifies slots
    /// strictly in order. Horizon-capped child requests
    /// ([`WireMessage::ReqChildAt`]) keep every PoP exchange identical to
    /// the lockstep run: a run-ahead responder answers from its store *as
    /// of the slot under verification*.
    fn slot_loop_pipelined(
        &self,
        start_slot: u64,
        end_slot: u64,
        min_age: u64,
    ) -> Result<SlotLoopOutcome, String> {
        // Slots before our first are nobody's to verify: a joiner's drain
        // and window gates measure from its own start.
        self.shared
            .verified_through
            .store(start_slot, Ordering::Relaxed);
        let (gen, verify) = std::thread::scope(|scope| {
            let worker = scope.spawn(|| self.verify_worker(start_slot, end_slot, min_age));
            let gen = self.generation_loop(start_slot, end_slot);
            if gen.is_err() {
                // The worker must not wait out its timeouts slot by slot
                // for blocks that will never be generated.
                self.shared.pipeline_abort.store(true, Ordering::Relaxed);
                notify_progress(&self.shared);
            }
            (gen, worker.join())
        });
        let gen_degraded = gen?;
        let verify = verify.map_err(|_| "verify worker panicked".to_string())?;
        Ok(SlotLoopOutcome {
            degraded: gen_degraded || verify.degraded,
            pop_attempts: verify.pop_attempts,
            pop_successes: verify.pop_successes,
        })
    }

    /// The pipelined generation half: per-slot work minus verification.
    /// Returns whether any barrier degraded.
    fn generation_loop(&self, start_slot: u64, end_slot: u64) -> Result<bool, String> {
        let id = self.config.id;
        let seed = self.config.seed;
        let window = self.config.window;
        let mut degraded = false;
        let mut applied_joins: HashSet<NodeId> =
            (0..self.config.nodes as u32).map(NodeId).collect();
        let mut applied_leaves: HashSet<NodeId> = HashSet::new();
        let mut behavior_applied = false;
        let telemetry = &self.shared.telemetry;
        for slot in start_slot..end_slot {
            self.shared.current_slot.store(slot, Ordering::Relaxed);
            telemetry
                .journal
                .record(slot, EventKind::SlotStart, format!("slot {slot} begins"));
            if !behavior_applied && self.adversary_active(slot) {
                behavior_applied = true;
                if self.config.behavior == Behavior::Flapper {
                    // The verify worker must not wait out timeouts for
                    // slots the flapper will never generate.
                    self.shared.pipeline_abort.store(true, Ordering::Relaxed);
                    notify_progress(&self.shared);
                    self.flap_phase(slot);
                    break;
                }
                self.activate_behavior(slot);
            }
            self.shared
                .slot_started
                .lock()
                .expect("slot started poisoned")
                .insert(slot, Instant::now());
            let retries_before = self.endpoint.stats().request_retries;
            // Membership mutates the topology and neighbor set the verify
            // worker reads; drain the pipeline to the boundary first so
            // every slot before the change is verified under the graph it
            // was generated under.
            if self.membership_pending(slot, &applied_joins, &applied_leaves) {
                if !self.wait_verified_through(slot) {
                    degraded = true;
                    telemetry.journal.record(
                        slot,
                        EventKind::Timeout,
                        format!("pipeline drain before membership at slot {slot} timed out"),
                    );
                }
                self.apply_membership(slot, &mut applied_joins, &mut applied_leaves);
            }
            let neighbors: Vec<NodeId> = self
                .shared
                .topology
                .read()
                .expect("topology poisoned")
                .neighbors(id)
                .to_vec();

            let exchange_started = Instant::now();
            // Data dependency (same as lockstep): our slot-t block embeds
            // the neighbors' slot-(t-1) digests.
            if slot > start_slot && !self.digest_barrier(&neighbors, slot - 1) {
                degraded = true;
                telemetry.journal.record(
                    slot,
                    EventKind::Timeout,
                    format!("digest barrier for slot {} timed out", slot - 1),
                );
            }
            // Window gate: generation may run at most `window` slots ahead
            // of the cluster's completion low-watermark and of our own
            // verify worker. With W = 1 this would degenerate to the
            // lockstep done barrier.
            if slot >= start_slot + window {
                let floor = slot - window;
                if !self.done_barrier(floor) {
                    degraded = true;
                    telemetry.journal.record(
                        slot,
                        EventKind::Timeout,
                        format!("window gate: done barrier for slot {floor} timed out"),
                    );
                }
                if !self.wait_verified_through(floor + 1) {
                    degraded = true;
                    telemetry.journal.record(
                        slot,
                        EventKind::Timeout,
                        format!("window gate: own verification of slot {floor} timed out"),
                    );
                }
            }
            telemetry
                .phases
                .record(Phase::Exchange, exchange_started.elapsed());

            // --- Apply gossip and generate, mirroring the engine's phases.
            let generate_started = Instant::now();
            let (digest, equivocation) = {
                let mut node = self.shared.node.write().expect("node lock poisoned");
                node.begin_slot();
                if slot > start_slot {
                    let mut buffered = self.shared.digests.lock().expect("digests poisoned");
                    for &nb in &neighbors {
                        let latest = buffered
                            .get(&nb)
                            .and_then(|per_slot| per_slot.range(..slot).next_back())
                            .map(|(_, &d)| d);
                        if let Some(d) = latest {
                            node.receive_digest(nb, d);
                        }
                    }
                    // Unlike lockstep, the verify worker still reads digest
                    // *presence* up to `window` slots back — prune to the
                    // window floor, not to slot-1.
                    for per_slot in buffered.values_mut() {
                        *per_slot = per_slot.split_off(&slot.saturating_sub(window));
                    }
                }
                let mut rng = derived_rng(seed, stream::GENERATE, slot, id);
                let payload = sensor_payload(&mut rng, id, slot);
                let block = node
                    .generate_block(&self.cfg, slot, payload)
                    .map_err(|e| format!("generation failed at slot {slot}: {e}"))?;
                telemetry
                    .phases
                    .record(Phase::Generate, generate_started.elapsed());
                telemetry.journal.record(
                    slot,
                    EventKind::Generate,
                    format!("generated block #{}", node.chain_len() - 1),
                );
                // PerSlot durability: the engine's slot-boundary commit point.
                let sync_started = Instant::now();
                node.store_mut()
                    .sync()
                    .map_err(|e| format!("sync failed at slot {slot}: {e}"))?;
                let synced = sync_started.elapsed();
                telemetry.fsync.record(synced);
                telemetry.phases.record(Phase::Commit, synced);
                let equivocation = (behavior_applied
                    && self.config.behavior == Behavior::Equivocate)
                    .then(|| (block.id, block.header.digests.clone()));
                (block.header_digest(), equivocation)
            };
            let gossip_started = Instant::now();
            {
                let mut own = self
                    .shared
                    .own_digests
                    .lock()
                    .expect("own digests poisoned");
                own.insert(slot, digest);
                // Peers can lag at most one window, but a late joiner's
                // catch-up pull may reach further back; 64 slots of
                // 32-byte history is cheap insurance.
                *own = own.split_off(&slot.saturating_sub(64));
            }
            let prefix = digest_prefix(&digest);
            record_span(&self.shared, id.0, slot, id.0, prefix, SpanKind::Generated);
            // The verify worker may be parked on this very digest.
            notify_progress(&self.shared);
            // PoP mode: every generating peer consumes the digest.
            let trace_ctx = self.gossip_trace_ctx(slot, prefix);
            let gossip_targets = self.generator_addrs(slot);
            for (_, addr) in &gossip_targets {
                let _ = self.endpoint.send_control_traced(
                    *addr,
                    &Control::SlotDigest { slot, digest },
                    trace_ctx,
                );
            }
            if !gossip_targets.is_empty() {
                record_span(
                    &self.shared,
                    id.0,
                    slot,
                    id.0,
                    prefix,
                    SpanKind::GossipedOut,
                );
            }
            if behavior_applied {
                self.adversary_gossip(slot, digest, equivocation, &gossip_targets);
            }
            telemetry
                .phases
                .record(Phase::Gossip, gossip_started.elapsed());
            let retries = self.endpoint.stats().request_retries - retries_before;
            if retries > 0 {
                telemetry.journal.record(
                    slot,
                    EventKind::Retry,
                    format!("{retries} request retransmissions"),
                );
            }
        }
        Ok(degraded)
    }

    /// The pipelined verify worker: verifies slots strictly in order,
    /// mirroring the lockstep loop's PoP section exactly — same barrier,
    /// same derived randomness, same target choice — with every child
    /// lookup horizon-capped at the slot under verification.
    fn verify_worker(&self, start_slot: u64, end_slot: u64, min_age: u64) -> SlotLoopOutcome {
        let id = self.config.id;
        let seed = self.config.seed;
        let telemetry = &self.shared.telemetry;
        let mut outcome = SlotLoopOutcome {
            degraded: false,
            pop_attempts: 0,
            pop_successes: 0,
        };
        // The worker owns the node's trust state for the whole run (the
        // generation half never reads it), returning it at the end.
        let (mut trust_cache, mut blacklist) = {
            let mut node = self.shared.node.write().expect("node lock poisoned");
            (node.take_trust_cache(), node.take_blacklist(&self.cfg))
        };
        for slot in start_slot..end_slot {
            if self.shared.pipeline_abort.load(Ordering::Relaxed) {
                outcome.degraded = true;
                break;
            }
            // Our own slot-`slot` block must exist before the PoP scans.
            if !self.wait_own_generated(slot) {
                outcome.degraded = true;
                break;
            }
            let verify_started = Instant::now();
            // The engine's verify phase starts after *all* generation in
            // the slot (same barrier as the lockstep loop).
            let all_generators: Vec<NodeId> = {
                let roster = self.shared.roster.lock().expect("roster poisoned");
                roster
                    .generators_at(slot)
                    .into_iter()
                    .filter(|&p| p != id)
                    .collect()
            };
            if !self.digest_barrier(&all_generators, slot) {
                outcome.degraded = true;
            }
            // Active adversaries skip the validator role, mirroring the
            // engine's verify-phase filter (see the lockstep loop).
            let candidates = if self.adversary_active(slot) {
                Vec::new()
            } else {
                let roster = self.shared.roster.lock().expect("roster poisoned");
                wire_pop_candidates(&roster, id, slot, min_age)
            };
            let mut target_rng = derived_rng(seed, stream::TARGET, slot, id);
            if let Some(&target) = target_rng.choose(&candidates) {
                outcome.pop_attempts += 1;
                telemetry.pop_attempts.fetch_add(1, Ordering::Relaxed);
                let pop_started = Instant::now();
                let report =
                    self.run_pop_with(slot, target, &mut trust_cache, &mut blacklist, Some(slot));
                self.shared
                    .blacklist_banned
                    .store(blacklist.banned_count() as u64, Ordering::Relaxed);
                telemetry.pop_rtt.record(pop_started.elapsed());
                telemetry.merge_pop(&report.metrics);
                if report.is_success() {
                    outcome.pop_successes += 1;
                    telemetry.pop_successes.fetch_add(1, Ordering::Relaxed);
                }
                telemetry.journal.record(
                    slot,
                    EventKind::Pop,
                    format!(
                        "verified {target}: {} ({} distinct, {} msgs)",
                        if report.is_success() { "ok" } else { "failed" },
                        report.distinct_nodes,
                        report.metrics.total_messages(),
                    ),
                );
                if report.metrics.timeouts > 0 {
                    telemetry.journal.record(
                        slot,
                        EventKind::Timeout,
                        format!("{} PoP requests timed out", report.metrics.timeouts),
                    );
                }
                if report.metrics.pruned_misses > 0 {
                    telemetry.journal.record(
                        slot,
                        EventKind::Pruned,
                        format!("{} pruned misses during PoP", report.metrics.pruned_misses),
                    );
                }
            }
            // Slot completed (generated *and* verified): announce, raise
            // the local watermark, close the latency sample.
            for (_, addr) in self.generator_addrs(slot) {
                let _ = self
                    .endpoint
                    .send_control(addr, &Control::SlotDone { slot });
            }
            self.record_slot_committed(slot);
            self.shared
                .verified_through
                .store(slot + 1, Ordering::Relaxed);
            notify_progress(&self.shared);
            let started = self
                .shared
                .slot_started
                .lock()
                .expect("slot started poisoned")
                .remove(&slot);
            if let Some(started) = started {
                telemetry.slot_latency.record(started.elapsed());
            }
            telemetry
                .phases
                .record(Phase::Verify, verify_started.elapsed());
        }
        if outcome.degraded {
            // Free the generation half from its window-gate waits.
            self.shared.pipeline_abort.store(true, Ordering::Relaxed);
            notify_progress(&self.shared);
        }
        let mut node = self.shared.node.write().expect("node lock poisoned");
        node.restore_trust_cache(trust_cache);
        node.restore_blacklist(blacklist);
        outcome
    }

    /// True when a roster membership event at or before `slot` has not yet
    /// been folded into the local topology.
    fn membership_pending(
        &self,
        slot: u64,
        applied_joins: &HashSet<NodeId>,
        applied_leaves: &HashSet<NodeId>,
    ) -> bool {
        let roster = self.shared.roster.lock().expect("roster poisoned");
        let pending = roster.entries().any(|(p, m)| {
            (m.leave_slot.is_some_and(|l| l <= slot) && !applied_leaves.contains(&p))
                || (m.join_slot <= slot && !applied_joins.contains(&p))
        });
        pending
    }

    /// One barrier wait quantum. Lockstep keeps the seed's 5 ms sleep (its
    /// timing is the baseline the saturation benchmark measures against);
    /// the pipeline parks on the progress condvar instead, so a blocked
    /// loop burns no syscall churn and wakes the moment the dispatcher
    /// hears news.
    fn barrier_pause(&self) {
        if self.config.window > 1 {
            let version = self.shared.progress.lock().expect("progress poisoned");
            let _ = self
                .shared
                .progress_cv
                .wait_timeout(version, Duration::from_millis(25))
                .expect("progress poisoned");
        } else {
            std::thread::sleep(Duration::from_millis(5));
        }
    }

    /// Waits until our own slot-`slot` block has been generated. Returns
    /// `false` on timeout or pipeline abort.
    fn wait_own_generated(&self, slot: u64) -> bool {
        let deadline = Instant::now() + self.config.slot_timeout;
        loop {
            if self
                .shared
                .own_digests
                .lock()
                .expect("own digests poisoned")
                .contains_key(&slot)
            {
                return true;
            }
            if self.shared.pipeline_abort.load(Ordering::Relaxed) || Instant::now() > deadline {
                return false;
            }
            self.barrier_pause();
        }
    }

    /// The trace context stamped onto this node's outbound digest gossip
    /// for its slot-`slot` block, or `None` when tracing is off (the frame
    /// then carries exactly the v1 bytes).
    fn gossip_trace_ctx(&self, slot: u64, prefix: u64) -> Option<TraceContext> {
        self.shared
            .telemetry
            .spans
            .is_enabled()
            .then(|| TraceContext {
                origin: self.config.id.0,
                slot,
                prefix,
                ts_micros: unix_micros(),
            })
    }

    /// Stamps a [`SpanKind::Committed`] span on every block of `slot` this
    /// node can identify — its own block plus each traced digest heard —
    /// and prunes the per-slot key buffer up to `slot`. Called at the
    /// slot's local commit point (the verify watermark raise).
    fn record_slot_committed(&self, slot: u64) {
        if !self.shared.telemetry.spans.is_enabled() {
            return;
        }
        let me = self.config.id.0;
        let own = self
            .shared
            .own_digests
            .lock()
            .expect("own digests poisoned")
            .get(&slot)
            .copied();
        if let Some(digest) = own {
            record_span(
                &self.shared,
                me,
                slot,
                me,
                digest_prefix(&digest),
                SpanKind::Committed,
            );
        }
        let heard = {
            let mut keys = self.shared.trace_keys.lock().expect("trace keys poisoned");
            let heard = keys.remove(&slot).unwrap_or_default();
            // Keys below the committed slot can never be consumed anymore.
            *keys = keys.split_off(&slot);
            heard
        };
        for (origin, prefix) in heard {
            record_span(&self.shared, me, slot, origin, prefix, SpanKind::Committed);
        }
    }

    /// Waits until the local verify watermark reaches `target`. Returns
    /// `false` on timeout or pipeline abort.
    fn wait_verified_through(&self, target: u64) -> bool {
        let deadline = Instant::now() + self.config.slot_timeout;
        loop {
            if self.shared.verified_through.load(Ordering::Relaxed) >= target {
                return true;
            }
            if self.shared.pipeline_abort.load(Ordering::Relaxed) || Instant::now() > deadline {
                return false;
            }
            self.barrier_pause();
        }
    }

    /// Leave announcement + report/linger, shared by both slot loops.
    fn wind_down(
        &self,
        start_slot: u64,
        end_slot: u64,
        catch_up_ms: u64,
        slot_loop_ms: u64,
        outcome: SlotLoopOutcome,
    ) -> Result<NodeOutcome, String> {
        let id = self.config.id;
        let telemetry = &self.shared.telemetry;
        let SlotLoopOutcome {
            mut degraded,
            pop_attempts,
            pop_successes,
        } = outcome;

        // --- Graceful leave: announce the departure so peers drop us from
        // their rosters (and re-gossip the delta for lost copies).
        if end_slot < self.config.slots {
            telemetry.journal.record(
                end_slot,
                EventKind::Membership,
                format!("{id} announcing graceful leave at slot {end_slot}"),
            );
            for _ in 0..3 {
                for (_, addr) in self.generator_addrs(end_slot) {
                    let _ = self.endpoint.send_control(
                        addr,
                        &Control::Leave {
                            node: id,
                            slot: end_slot,
                        },
                    );
                }
                std::thread::sleep(Duration::from_millis(20));
            }
        }

        // --- Epilogue: flush, summarise, report, linger.
        // An eviction means we cut a scheduled member loose — the chain
        // necessarily diverged from the reference engine, so the report
        // must say so even though no barrier timed out.
        if self.endpoint.stats().evictions > 0 {
            degraded = true;
        }
        let (chain_len, chain_digest) = {
            let mut node = self.shared.node.write().expect("node lock poisoned");
            node.store_mut()
                .sync()
                .map_err(|e| format!("final sync failed: {e}"))?;
            (node.chain_len() as u64, chain_digest_of(node.store()))
        };
        let run = RunReport {
            node: id,
            slots: end_slot - start_slot,
            chain_len,
            chain_digest,
            pop_attempts,
            pop_successes,
            catch_up_ms,
            slot_loop_ms,
            degraded,
            net: self.endpoint.stats(),
            metrics_addr: *self
                .shared
                .metrics_resolved
                .lock()
                .expect("metrics addr poisoned"),
        };
        self.epilogue(&run);
        Ok(NodeOutcome {
            run,
            stats: self.endpoint.stats(),
        })
    }

    /// All generating members at `slot` (other than us) whose address is
    /// known — the gossip/lockstep fan-out set.
    fn generator_addrs(&self, slot: u64) -> Vec<(NodeId, SocketAddr)> {
        self.shared
            .roster
            .lock()
            .expect("roster poisoned")
            .peer_addrs_at(slot, self.config.id)
    }

    /// Whether this node's configured adversarial behaviour is active at
    /// `slot` (honest nodes are never active).
    fn adversary_active(&self, slot: u64) -> bool {
        self.config.behavior.is_malicious() && slot >= self.config.behavior_from
    }

    /// Applies the configured behaviour to the ledger node (so the serve
    /// paths — silence, corrupt replies, corrupt bodies — take effect) and
    /// journals the turn. Not used for the flapper, which goes dark via
    /// [`Shared::muted`] instead.
    fn activate_behavior(&self, slot: u64) {
        self.shared
            .node
            .write()
            .expect("node lock poisoned")
            .set_behavior(self.config.behavior);
        self.shared.telemetry.journal.record(
            slot,
            EventKind::Penalty,
            format!(
                "{} turns {} at slot {slot}",
                self.config.id, self.config.behavior
            ),
        );
    }

    /// The adversary's extra push-path traffic for `slot`, sent right after
    /// the canonical gossip: a second, genuinely mined block's digest for
    /// the same slot (equivocation), a corrupted digest for the same slot
    /// (digest lie), or a conflicting re-advertisement of the previous
    /// slot's block (parasite side-chain, Cullen et al. arXiv:1904.00996).
    /// The canonical chain is untouched — `DigestReq` pulls still serve it
    /// — which is what lets honest receivers converge after discarding the
    /// conflicting pair.
    fn adversary_gossip(
        &self,
        slot: u64,
        canonical: Digest,
        equivocation: Option<(BlockId, Vec<DigestEntry>)>,
        targets: &[(NodeId, SocketAddr)],
    ) {
        let id = self.config.id;
        let fake: Option<(u64, Digest)> = match self.config.behavior {
            Behavior::Equivocate => equivocation.map(|(block_id, digests)| {
                // A real second block for the slot: same identity and
                // parents, different body, freshly mined and signed — two
                // distinct histories offered to the same neighbors.
                let mut rng = derived_rng(self.config.seed, stream::GENERATE, slot, id);
                let mut payload = sensor_payload(&mut rng, id, slot);
                payload.push(0xEB);
                let alt = DataBlock::create(
                    &self.cfg,
                    block_id,
                    slot,
                    digests,
                    BlockBody::new(payload, self.cfg.body_bits),
                    &KeyPair::from_seed(u64::from(id.0)),
                );
                (slot, alt.header_digest())
            }),
            Behavior::DigestLie => Some((slot, canonical.corrupted())),
            Behavior::Parasite => {
                // Re-advertise a conflicting digest for the previous slot:
                // an abandoned side-chain parent honest nodes must not
                // reference.
                let prev = self
                    .shared
                    .own_digests
                    .lock()
                    .expect("own digests poisoned")
                    .get(&slot.wrapping_sub(1))
                    .copied();
                prev.map(|d| (slot - 1, d.corrupted()))
            }
            _ => None,
        };
        let Some((fake_slot, fake_digest)) = fake else {
            return;
        };
        for (_, addr) in targets {
            let _ = self.endpoint.send_control(
                *addr,
                &Control::SlotDigest {
                    slot: fake_slot,
                    digest: fake_digest,
                },
            );
        }
        self.shared.telemetry.journal.record(
            slot,
            EventKind::Penalty,
            format!(
                "{id} gossiped a conflicting digest for slot {fake_slot} ({})",
                self.config.behavior
            ),
        );
    }

    /// The flapper attack: go dark (stop generating, serving, and acking)
    /// until the cluster evicts us, then spam `JoinAnnounce` rejoin
    /// attempts that honest peers refuse (`flap_rejections`). Bounded by
    /// twice the slot timeout so the process still reports and exits.
    fn flap_phase(&self, from_slot: u64) {
        let id = self.config.id;
        self.shared.muted.store(true, Ordering::Relaxed);
        self.shared.telemetry.journal.record(
            from_slot,
            EventKind::Penalty,
            format!("{id} flapping: going dark at slot {from_slot}"),
        );
        let targets = self.generator_addrs(from_slot);
        let deadline = Instant::now() + self.config.slot_timeout * 2;
        let mut rejoins = 0u32;
        while Instant::now() < deadline && !self.shared.shutdown.load(Ordering::Relaxed) {
            let evicted = {
                let roster = self.shared.roster.lock().expect("roster poisoned");
                roster.member(id).is_some_and(|m| m.leave_slot.is_some())
            };
            if evicted && rejoins < 40 {
                // Rejoin churn: announce a join a little past wherever the
                // cluster is, without ever contributing blocks.
                let slot = self
                    .shared
                    .current_slot
                    .load(Ordering::Relaxed)
                    .max(from_slot)
                    + 2;
                if let Ok(addr) = self.endpoint.local_addr() {
                    let announce = Control::JoinAnnounce { id, slot, addr };
                    for (_, peer) in &targets {
                        let _ = self.endpoint.send_control(*peer, &announce);
                    }
                    rejoins += 1;
                    if rejoins == 1 {
                        self.shared.telemetry.journal.record(
                            slot,
                            EventKind::Penalty,
                            format!("{id} evicted; spamming rejoin announcements"),
                        );
                    }
                }
            }
            std::thread::sleep(Duration::from_millis(50));
        }
        // The attack is over; unmute so the epilogue's report/ack exchange
        // with the controller works normally.
        self.shared.muted.store(false, Ordering::Relaxed);
    }

    /// Applies membership events effective at or before `slot` to the
    /// local topology and ledger neighbors: leaves first (cut links, drop
    /// the departed peer's digest from `A_i`), then joins ascending (wire
    /// the newcomer's radio links at its deterministic join site) — the
    /// canonical order shared with the harness's reference replay.
    fn apply_membership(
        &self,
        slot: u64,
        applied_joins: &mut HashSet<NodeId>,
        applied_leaves: &mut HashSet<NodeId>,
    ) {
        let me = self.config.id;
        let (pending_leaves, pending_joins) = {
            let roster = self.shared.roster.lock().expect("roster poisoned");
            let leaves: Vec<NodeId> = roster
                .entries()
                .filter(|(p, m)| {
                    m.leave_slot.is_some_and(|l| l <= slot) && !applied_leaves.contains(p)
                })
                .map(|(p, _)| p)
                .collect();
            let joins: Vec<NodeId> = roster
                .entries()
                .filter(|(p, m)| m.join_slot <= slot && !applied_joins.contains(p))
                .map(|(p, _)| p)
                .collect();
            (leaves, joins)
        };
        if pending_leaves.is_empty() && pending_joins.is_empty() {
            return;
        }
        let mut topology = self.shared.topology.write().expect("topology poisoned");
        let mut node = self.shared.node.write().expect("node lock poisoned");
        for peer in pending_leaves {
            self.shared.telemetry.journal.record(
                slot,
                EventKind::Membership,
                format!("{peer} left; links cut at slot {slot}"),
            );
            applied_leaves.insert(peer);
            if peer.index() < topology.len() {
                topology.isolate_node(peer);
            }
            // Dropping the neighbor also drops its last digest from `A_i`,
            // so our next block no longer references the departed node —
            // the engine's `node_leaves` semantics.
            node.remove_neighbor(peer);
        }
        for peer in pending_joins {
            // Joins must land at consecutive topology indices (the engine's
            // `add_node` contract). A gap means we heard about a later join
            // before an earlier one — leave it pending for a later boundary.
            if peer.index() != topology.len() {
                continue;
            }
            let site = {
                let roster = self.shared.roster.lock().expect("roster poisoned");
                let join_slot = roster.member(peer).map_or(slot, |m| m.join_slot);
                join_site(
                    &topology,
                    &roster,
                    self.config.seed,
                    join_slot,
                    peer,
                    deployment_range_m(),
                )
            };
            let assigned = topology.add_node(site, deployment_range_m());
            debug_assert_eq!(assigned, peer, "join ids are consecutive");
            self.shared.telemetry.journal.record(
                slot,
                EventKind::Membership,
                format!("{peer} joined; links wired at slot {slot}"),
            );
            applied_joins.insert(peer);
            if peer == me {
                for nb in topology.neighbors(me).to_vec() {
                    node.add_neighbor(nb);
                }
            } else if me.index() < topology.len() && topology.are_neighbors(me, peer) {
                // (A joiner applying an *earlier* join is not in the graph
                // itself yet; its own join below wires every link at once.)
                node.add_neighbor(peer);
            }
        }
    }

    /// The join handshake: ask the bootstrap peer for the roster, merge
    /// it, resolve our join slot, and announce ourselves to every member
    /// until acknowledged. Returns our first generation slot.
    fn join_handshake(&self, bootstrap: SocketAddr) -> Result<u64, String> {
        let me = self.config.id;
        let deadline = Instant::now() + self.config.hello_timeout;

        // Phase 1: pull the roster (re-requesting refreshes lost entries).
        let responder_slot = loop {
            let ack = *self.shared.join_ack.lock().expect("join ack poisoned");
            if let Some((_, slot, members)) = ack {
                let seen = self
                    .shared
                    .transfer_seen
                    .lock()
                    .expect("transfer seen poisoned")
                    .len() as u32;
                if seen >= members {
                    break slot;
                }
            }
            if Instant::now() > deadline {
                return Err(format!(
                    "join handshake with {bootstrap} timed out (no roster)"
                ));
            }
            let _ = self
                .endpoint
                .send_control(bootstrap, &Control::JoinReq { from: me });
            std::thread::sleep(Duration::from_millis(60));
        };

        // Phase 2: resolve the join slot. A scheduled joiner brings it in
        // its config; a dynamic one starts a safety margin past the
        // responder's progress so its announcement can outrun the cluster
        // (which may be generating up to `window` slots past the
        // responder's verified slot).
        let join_slot = match self.config.join_slot {
            Some(slot) => slot,
            None => responder_slot + 3 + self.config.window,
        };
        let self_addr = self
            .endpoint
            .local_addr()
            .map_err(|e| format!("cannot read bound address: {e}"))?;
        {
            let mut roster = self.shared.roster.lock().expect("roster poisoned");
            roster.learn_join(me, Some(self_addr), join_slot);
        }

        // Phase 3: announce until every live member acked (or deadline).
        let announce = Control::JoinAnnounce {
            id: me,
            slot: join_slot,
            addr: self_addr,
        };
        loop {
            let targets = self.generator_addrs(join_slot);
            let missing: Vec<(NodeId, SocketAddr)> = {
                let acks = self.shared.hello_acks.lock().expect("hello acks poisoned");
                targets
                    .into_iter()
                    .filter(|(p, _)| !acks.contains(p))
                    .collect()
            };
            if missing.is_empty() {
                return Ok(join_slot);
            }
            if Instant::now() > deadline {
                // Gossip can still converge the roster; the barrier pulls
                // recover the rest. Proceed rather than abort.
                return Ok(join_slot);
            }
            for (_, addr) in &missing {
                let _ = self.endpoint.send_control(*addr, &announce);
            }
            std::thread::sleep(Duration::from_millis(60));
        }
    }

    /// Sends hellos until every founder peer acked (sockets are up) or the
    /// deadline passes.
    fn hello_barrier(&self) -> Result<(), String> {
        let deadline = Instant::now() + self.config.hello_timeout;
        let all: Vec<NodeId> = self.peers.ids();
        loop {
            let missing: Vec<NodeId> = {
                let acks = self.shared.hello_acks.lock().expect("hello acks poisoned");
                all.iter().filter(|p| !acks.contains(p)).copied().collect()
            };
            if missing.is_empty() {
                return Ok(());
            }
            if Instant::now() > deadline {
                return Err(format!(
                    "peers never came up: {:?}",
                    missing.iter().map(|p| p.0).collect::<Vec<_>>()
                ));
            }
            for peer in &missing {
                if let Some(addr) = self.peers.addr(*peer) {
                    let _ = self.endpoint.send_control(
                        addr,
                        &Control::Hello {
                            from: self.config.id,
                        },
                    );
                }
            }
            std::thread::sleep(Duration::from_millis(50));
        }
    }

    /// Waits until every node of `from` that generated at `slot` (per the
    /// live roster — eviction shrinks the set mid-wait) announced its
    /// digest for `slot`, pulling stragglers with [`Control::DigestReq`].
    /// Returns `false` on timeout.
    fn digest_barrier(&self, from: &[NodeId], slot: u64) -> bool {
        let deadline = Instant::now() + self.config.slot_timeout;
        let mut next_pull = Instant::now() + Duration::from_millis(120);
        loop {
            let missing: Vec<NodeId> = {
                let buffered = self.shared.digests.lock().expect("digests poisoned");
                let roster = self.shared.roster.lock().expect("roster poisoned");
                from.iter()
                    .filter(|nb| roster.generates_at(**nb, slot))
                    .filter(|nb| {
                        !buffered
                            .get(nb)
                            .is_some_and(|per_slot| per_slot.contains_key(&slot))
                    })
                    .copied()
                    .collect()
            };
            if missing.is_empty() {
                return true;
            }
            let now = Instant::now();
            if now > deadline || self.shared.pipeline_abort.load(Ordering::Relaxed) {
                return false;
            }
            self.maybe_evict(&missing, slot);
            if now >= next_pull {
                for nb in &missing {
                    if let Some(addr) = self.peers.addr(*nb) {
                        let _ = self
                            .endpoint
                            .send_control(addr, &Control::DigestReq { slot });
                    }
                }
                next_pull = now + Duration::from_millis(120);
            }
            self.barrier_pause();
        }
    }

    /// Waits until every peer that generated `slot` completed it
    /// (generation *and* its PoP). While blocked, re-broadcasts our own
    /// [`Control::SlotDone`] for `slot` (if we completed it) and pulls the
    /// blockers' slot+W digests — a peer's digest for `slot + W` proves it
    /// completed `slot` (the window gate), which is how a late joiner with
    /// no own progress at `slot` catches up without deadlocking. Returns
    /// `false` on timeout.
    fn done_barrier(&self, slot: u64) -> bool {
        let deadline = Instant::now() + self.config.slot_timeout;
        let mut next_push = Instant::now() + Duration::from_millis(120);
        loop {
            // Read fresh each pass: in pipelined mode the verify worker
            // can complete `slot` mid-wait.
            let executed_slot = self.shared.verified_through.load(Ordering::Relaxed) > slot;
            let blocked: Vec<(NodeId, SocketAddr)> = {
                let done = self.shared.done.lock().expect("done poisoned");
                self.generator_addrs(slot)
                    .into_iter()
                    .filter(|(p, _)| done.get(p).is_none_or(|&s| s < slot))
                    .collect()
            };
            if blocked.is_empty() {
                return true;
            }
            let now = Instant::now();
            if now > deadline || self.shared.pipeline_abort.load(Ordering::Relaxed) {
                return false;
            }
            let ids: Vec<NodeId> = blocked.iter().map(|(p, _)| *p).collect();
            self.maybe_evict(&ids, slot);
            if now >= next_push {
                for (_, addr) in &blocked {
                    if executed_slot {
                        // If our SlotDone was lost, the peers are the ones
                        // blocked — on us — and the mutual re-broadcast
                        // releases everyone.
                        let _ = self
                            .endpoint
                            .send_control(*addr, &Control::SlotDone { slot });
                    }
                    let _ = self.endpoint.send_control(
                        *addr,
                        &Control::DigestReq {
                            slot: slot + self.shared.window,
                        },
                    );
                }
                next_push = now + Duration::from_millis(120);
            }
            self.barrier_pause();
        }
    }

    /// Evicts any of `blocking` that was heard from once but has been
    /// silent beyond the configured window: records the departure at
    /// `slot` in the roster (so barriers stop waiting), forgets the
    /// address, and gossips the eviction so the cluster converges.
    fn maybe_evict(&self, blocking: &[NodeId], slot: u64) {
        let Some(window) = self.config.evict_after else {
            return;
        };
        for &peer in blocking {
            if !self.peers.gone_quiet(peer, window) {
                continue;
            }
            let evicted = self
                .shared
                .roster
                .lock()
                .expect("roster poisoned")
                .evict(peer, slot);
            if !evicted {
                continue;
            }
            self.endpoint.metrics().bump_evictions();
            self.shared.telemetry.journal.record(
                slot,
                EventKind::Membership,
                format!("evicted silent peer {peer} at slot {slot}"),
            );
            self.peers.forget(peer);
            // Tell the evictee too: `generator_addrs` no longer lists it,
            // and when every honest node evicts inside the same quiet
            // window the `news` re-gossip guard fires nowhere, so without
            // a direct send the verdict never reaches the peer it names
            // (a flapper waits on exactly that signal to start rejoining).
            let mut targets = self.generator_addrs(slot);
            let evictee_addr = self
                .shared
                .roster
                .lock()
                .expect("roster poisoned")
                .member(peer)
                .and_then(|m| m.addr);
            if let Some(addr) = evictee_addr {
                targets.push((peer, addr));
            }
            for (_, addr) in targets {
                let _ = self
                    .endpoint
                    .send_control(addr, &Control::Leave { node: peer, slot });
            }
        }
    }

    /// One PoP verification of `target` over the wire, with the engine's
    /// derived randomness for this `(slot, validator)`.
    fn run_wire_pop(&self, slot: u64, target: BlockId) -> PopReport {
        let (mut trust_cache, mut blacklist) = {
            let mut node = self.shared.node.write().expect("node lock poisoned");
            (node.take_trust_cache(), node.take_blacklist(&self.cfg))
        };
        let report = self.run_pop_with(slot, target, &mut trust_cache, &mut blacklist, None);
        self.shared
            .blacklist_banned
            .store(blacklist.banned_count() as u64, Ordering::Relaxed);
        let mut node = self.shared.node.write().expect("node lock poisoned");
        node.restore_trust_cache(trust_cache);
        node.restore_blacklist(blacklist);
        report
    }

    /// Runs one PoP with caller-held trust state. `horizon: None` is the
    /// lockstep path: the validator reads its store under a read lock held
    /// for the whole walk (nobody appends mid-slot). `Some(v)` is the
    /// pipelined path: the generation half keeps appending while the walk
    /// runs, so the validator reads through [`PipelinedStore`] (a fresh
    /// read lock per call) and caps every child lookup — its own and the
    /// wire's — at slot `v`, which makes the view identical to lockstep's.
    fn run_pop_with(
        &self,
        slot: u64,
        target: BlockId,
        trust_cache: &mut TrustCache,
        blacklist: &mut Blacklist,
        horizon: Option<u64>,
    ) -> PopReport {
        // Read locks: the dispatcher keeps serving peers' requests
        // concurrently, so symmetric cross-verification cannot deadlock;
        // the topology is only written at slot boundaries (with the
        // pipeline drained to the boundary first).
        let topology = self.shared.topology.read().expect("topology poisoned");
        let mut pop_rng = derived_rng(self.config.seed, stream::POP, slot, self.config.id);
        let mut transport = NetPopTransport {
            endpoint: &self.endpoint,
            peers: &self.peers,
            horizon,
            spans: self
                .shared
                .telemetry
                .spans
                .is_enabled()
                .then_some(&self.shared.telemetry.spans),
        };
        match horizon {
            None => {
                let node = self.shared.node.read().expect("node lock poisoned");
                let mut validator = Validator::new(
                    &self.cfg,
                    &topology,
                    self.config.id,
                    node.store(),
                    trust_cache,
                    blacklist,
                    &mut pop_rng,
                );
                validator.run(target, &mut transport)
            }
            Some(h) => {
                let store = PipelinedStore {
                    node: &self.shared.node,
                };
                let mut validator = Validator::new(
                    &self.cfg,
                    &topology,
                    self.config.id,
                    &store,
                    trust_cache,
                    blacklist,
                    &mut pop_rng,
                )
                .with_horizon(h);
                validator.run(target, &mut transport)
            }
        }
    }

    /// Reports to the controller (until acked) or lingers serving peers,
    /// then honours a shutdown request or the linger deadline.
    fn epilogue(&self, run: &RunReport) {
        match self.config.controller {
            Some(controller) => {
                let deadline = Instant::now() + self.config.slot_timeout;
                while !self.shared.report_acked.load(Ordering::Relaxed) && Instant::now() < deadline
                {
                    let _ = self
                        .endpoint
                        .send_control(controller, &Control::Report(*run));
                    std::thread::sleep(Duration::from_millis(100));
                }
                // Keep serving until the controller releases the cluster (it
                // does so only after *every* node reported) or we time out.
                let release = Instant::now() + self.config.slot_timeout;
                while !self.shared.shutdown.load(Ordering::Relaxed) && Instant::now() < release {
                    std::thread::sleep(Duration::from_millis(20));
                }
            }
            None => {
                // No controller: serve for the linger window so slower peers
                // can still finish their barriers against us.
                let release = Instant::now() + self.config.linger;
                while !self.shared.shutdown.load(Ordering::Relaxed) && Instant::now() < release {
                    std::thread::sleep(Duration::from_millis(20));
                }
            }
        }
    }
}

/// The inbound dispatcher: serves protocol requests against the node state
/// and folds control traffic into the shared runtime state.
fn dispatch(endpoint: &Endpoint, shared: &Shared, peers: &PeerTable, inbound: Inbound) {
    if shared.muted.load(Ordering::Relaxed) {
        // A flapping adversary is dark: it serves nothing and acks nothing,
        // but still folds the state it needs to run the attack — its own
        // eviction (gossiped as a leave) and the controller's release.
        if let Inbound::Control { msg, .. } = inbound {
            match msg {
                Control::Leave { node: leaver, slot } => {
                    shared
                        .roster
                        .lock()
                        .expect("roster poisoned")
                        .learn_leave(leaver, slot);
                }
                Control::Shutdown => shared.shutdown.store(true, Ordering::Relaxed),
                Control::ReportAck => shared.report_acked.store(true, Ordering::Relaxed),
                _ => {}
            }
        }
        return;
    }
    match inbound {
        Inbound::Wire {
            from,
            src,
            seq,
            msg,
            trace: _,
        } => {
            if peers.addr(from).is_some() {
                peers.mark_heard(from);
            }
            let reply = {
                let node = shared.node.read().expect("node lock poisoned");
                serve_wire_request(&node, &msg)
            };
            if let Some(reply) = reply {
                let _ = endpoint.send_reply(src, seq, &reply);
            }
        }
        Inbound::Control {
            from,
            src,
            msg,
            trace,
        } => {
            // Organic address learning: any authenticated control envelope
            // from a roster member we cannot address yet fills the gap (a
            // scheduled joiner whose announcement we missed, say).
            if peers.addr(from).is_none() && from != endpoint.id() {
                let known = {
                    let mut roster = shared.roster.lock().expect("roster poisoned");
                    if roster.member(from).is_some() {
                        roster.set_addr(from, src);
                        true
                    } else {
                        false
                    }
                };
                if known {
                    peers.insert(from, src);
                }
            }
            if peers.addr(from).is_some() {
                peers.mark_heard(from);
            }
            match msg {
                Control::Hello { from: peer } => {
                    let _ = endpoint.send_control(
                        src,
                        &Control::HelloAck {
                            from: endpoint.id(),
                        },
                    );
                    // Symmetric bootstrap: hearing a hello proves the peer is
                    // up just as well as an ack does.
                    shared
                        .hello_acks
                        .lock()
                        .expect("hello acks poisoned")
                        .insert(peer);
                }
                Control::HelloAck { from: peer } => {
                    shared
                        .hello_acks
                        .lock()
                        .expect("hello acks poisoned")
                        .insert(peer);
                }
                Control::SlotDigest { slot, digest } => {
                    // A trace context riding the gossip stitches the remote
                    // block into this node's timeline: materialize the
                    // origin's gossip-out instant (its clock, carried in
                    // the context), record the receive, and remember the
                    // identity for the commit stamp.
                    if let Some(ctx) = trace {
                        if shared.telemetry.spans.is_enabled() {
                            shared.telemetry.spans.record(SpanEvent {
                                slot: ctx.slot,
                                origin: ctx.origin,
                                prefix: ctx.prefix,
                                node: ctx.origin,
                                kind: SpanKind::GossipedOut,
                                ts_micros: ctx.ts_micros,
                            });
                            record_span(
                                shared,
                                endpoint.id().0,
                                ctx.slot,
                                ctx.origin,
                                ctx.prefix,
                                SpanKind::Received,
                            );
                            let mut keys = shared.trace_keys.lock().expect("trace keys poisoned");
                            let entry = keys.entry(ctx.slot).or_default();
                            if !entry.contains(&(ctx.origin, ctx.prefix)) {
                                entry.push((ctx.origin, ctx.prefix));
                            }
                        }
                    }
                    let conflict = {
                        let mut digests = shared.digests.lock().expect("digests poisoned");
                        let per_slot = digests.entry(from).or_default();
                        match per_slot.get(&slot) {
                            // Two distinct digests for one (peer, slot):
                            // equivocation, a digest lie, or a parasite
                            // re-advertisement. We cannot tell which copy
                            // is canonical, so discard the stored one and
                            // re-pull the slot from the peer directly —
                            // `DigestReq` answers come from its canonical
                            // chain, so the barrier re-converges on truth.
                            Some(stored) if *stored != digest => {
                                per_slot.remove(&slot);
                                true
                            }
                            Some(_) => false,
                            None => {
                                per_slot.insert(slot, digest);
                                false
                            }
                        }
                    };
                    if conflict {
                        endpoint.metrics().bump_digest_conflicts();
                        endpoint.metrics().bump_conflict_pulls();
                        let _ = endpoint.send_control(src, &Control::DigestReq { slot });
                        let newly = shared
                            .suspects
                            .lock()
                            .expect("suspects poisoned")
                            .insert(from);
                        shared.telemetry.journal.record(
                            slot,
                            EventKind::Penalty,
                            if newly {
                                format!(
                                    "conflicting digests from {from} at slot {slot}: \
peer flagged as adversarial"
                                )
                            } else {
                                format!("conflicting digests from {from} at slot {slot}")
                            },
                        );
                    }
                    // Generating slot t requires having passed the window
                    // gate for t — completion through t-W — so a digest
                    // doubles as a (possibly lost) SlotDone(t-W). W = 1 is
                    // the classic lockstep inference: the loop stays live
                    // even when the explicit announcement was dropped.
                    if slot >= shared.window {
                        mark_done(shared, from, slot - shared.window);
                    }
                }
                Control::SlotDone { slot } => mark_done(shared, from, slot),
                Control::DigestReq { slot } => {
                    let own = shared.own_digests.lock().expect("own digests poisoned");
                    if let Some(&digest) = own.get(&slot) {
                        // Re-sent digests carry the same trace context as
                        // the original gossip, so a pulled straggler still
                        // stitches into the requester's timeline.
                        let ctx = shared.telemetry.spans.is_enabled().then(|| TraceContext {
                            origin: endpoint.id().0,
                            slot,
                            prefix: digest_prefix(&digest),
                            ts_micros: unix_micros(),
                        });
                        let _ = endpoint.send_control_traced(
                            src,
                            &Control::SlotDigest { slot, digest },
                            ctx,
                        );
                    }
                }
                Control::JoinReq { .. } => {
                    endpoint.metrics().bump_joins_served();
                    let entries: Vec<WireMember> = {
                        let roster = shared.roster.lock().expect("roster poisoned");
                        roster
                            .entries()
                            .map(|(id, m)| WireMember {
                                id,
                                join_slot: m.join_slot,
                                leave_slot: m.leave_slot,
                                evicted: m.evicted,
                                addr: m.addr,
                            })
                            .collect()
                    };
                    let _ = endpoint.send_control(
                        src,
                        &Control::JoinAck {
                            from: endpoint.id(),
                            slot: shared.current_slot.load(Ordering::Relaxed),
                            members: entries.len() as u32,
                        },
                    );
                    for entry in entries {
                        let _ = endpoint.send_control(src, &Control::RosterEntry(entry));
                    }
                }
                Control::JoinAck {
                    from: responder,
                    slot,
                    members,
                } => {
                    let mut ack = shared.join_ack.lock().expect("join ack poisoned");
                    ack.get_or_insert((responder, slot, members));
                }
                Control::RosterEntry(m) => {
                    {
                        let mut roster = shared.roster.lock().expect("roster poisoned");
                        roster.learn_join(m.id, m.addr, m.join_slot);
                        if let Some(leave) = m.leave_slot {
                            if m.evicted {
                                roster.evict(m.id, leave);
                            } else {
                                roster.learn_leave(m.id, leave);
                            }
                        }
                    }
                    if let Some(addr) = m.addr {
                        if m.id != endpoint.id() {
                            peers.insert(m.id, addr);
                        }
                    }
                    shared
                        .transfer_seen
                        .lock()
                        .expect("transfer seen poisoned")
                        .insert(m.id);
                }
                Control::JoinAnnounce { id, slot, addr } => {
                    // A rejoin attempt from a peer that already departed
                    // this run is membership flapping — the attack, not
                    // recovery. Refuse to learn or ack it, so the flapper
                    // never re-enters a barrier set. (An evicted id can
                    // still come back as a fresh process in a later run.)
                    let flapping = {
                        let roster = shared.roster.lock().expect("roster poisoned");
                        roster.member(id).is_some_and(|m| m.leave_slot.is_some())
                    };
                    if flapping {
                        endpoint.metrics().bump_flap_rejections();
                        let newly = shared
                            .suspects
                            .lock()
                            .expect("suspects poisoned")
                            .insert(id);
                        if newly {
                            shared.telemetry.journal.record(
                                slot,
                                EventKind::Penalty,
                                format!(
                                    "rejected rejoin of departed peer {id}: membership flapping"
                                ),
                            );
                        }
                    } else {
                        let news = shared.roster.lock().expect("roster poisoned").learn_join(
                            id,
                            Some(addr),
                            slot,
                        );
                        if id != endpoint.id() {
                            peers.insert(id, addr);
                        }
                        // Always ack: the joiner retries its announcement
                        // until every member confirmed receipt.
                        let _ = endpoint.send_control(
                            src,
                            &Control::HelloAck {
                                from: endpoint.id(),
                            },
                        );
                        if news {
                            endpoint.metrics().bump_membership_gossip();
                            shared.telemetry.journal.record(
                                slot,
                                EventKind::Membership,
                                format!("learned join of {id} at slot {slot}"),
                            );
                            gossip_delta(
                                endpoint,
                                shared,
                                src,
                                &Control::JoinAnnounce { id, slot, addr },
                            );
                        }
                    }
                }
                Control::Leave { node: leaver, slot } => {
                    let news = shared
                        .roster
                        .lock()
                        .expect("roster poisoned")
                        .learn_leave(leaver, slot);
                    // A leave at m implies the leaver completed m-1 — keeps
                    // the lockstep live even when its SlotDone was lost and
                    // the process is already gone.
                    if slot > 0 {
                        mark_done(shared, leaver, slot - 1);
                    }
                    if news {
                        endpoint.metrics().bump_membership_gossip();
                        shared.telemetry.journal.record(
                            slot,
                            EventKind::Membership,
                            format!("learned leave of {leaver} at slot {slot}"),
                        );
                        gossip_delta(
                            endpoint,
                            shared,
                            src,
                            &Control::Leave { node: leaver, slot },
                        );
                    }
                }
                Control::Shutdown => shared.shutdown.store(true, Ordering::Relaxed),
                Control::ReportAck => shared.report_acked.store(true, Ordering::Relaxed),
                Control::Report(_) => {} // only the harness controller consumes these
            }
            // Any control message may have been the news a pipelined wait
            // is parked on.
            notify_progress(shared);
        }
    }
}

/// Bumps the progress version and wakes every wait parked on it.
fn notify_progress(shared: &Shared) {
    let mut version = shared.progress.lock().expect("progress poisoned");
    *version = version.wrapping_add(1);
    shared.progress_cv.notify_all();
}

/// Forwards a freshly learned membership delta to every addressable
/// member except the one it came from — one re-gossip hop per node per
/// delta (the `news` guard in the caller), enough for any single lost
/// datagram to be healed by whichever peer did hear it.
fn gossip_delta(endpoint: &Endpoint, shared: &Shared, learned_from: SocketAddr, msg: &Control) {
    let targets: Vec<SocketAddr> = {
        let roster = shared.roster.lock().expect("roster poisoned");
        roster
            .entries()
            .filter(|(id, m)| *id != endpoint.id() && m.addr.is_some_and(|a| a != learned_from))
            .filter_map(|(_, m)| m.addr)
            .collect()
    };
    for addr in targets {
        let _ = endpoint.send_control(addr, msg);
    }
}

/// Assembles a [`MetricsView`] from the node's live state — called by the
/// metrics listener per scrape, under short read locks so a scrape never
/// stalls the slot loop beyond a lock handoff.
fn collect_view(node_id: NodeId, endpoint: &Endpoint, shared: &Shared) -> MetricsView {
    let (chain_len, durable_len, pruned_floor, fsync_count, segment_count) = {
        let node = shared.node.read().expect("node lock poisoned");
        let store = node.store();
        (
            node.chain_len() as u64,
            store.durable_len() as u64,
            u64::from(store.pruned_floor()),
            store.fsync_count(),
            store.segment_count(),
        )
    };
    let (roster_members, roster_departed) = {
        let roster = shared.roster.lock().expect("roster poisoned");
        (
            roster.entries().count() as u64,
            roster
                .entries()
                .filter(|(_, m)| m.leave_slot.is_some())
                .count() as u64,
        )
    };
    let current = shared.current_slot.load(Ordering::Relaxed);
    let verified = shared.verified_through.load(Ordering::Relaxed);
    // Occupancy: slots in flight between generation and verification (the
    // lockstep loop reads 1 mid-slot, the pipeline up to `window`).
    let window_occupancy = (current + 1).saturating_sub(verified);
    // Lag: how far the slowest generating peer's completion watermark
    // trails our current slot. Locks taken sequentially, never nested.
    let watermark_lag = {
        let generators: Vec<NodeId> = {
            let roster = shared.roster.lock().expect("roster poisoned");
            roster
                .generators_at(current)
                .into_iter()
                .filter(|&p| p != node_id)
                .collect()
        };
        let done = shared.done.lock().expect("done poisoned");
        generators
            .iter()
            .map(|p| done.get(p).copied().unwrap_or(0))
            .min()
            .map_or(0, |low| current.saturating_sub(low))
    };
    let telemetry = &shared.telemetry;
    MetricsView {
        node: node_id,
        slot: current,
        window: shared.window,
        window_occupancy,
        watermark_lag,
        net: endpoint.stats(),
        pop: telemetry.pop(),
        pop_attempts: telemetry.pop_attempts.load(Ordering::Relaxed),
        pop_successes: telemetry.pop_successes.load(Ordering::Relaxed),
        chain_len,
        durable_len,
        pruned_floor,
        fsync_count,
        segment_count,
        roster_members,
        roster_departed,
        blacklist_banned: shared.blacklist_banned.load(Ordering::Relaxed),
        adversaries_detected: shared.suspects.lock().expect("suspects poisoned").len() as u64,
        journal_len: telemetry.journal.len() as u64,
        journal_dropped: telemetry.journal.dropped(),
        trace_spans: telemetry.spans.recorded(),
        trace_dropped: telemetry.spans.dropped(),
        trace_evicted: telemetry.spans.evicted(),
        phases: telemetry.phases.snapshot(),
        pop_rtt: telemetry.pop_rtt.snapshot(),
        request_rtt: endpoint.request_rtt().snapshot(),
        retry_backoff: endpoint.retry_backoff().snapshot(),
        fsync: telemetry.fsync.snapshot(),
        slot_latency: telemetry.slot_latency.snapshot(),
        batch_fill: endpoint.batch_fill().snapshot(),
    }
}

/// [`BlockBackend`] view over the live node for the pipelined validator:
/// every call takes a fresh read lock, so the verify worker never holds
/// the node lock across PoP network I/O (which would stall the generation
/// half's writes for a whole round-trip). Horizon capping makes the walk
/// insensitive to blocks appended between calls — every lookup the
/// validator performs is filtered to `header.time <= horizon`, and the
/// store below an already-generated slot never changes.
struct PipelinedStore<'a> {
    node: &'a RwLock<LedgerNode>,
}

impl PipelinedStore<'_> {
    fn with<T>(&self, f: impl FnOnce(&dyn BlockBackend) -> T) -> T {
        let node = self.node.read().expect("node lock poisoned");
        f(node.store())
    }
}

impl fmt::Debug for PipelinedStore<'_> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str("PipelinedStore")
    }
}

impl BlockBackend for PipelinedStore<'_> {
    fn append(&mut self, _block: DataBlock) -> Result<(), TldagError> {
        unreachable!("the validator never appends")
    }
    fn len(&self) -> usize {
        self.with(|s| s.len())
    }
    fn get(&self, seq: u32) -> Option<DataBlock> {
        self.with(|s| s.get(seq))
    }
    fn by_header_digest(&self, digest: &Digest) -> Option<DataBlock> {
        self.with(|s| s.by_header_digest(digest))
    }
    fn oldest_child_of(&self, target: &Digest) -> Option<DataBlock> {
        self.with(|s| s.oldest_child_of(target))
    }
    fn children_of(&self, target: &Digest) -> Vec<DataBlock> {
        self.with(|s| s.children_of(target))
    }
    fn iter(&self) -> Box<dyn Iterator<Item = DataBlock> + '_> {
        let blocks: Vec<DataBlock> = self.with(|s| s.iter().collect());
        Box::new(blocks.into_iter())
    }
    fn logical_bits(&self, cfg: &ProtocolConfig) -> Bits {
        self.with(|s| s.logical_bits(cfg))
    }
    fn resident_bytes(&self) -> usize {
        self.with(|s| s.resident_bytes())
    }
    fn pruned_floor(&self) -> u32 {
        self.with(|s| s.pruned_floor())
    }
}

/// Raises `peer`'s highest-completed-slot watermark (monotonic).
fn mark_done(shared: &Shared, peer: NodeId, slot: u64) {
    let mut done = shared.done.lock().expect("done poisoned");
    let entry = done.entry(peer).or_insert(slot);
    if *entry < slot {
        *entry = slot;
    }
}
