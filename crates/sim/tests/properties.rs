//! Property-based tests for the simulation substrate.

use proptest::prelude::*;
use tldag_sim::bus::{Accounting, TrafficClass};
use tldag_sim::engine::GenerationSchedule;
use tldag_sim::geometry::Point;
use tldag_sim::rng::DetRng;
use tldag_sim::stats::{percentile, Summary};
use tldag_sim::topology::{NodeId, Topology, TopologyConfig};
use tldag_sim::units::Bits;

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// `next_below` stays in range for arbitrary bounds and seeds.
    #[test]
    fn rng_next_below_in_range(seed in any::<u64>(), bound in 1u64..1_000_000) {
        let mut rng = DetRng::seed_from(seed);
        for _ in 0..50 {
            prop_assert!(rng.next_below(bound) < bound);
        }
    }

    /// Forked streams are deterministic functions of (parent, label).
    #[test]
    fn rng_forks_reproducible(seed in any::<u64>(), label in any::<u64>()) {
        let a = DetRng::seed_from(seed);
        let mut f1 = a.fork(label);
        let mut f2 = DetRng::seed_from(seed).fork(label);
        for _ in 0..10 {
            prop_assert_eq!(f1.next_u64(), f2.next_u64());
        }
    }

    /// `blocks_by` equals the count of generation slots for any schedule.
    #[test]
    fn schedule_blocks_by_consistent(
        periods in proptest::collection::vec(1u64..5, 1..8),
        horizon in 0u64..40,
    ) {
        let schedule = GenerationSchedule::from_periods(periods.clone());
        for i in 0..periods.len() as u32 {
            let id = NodeId(i);
            let manual = (0..=horizon).filter(|&s| schedule.generates(id, s)).count() as u64;
            prop_assert_eq!(schedule.blocks_by(id, horizon), manual);
        }
    }

    /// Paper-rule topologies are connected, in-range, and symmetric for any
    /// seed/size/side.
    #[test]
    fn topology_construction_invariants(
        seed in any::<u64>(),
        nodes in 1usize..30,
        side in 100.0f64..1200.0,
    ) {
        let cfg = TopologyConfig { nodes, side_m: side, ..TopologyConfig::paper_default() };
        let topo = Topology::random_connected(&cfg, &mut DetRng::seed_from(seed));
        prop_assert!(topo.is_connected());
        for a in topo.node_ids() {
            prop_assert!(topo.position(a).in_square(side));
            for &b in topo.neighbors(a) {
                prop_assert!(topo.are_neighbors(b, a));
                prop_assert!(topo.position(a).in_range(&topo.position(b), cfg.range_m));
            }
        }
    }

    /// Adding then isolating a node restores the original edge set.
    #[test]
    fn add_then_isolate_is_neutral(seed in any::<u64>(), nodes in 2usize..20) {
        let cfg = TopologyConfig { nodes, side_m: 300.0, ..TopologyConfig::paper_default() };
        let mut topo = Topology::random_connected(&cfg, &mut DetRng::seed_from(seed));
        let before: Vec<Vec<NodeId>> = topo.node_ids().map(|i| topo.neighbors(i).to_vec()).collect();
        let center = topo.position(NodeId(0));
        let id = topo.add_node(Point::new(center.x + 1.0, center.y), cfg.range_m);
        topo.isolate_node(id);
        for i in 0..nodes as u32 {
            prop_assert_eq!(topo.neighbors(NodeId(i)), before[i as usize].as_slice());
        }
        prop_assert_eq!(topo.degree(id), 0);
    }

    /// Network-wide accounting equals tx + rx sums for arbitrary traffic.
    #[test]
    fn accounting_totals_balance(
        transfers in proptest::collection::vec((0u32..8, 0u32..8, 1u64..10_000), 0..40),
    ) {
        let mut acc = Accounting::new(8);
        let mut expected_total = 0u64;
        for &(from, to, bits) in &transfers {
            acc.record(NodeId(from), NodeId(to), TrafficClass::Other, Bits::from_bits(bits));
            expected_total += 2 * bits; // counted at both endpoints
        }
        prop_assert_eq!(acc.network_total(TrafficClass::Other).bits(), expected_total);
        let tx_sum: u64 = (0..8u32).map(|i| acc.tx(NodeId(i), TrafficClass::Other).bits()).sum();
        let rx_sum: u64 = (0..8u32).map(|i| acc.rx(NodeId(i), TrafficClass::Other).bits()).sum();
        prop_assert_eq!(tx_sum, rx_sum);
        prop_assert_eq!(tx_sum + rx_sum, expected_total);
    }

    /// Summary statistics are order-invariant and bounded by min/max.
    #[test]
    fn summary_order_invariant(mut samples in proptest::collection::vec(-1e6f64..1e6, 1..50)) {
        let s1 = Summary::of(&samples).unwrap();
        samples.reverse();
        let s2 = Summary::of(&samples).unwrap();
        prop_assert!((s1.mean - s2.mean).abs() < 1e-6);
        prop_assert_eq!(s1.min, s2.min);
        prop_assert_eq!(s1.max, s2.max);
        prop_assert!(s1.min <= s1.mean && s1.mean <= s1.max);
    }

    /// Percentiles are monotone in q and bounded by the sample range.
    #[test]
    fn percentiles_monotone(samples in proptest::collection::vec(0.0f64..1e6, 1..50)) {
        let mut last = f64::NEG_INFINITY;
        for q in [0.0, 0.1, 0.25, 0.5, 0.75, 0.9, 1.0] {
            let p = percentile(&samples, q).unwrap();
            prop_assert!(p >= last);
            last = p;
        }
        let max = samples.iter().cloned().fold(f64::NEG_INFINITY, f64::max);
        prop_assert_eq!(percentile(&samples, 1.0).unwrap(), max);
    }

    /// Bits arithmetic: sums and scalar products agree with u64 math.
    #[test]
    fn bits_arithmetic(values in proptest::collection::vec(0u64..1_000_000, 0..20), k in 0u64..50) {
        let total: Bits = values.iter().map(|&v| Bits::from_bits(v)).sum();
        prop_assert_eq!(total.bits(), values.iter().sum::<u64>());
        if let Some(&first) = values.first() {
            prop_assert_eq!((Bits::from_bits(first) * k).bits(), first * k);
        }
    }
}
