//! Deterministic discrete-time network simulator for the 2LDAG evaluation.
//!
//! The paper evaluates 2LDAG on "a desktop with an i7-12700 CPU" by simulating
//! 50 wireless IoT nodes in a square area with a 50 m radio range, time divided
//! into slots, and per-node storage/communication accounting (Sec. VI). This
//! crate is that substrate, built from scratch:
//!
//! * [`rng`] — seedable, splittable xoshiro256++ PRNG so every experiment is
//!   reproducible from a single `u64` seed.
//! * [`geometry`] / [`topology`] — unit-disk graphs built with the paper's
//!   incremental connected-placement procedure.
//! * [`engine`] — time-slot bookkeeping and generation schedules.
//! * [`bus`] — a message bus that meters transmitted/received bits per node
//!   and per traffic category.
//! * [`fault`] — malicious-node selection and link-level fault injection.
//! * [`metrics`] / [`stats`] — counters, time series, CDFs, and summary stats.
//! * [`units`] — bit/byte/megabyte conversions used by the overhead model.
//!
//! # Example
//!
//! ```
//! use tldag_sim::topology::{Topology, TopologyConfig};
//! use tldag_sim::rng::DetRng;
//!
//! let mut rng = DetRng::seed_from(7);
//! let topo = Topology::random_connected(&TopologyConfig::paper_default(), &mut rng);
//! assert_eq!(topo.len(), 50);
//! assert!(topo.is_connected());
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod bus;
pub mod engine;
pub mod fault;
pub mod geometry;
pub mod metrics;
pub mod rng;
pub mod stats;
pub mod topology;
pub mod trace;
pub mod units;

pub use bus::{Accounting, MessageBus, TrafficClass};
pub use engine::{GenerationSchedule, SlotClock};
pub use fault::{FaultPlan, RestartEvent, RestartPlan};
pub use rng::DetRng;
pub use topology::{NodeId, Topology, TopologyConfig};
pub use units::Bits;
