//! Summary statistics and empirical CDFs for the evaluation plots.
//!
//! Figs. 7(d) and 8(d) of the paper report the CDF ("likelihood of
//! occurrence") of per-node storage and communication overhead. [`Cdf`]
//! produces exactly those curves from per-node samples.

use std::fmt;

/// Summary statistics over a sample of `f64` values.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct Summary {
    /// Number of samples.
    pub count: usize,
    /// Arithmetic mean.
    pub mean: f64,
    /// Population standard deviation.
    pub std_dev: f64,
    /// Minimum.
    pub min: f64,
    /// Maximum.
    pub max: f64,
}

impl Summary {
    /// Computes summary statistics; returns `None` for an empty sample.
    pub fn of(samples: &[f64]) -> Option<Summary> {
        if samples.is_empty() {
            return None;
        }
        let n = samples.len() as f64;
        let mean = samples.iter().sum::<f64>() / n;
        let var = samples.iter().map(|x| (x - mean) * (x - mean)).sum::<f64>() / n;
        let mut min = f64::INFINITY;
        let mut max = f64::NEG_INFINITY;
        for &x in samples {
            min = min.min(x);
            max = max.max(x);
        }
        Some(Summary {
            count: samples.len(),
            mean,
            std_dev: var.sqrt(),
            min,
            max,
        })
    }
}

impl fmt::Display for Summary {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "n={} mean={:.4} std={:.4} min={:.4} max={:.4}",
            self.count, self.mean, self.std_dev, self.min, self.max
        )
    }
}

/// Percentile of a sample using nearest-rank on a sorted copy.
///
/// `q` is in `[0, 1]`. Returns `None` for an empty sample.
///
/// # Example
///
/// ```
/// use tldag_sim::stats::percentile;
///
/// let data = vec![1.0, 2.0, 3.0, 4.0];
/// assert_eq!(percentile(&data, 0.5), Some(2.0));
/// assert_eq!(percentile(&data, 1.0), Some(4.0));
/// ```
pub fn percentile(samples: &[f64], q: f64) -> Option<f64> {
    if samples.is_empty() {
        return None;
    }
    let mut sorted = samples.to_vec();
    sorted.sort_by(|a, b| a.partial_cmp(b).expect("no NaN in samples"));
    let q = q.clamp(0.0, 1.0);
    let rank = ((q * sorted.len() as f64).ceil() as usize).clamp(1, sorted.len());
    Some(sorted[rank - 1])
}

/// An empirical cumulative distribution function.
///
/// # Example
///
/// ```
/// use tldag_sim::stats::Cdf;
///
/// let cdf = Cdf::from_samples(vec![10.0, 20.0, 20.0, 40.0]);
/// assert_eq!(cdf.fraction_at_or_below(20.0), 0.75);
/// assert_eq!(cdf.fraction_at_or_below(9.0), 0.0);
/// ```
#[derive(Clone, Debug)]
pub struct Cdf {
    sorted: Vec<f64>,
}

impl Cdf {
    /// Builds a CDF from raw samples.
    ///
    /// # Panics
    ///
    /// Panics if any sample is NaN.
    pub fn from_samples(mut samples: Vec<f64>) -> Self {
        assert!(
            samples.iter().all(|x| !x.is_nan()),
            "CDF samples must not contain NaN"
        );
        samples.sort_by(|a, b| a.partial_cmp(b).expect("checked for NaN"));
        Cdf { sorted: samples }
    }

    /// Number of samples.
    pub fn len(&self) -> usize {
        self.sorted.len()
    }

    /// True if the CDF holds no samples.
    pub fn is_empty(&self) -> bool {
        self.sorted.is_empty()
    }

    /// Fraction of samples `<= x` (the CDF value at `x`).
    pub fn fraction_at_or_below(&self, x: f64) -> f64 {
        if self.sorted.is_empty() {
            return 0.0;
        }
        let count = self.sorted.partition_point(|&s| s <= x);
        count as f64 / self.sorted.len() as f64
    }

    /// The sample value at cumulative probability `q` (inverse CDF,
    /// nearest-rank). Returns `None` for an empty CDF.
    pub fn quantile(&self, q: f64) -> Option<f64> {
        if self.sorted.is_empty() {
            return None;
        }
        let q = q.clamp(0.0, 1.0);
        let rank = ((q * self.sorted.len() as f64).ceil() as usize).clamp(1, self.sorted.len());
        Some(self.sorted[rank - 1])
    }

    /// The step points `(x, F(x))` of the CDF, one per distinct sample —
    /// exactly the curve plotted in Figs. 7(d)/8(d).
    pub fn points(&self) -> Vec<(f64, f64)> {
        let n = self.sorted.len();
        let mut points = Vec::new();
        for (i, &x) in self.sorted.iter().enumerate() {
            let is_last_of_run = i + 1 == n || self.sorted[i + 1] > x;
            if is_last_of_run {
                points.push((x, (i + 1) as f64 / n as f64));
            }
        }
        points
    }

    /// Smallest and largest sample.
    pub fn range(&self) -> Option<(f64, f64)> {
        Some((*self.sorted.first()?, *self.sorted.last()?))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn summary_of_known_sample() {
        let s = Summary::of(&[2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0]).unwrap();
        assert_eq!(s.count, 8);
        assert!((s.mean - 5.0).abs() < 1e-12);
        assert!((s.std_dev - 2.0).abs() < 1e-12);
        assert_eq!(s.min, 2.0);
        assert_eq!(s.max, 9.0);
    }

    #[test]
    fn summary_empty_is_none() {
        assert!(Summary::of(&[]).is_none());
    }

    #[test]
    fn percentile_nearest_rank() {
        let data = vec![15.0, 20.0, 35.0, 40.0, 50.0];
        assert_eq!(percentile(&data, 0.05), Some(15.0));
        assert_eq!(percentile(&data, 0.3), Some(20.0));
        assert_eq!(percentile(&data, 0.4), Some(20.0));
        assert_eq!(percentile(&data, 0.5), Some(35.0));
        assert_eq!(percentile(&data, 1.0), Some(50.0));
    }

    #[test]
    fn cdf_monotone_and_bounded() {
        let cdf = Cdf::from_samples(vec![3.0, 1.0, 2.0, 2.0, 10.0]);
        let mut last = 0.0;
        for x in [0.0, 1.0, 1.5, 2.0, 3.0, 9.0, 10.0, 11.0] {
            let f = cdf.fraction_at_or_below(x);
            assert!((0.0..=1.0).contains(&f));
            assert!(f >= last);
            last = f;
        }
        assert_eq!(cdf.fraction_at_or_below(11.0), 1.0);
    }

    #[test]
    fn cdf_points_step_structure() {
        let cdf = Cdf::from_samples(vec![1.0, 1.0, 2.0]);
        assert_eq!(cdf.points(), vec![(1.0, 2.0 / 3.0), (2.0, 1.0)]);
    }

    #[test]
    fn quantile_inverts_cdf() {
        let cdf = Cdf::from_samples((1..=100).map(|i| i as f64).collect());
        assert_eq!(cdf.quantile(0.5), Some(50.0));
        assert_eq!(cdf.quantile(0.9), Some(90.0));
        assert_eq!(cdf.quantile(0.0), Some(1.0));
        assert_eq!(cdf.quantile(1.0), Some(100.0));
    }

    #[test]
    #[should_panic(expected = "NaN")]
    fn cdf_rejects_nan() {
        Cdf::from_samples(vec![1.0, f64::NAN]);
    }

    #[test]
    fn empty_cdf_behaviour() {
        let cdf = Cdf::from_samples(vec![]);
        assert!(cdf.is_empty());
        assert_eq!(cdf.fraction_at_or_below(5.0), 0.0);
        assert_eq!(cdf.quantile(0.5), None);
        assert_eq!(cdf.range(), None);
    }
}
