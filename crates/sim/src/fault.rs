//! Malicious-node selection and link fault injection.
//!
//! The consensus experiments (Figs. 8–9) place a configurable number of
//! malicious nodes in the network; PoP must route verification paths around
//! them (Fig. 5). [`FaultPlan`] chooses which nodes are malicious and exposes
//! membership tests; protocol-specific *behaviour* (unresponsive, corrupt
//! replies, tampered stores…) lives in `tldag-core::attack`.

use crate::rng::DetRng;
use crate::topology::{NodeId, Topology};

/// How malicious nodes are chosen from the deployment.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum MaliciousPlacement {
    /// Uniformly at random (the paper's model).
    Uniform,
    /// Highest-degree nodes first — models the paper's observation that "a
    /// few nodes are important for forwarding data, which are vulnerable to
    /// attacks" (Sec. VI-B).
    HighestDegree,
    /// Lowest-degree (leaf) nodes first, a weak adversary for ablations.
    LowestDegree,
}

/// The set of malicious nodes for one experiment run.
#[derive(Clone, Debug)]
pub struct FaultPlan {
    malicious: Vec<bool>,
    count: usize,
}

impl FaultPlan {
    /// No malicious nodes.
    pub fn none(nodes: usize) -> Self {
        FaultPlan {
            malicious: vec![false; nodes],
            count: 0,
        }
    }

    /// Marks `count` nodes as malicious according to `placement`.
    ///
    /// # Panics
    ///
    /// Panics if `count > topology.len()`.
    pub fn select(
        topology: &Topology,
        count: usize,
        placement: MaliciousPlacement,
        rng: &mut DetRng,
    ) -> Self {
        assert!(
            count <= topology.len(),
            "cannot mark {count} of {} nodes malicious",
            topology.len()
        );
        let n = topology.len();
        let chosen: Vec<usize> = match placement {
            MaliciousPlacement::Uniform => rng.sample_indices(n, count),
            MaliciousPlacement::HighestDegree | MaliciousPlacement::LowestDegree => {
                let mut order: Vec<usize> = (0..n).collect();
                // Shuffle first so degree ties break randomly but deterministically.
                rng.shuffle(&mut order);
                order.sort_by_key(|&i| {
                    let d = topology.degree(NodeId(i as u32));
                    match placement {
                        MaliciousPlacement::HighestDegree => std::cmp::Reverse(d),
                        _ => std::cmp::Reverse(usize::MAX - d),
                    }
                });
                order.truncate(count);
                order
            }
        };
        let mut malicious = vec![false; n];
        for i in chosen {
            malicious[i] = true;
        }
        FaultPlan { malicious, count }
    }

    /// Marks an explicit set of nodes as malicious.
    ///
    /// # Panics
    ///
    /// Panics if an id is out of bounds.
    pub fn explicit(nodes: usize, ids: &[NodeId]) -> Self {
        let mut malicious = vec![false; nodes];
        for id in ids {
            assert!(id.index() < nodes, "node {id} out of bounds");
            malicious[id.index()] = true;
        }
        let count = malicious.iter().filter(|&&m| m).count();
        FaultPlan { malicious, count }
    }

    /// Whether `node` is malicious.
    pub fn is_malicious(&self, node: NodeId) -> bool {
        self.malicious[node.index()]
    }

    /// Number of malicious nodes.
    pub fn malicious_count(&self) -> usize {
        self.count
    }

    /// Number of nodes covered by the plan.
    pub fn len(&self) -> usize {
        self.malicious.len()
    }

    /// True if the plan covers no nodes.
    pub fn is_empty(&self) -> bool {
        self.malicious.is_empty()
    }

    /// Ids of all malicious nodes.
    pub fn malicious_ids(&self) -> Vec<NodeId> {
        self.malicious
            .iter()
            .enumerate()
            .filter_map(|(i, &m)| m.then_some(NodeId(i as u32)))
            .collect()
    }

    /// Ids of all honest nodes.
    pub fn honest_ids(&self) -> Vec<NodeId> {
        self.malicious
            .iter()
            .enumerate()
            .filter_map(|(i, &m)| (!m).then_some(NodeId(i as u32)))
            .collect()
    }
}

/// Link-level fault injection: independent message-drop probability.
#[derive(Clone, Debug)]
pub struct LinkFaults {
    drop_probability: f64,
    rng: DetRng,
}

impl LinkFaults {
    /// Perfect links.
    pub fn perfect() -> Self {
        LinkFaults {
            drop_probability: 0.0,
            rng: DetRng::seed_from(0),
        }
    }

    /// Drops each message independently with probability `p` (clamped to
    /// `[0, 1]`).
    pub fn lossy(p: f64, rng: DetRng) -> Self {
        LinkFaults {
            drop_probability: p.clamp(0.0, 1.0),
            rng,
        }
    }

    /// Decides whether the next message is dropped.
    pub fn drops(&mut self) -> bool {
        self.drop_probability > 0.0 && self.rng.chance(self.drop_probability)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::topology::TopologyConfig;

    fn topo() -> Topology {
        Topology::random_connected(&TopologyConfig::small(20), &mut DetRng::seed_from(3))
    }

    #[test]
    fn none_has_no_malicious() {
        let plan = FaultPlan::none(10);
        assert_eq!(plan.malicious_count(), 0);
        assert!(plan.honest_ids().len() == 10);
    }

    #[test]
    fn uniform_selection_marks_exact_count() {
        let topo = topo();
        let mut rng = DetRng::seed_from(1);
        let plan = FaultPlan::select(&topo, 7, MaliciousPlacement::Uniform, &mut rng);
        assert_eq!(plan.malicious_count(), 7);
        assert_eq!(plan.malicious_ids().len(), 7);
        assert_eq!(plan.honest_ids().len(), 13);
    }

    #[test]
    fn highest_degree_targets_hubs() {
        let topo = topo();
        let mut rng = DetRng::seed_from(2);
        let plan = FaultPlan::select(&topo, 3, MaliciousPlacement::HighestDegree, &mut rng);
        let min_malicious_degree = plan
            .malicious_ids()
            .iter()
            .map(|&id| topo.degree(id))
            .min()
            .unwrap();
        // The chosen hubs must be at least as connected as the median node.
        let mut degrees: Vec<usize> = topo.node_ids().map(|id| topo.degree(id)).collect();
        degrees.sort_unstable();
        let median = degrees[degrees.len() / 2];
        assert!(min_malicious_degree >= median.saturating_sub(1));
    }

    #[test]
    fn explicit_selection() {
        let plan = FaultPlan::explicit(5, &[NodeId(1), NodeId(3)]);
        assert!(plan.is_malicious(NodeId(1)));
        assert!(plan.is_malicious(NodeId(3)));
        assert!(!plan.is_malicious(NodeId(0)));
        assert_eq!(plan.malicious_count(), 2);
    }

    #[test]
    fn same_seed_same_plan() {
        let topo = topo();
        let p1 = FaultPlan::select(&topo, 5, MaliciousPlacement::Uniform, &mut DetRng::seed_from(9));
        let p2 = FaultPlan::select(&topo, 5, MaliciousPlacement::Uniform, &mut DetRng::seed_from(9));
        assert_eq!(p1.malicious_ids(), p2.malicious_ids());
    }

    #[test]
    fn perfect_links_never_drop() {
        let mut links = LinkFaults::perfect();
        assert!((0..100).all(|_| !links.drops()));
    }

    #[test]
    fn lossy_links_drop_roughly_at_rate() {
        let mut links = LinkFaults::lossy(0.3, DetRng::seed_from(4));
        let drops = (0..10_000).filter(|_| links.drops()).count();
        assert!((2_500..3_500).contains(&drops), "drops = {drops}");
    }
}
