//! Malicious-node selection and link fault injection.
//!
//! The consensus experiments (Figs. 8–9) place a configurable number of
//! malicious nodes in the network; PoP must route verification paths around
//! them (Fig. 5). [`FaultPlan`] chooses which nodes are malicious and exposes
//! membership tests; protocol-specific *behaviour* (unresponsive, corrupt
//! replies, tampered stores…) lives in `tldag-core::attack`.

use crate::rng::DetRng;
use crate::topology::{NodeId, Topology};

/// How malicious nodes are chosen from the deployment.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum MaliciousPlacement {
    /// Uniformly at random (the paper's model).
    Uniform,
    /// Highest-degree nodes first — models the paper's observation that "a
    /// few nodes are important for forwarding data, which are vulnerable to
    /// attacks" (Sec. VI-B).
    HighestDegree,
    /// Lowest-degree (leaf) nodes first, a weak adversary for ablations.
    LowestDegree,
}

/// The set of malicious nodes for one experiment run.
#[derive(Clone, Debug)]
pub struct FaultPlan {
    malicious: Vec<bool>,
    count: usize,
}

impl FaultPlan {
    /// No malicious nodes.
    pub fn none(nodes: usize) -> Self {
        FaultPlan {
            malicious: vec![false; nodes],
            count: 0,
        }
    }

    /// Marks `count` nodes as malicious according to `placement`.
    ///
    /// # Panics
    ///
    /// Panics if `count > topology.len()`.
    pub fn select(
        topology: &Topology,
        count: usize,
        placement: MaliciousPlacement,
        rng: &mut DetRng,
    ) -> Self {
        assert!(
            count <= topology.len(),
            "cannot mark {count} of {} nodes malicious",
            topology.len()
        );
        let n = topology.len();
        let chosen: Vec<usize> = match placement {
            MaliciousPlacement::Uniform => rng.sample_indices(n, count),
            MaliciousPlacement::HighestDegree | MaliciousPlacement::LowestDegree => {
                let mut order: Vec<usize> = (0..n).collect();
                // Shuffle first so degree ties break randomly but deterministically.
                rng.shuffle(&mut order);
                order.sort_by_key(|&i| {
                    let d = topology.degree(NodeId(i as u32));
                    match placement {
                        MaliciousPlacement::HighestDegree => std::cmp::Reverse(d),
                        _ => std::cmp::Reverse(usize::MAX - d),
                    }
                });
                order.truncate(count);
                order
            }
        };
        let mut malicious = vec![false; n];
        for i in chosen {
            malicious[i] = true;
        }
        FaultPlan { malicious, count }
    }

    /// Marks an explicit set of nodes as malicious.
    ///
    /// # Panics
    ///
    /// Panics if an id is out of bounds.
    pub fn explicit(nodes: usize, ids: &[NodeId]) -> Self {
        let mut malicious = vec![false; nodes];
        for id in ids {
            assert!(id.index() < nodes, "node {id} out of bounds");
            malicious[id.index()] = true;
        }
        let count = malicious.iter().filter(|&&m| m).count();
        FaultPlan { malicious, count }
    }

    /// Whether `node` is malicious.
    pub fn is_malicious(&self, node: NodeId) -> bool {
        self.malicious[node.index()]
    }

    /// Number of malicious nodes.
    pub fn malicious_count(&self) -> usize {
        self.count
    }

    /// Number of nodes covered by the plan.
    pub fn len(&self) -> usize {
        self.malicious.len()
    }

    /// True if the plan covers no nodes.
    pub fn is_empty(&self) -> bool {
        self.malicious.is_empty()
    }

    /// Ids of all malicious nodes.
    pub fn malicious_ids(&self) -> Vec<NodeId> {
        self.malicious
            .iter()
            .enumerate()
            .filter_map(|(i, &m)| m.then_some(NodeId(i as u32)))
            .collect()
    }

    /// Ids of all honest nodes.
    pub fn honest_ids(&self) -> Vec<NodeId> {
        self.malicious
            .iter()
            .enumerate()
            .filter_map(|(i, &m)| (!m).then_some(NodeId(i as u32)))
            .collect()
    }
}

/// One node-restart fault: the node's process dies at `crash_slot` (losing
/// all volatile state) and comes back at `revive_slot`, recovering whatever
/// its storage backend persisted.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct RestartEvent {
    /// The node that crashes.
    pub node: NodeId,
    /// Slot at whose start the process dies.
    pub crash_slot: u64,
    /// Slot at whose start the process is back up (`> crash_slot`).
    pub revive_slot: u64,
}

/// A schedule of node crash/restart faults for one experiment run.
///
/// Placement mirrors [`FaultPlan`]: events can be listed explicitly or drawn
/// uniformly. The plan only *describes* the schedule; the protocol layer
/// executes it (dropping volatile state, reopening storage).
#[derive(Clone, Debug, Default)]
pub struct RestartPlan {
    events: Vec<RestartEvent>,
}

impl RestartPlan {
    /// No restarts.
    pub fn none() -> Self {
        RestartPlan::default()
    }

    /// An explicit schedule.
    ///
    /// # Panics
    ///
    /// Panics if any event revives no later than it crashes, or if one node
    /// has overlapping downtimes.
    pub fn explicit(events: Vec<RestartEvent>) -> Self {
        for e in &events {
            assert!(
                e.revive_slot > e.crash_slot,
                "{} revives at {} before/at its crash at {}",
                e.node,
                e.revive_slot,
                e.crash_slot
            );
        }
        for (i, a) in events.iter().enumerate() {
            for b in events.iter().skip(i + 1) {
                if a.node == b.node {
                    assert!(
                        a.revive_slot <= b.crash_slot || b.revive_slot <= a.crash_slot,
                        "{} has overlapping downtimes",
                        a.node
                    );
                }
            }
        }
        RestartPlan { events }
    }

    /// Draws `count` distinct nodes uniformly and gives each one crash of
    /// `downtime_slots` slots, with crash slots uniform in `crash_window`.
    ///
    /// # Panics
    ///
    /// Panics if `count > topology.len()` or the window is empty.
    pub fn uniform(
        topology: &Topology,
        count: usize,
        crash_window: std::ops::Range<u64>,
        downtime_slots: u64,
        rng: &mut DetRng,
    ) -> Self {
        assert!(count <= topology.len(), "more restarts than nodes");
        assert!(!crash_window.is_empty(), "empty crash window");
        assert!(downtime_slots > 0, "restart needs positive downtime");
        let span = crash_window.end - crash_window.start;
        let events = rng
            .sample_indices(topology.len(), count)
            .into_iter()
            .map(|i| {
                let crash_slot = crash_window.start + rng.next_below(span);
                RestartEvent {
                    node: NodeId(i as u32),
                    crash_slot,
                    revive_slot: crash_slot + downtime_slots,
                }
            })
            .collect();
        RestartPlan { events }
    }

    /// All scheduled events.
    pub fn events(&self) -> &[RestartEvent] {
        &self.events
    }

    /// Nodes whose process dies at the start of `slot`.
    pub fn crashes_at(&self, slot: u64) -> Vec<NodeId> {
        self.events
            .iter()
            .filter(|e| e.crash_slot == slot)
            .map(|e| e.node)
            .collect()
    }

    /// Nodes whose process returns at the start of `slot`.
    pub fn revives_at(&self, slot: u64) -> Vec<NodeId> {
        self.events
            .iter()
            .filter(|e| e.revive_slot == slot)
            .map(|e| e.node)
            .collect()
    }

    /// Whether `node` is down during `slot`.
    pub fn is_down(&self, node: NodeId, slot: u64) -> bool {
        self.events
            .iter()
            .any(|e| e.node == node && (e.crash_slot..e.revive_slot).contains(&slot))
    }
}

/// Link-level fault injection: independent message-drop probability.
#[derive(Clone, Debug)]
pub struct LinkFaults {
    drop_probability: f64,
    rng: DetRng,
}

impl LinkFaults {
    /// Perfect links.
    pub fn perfect() -> Self {
        LinkFaults {
            drop_probability: 0.0,
            rng: DetRng::seed_from(0),
        }
    }

    /// Drops each message independently with probability `p` (clamped to
    /// `[0, 1]`).
    pub fn lossy(p: f64, rng: DetRng) -> Self {
        LinkFaults {
            drop_probability: p.clamp(0.0, 1.0),
            rng,
        }
    }

    /// Decides whether the next message is dropped.
    pub fn drops(&mut self) -> bool {
        self.drop_probability > 0.0 && self.rng.chance(self.drop_probability)
    }

    /// Derives an independent fault stream labelled by `stream`, keeping the
    /// drop probability. The shard-parallel engine forks one stream per
    /// (slot, validator) so loss decisions do not depend on the order PoP
    /// runs execute in — and therefore not on the thread count.
    pub fn fork(&self, stream: u64) -> LinkFaults {
        LinkFaults {
            drop_probability: self.drop_probability,
            rng: self.rng.fork(stream),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::topology::TopologyConfig;

    fn topo() -> Topology {
        Topology::random_connected(&TopologyConfig::small(20), &mut DetRng::seed_from(3))
    }

    #[test]
    fn none_has_no_malicious() {
        let plan = FaultPlan::none(10);
        assert_eq!(plan.malicious_count(), 0);
        assert!(plan.honest_ids().len() == 10);
    }

    #[test]
    fn uniform_selection_marks_exact_count() {
        let topo = topo();
        let mut rng = DetRng::seed_from(1);
        let plan = FaultPlan::select(&topo, 7, MaliciousPlacement::Uniform, &mut rng);
        assert_eq!(plan.malicious_count(), 7);
        assert_eq!(plan.malicious_ids().len(), 7);
        assert_eq!(plan.honest_ids().len(), 13);
    }

    #[test]
    fn highest_degree_targets_hubs() {
        let topo = topo();
        let mut rng = DetRng::seed_from(2);
        let plan = FaultPlan::select(&topo, 3, MaliciousPlacement::HighestDegree, &mut rng);
        let min_malicious_degree = plan
            .malicious_ids()
            .iter()
            .map(|&id| topo.degree(id))
            .min()
            .unwrap();
        // The chosen hubs must be at least as connected as the median node.
        let mut degrees: Vec<usize> = topo.node_ids().map(|id| topo.degree(id)).collect();
        degrees.sort_unstable();
        let median = degrees[degrees.len() / 2];
        assert!(min_malicious_degree >= median.saturating_sub(1));
    }

    #[test]
    fn explicit_selection() {
        let plan = FaultPlan::explicit(5, &[NodeId(1), NodeId(3)]);
        assert!(plan.is_malicious(NodeId(1)));
        assert!(plan.is_malicious(NodeId(3)));
        assert!(!plan.is_malicious(NodeId(0)));
        assert_eq!(plan.malicious_count(), 2);
    }

    #[test]
    fn same_seed_same_plan() {
        let topo = topo();
        let p1 = FaultPlan::select(
            &topo,
            5,
            MaliciousPlacement::Uniform,
            &mut DetRng::seed_from(9),
        );
        let p2 = FaultPlan::select(
            &topo,
            5,
            MaliciousPlacement::Uniform,
            &mut DetRng::seed_from(9),
        );
        assert_eq!(p1.malicious_ids(), p2.malicious_ids());
    }

    #[test]
    fn restart_plan_schedules_and_queries() {
        let plan = RestartPlan::explicit(vec![
            RestartEvent {
                node: NodeId(2),
                crash_slot: 5,
                revive_slot: 9,
            },
            RestartEvent {
                node: NodeId(4),
                crash_slot: 7,
                revive_slot: 8,
            },
        ]);
        assert_eq!(plan.crashes_at(5), vec![NodeId(2)]);
        assert_eq!(plan.revives_at(9), vec![NodeId(2)]);
        assert!(plan.crashes_at(6).is_empty());
        assert!(plan.is_down(NodeId(2), 5));
        assert!(plan.is_down(NodeId(2), 8));
        assert!(!plan.is_down(NodeId(2), 9));
        assert!(!plan.is_down(NodeId(4), 6));
        assert!(plan.is_down(NodeId(4), 7));
    }

    #[test]
    #[should_panic(expected = "overlapping downtimes")]
    fn restart_plan_rejects_overlap_with_equal_crash_slot() {
        RestartPlan::explicit(vec![
            RestartEvent {
                node: NodeId(0),
                crash_slot: 5,
                revive_slot: 9,
            },
            RestartEvent {
                node: NodeId(0),
                crash_slot: 5,
                revive_slot: 7,
            },
        ]);
    }

    #[test]
    #[should_panic(expected = "revives at")]
    fn restart_plan_rejects_inverted_event() {
        RestartPlan::explicit(vec![RestartEvent {
            node: NodeId(0),
            crash_slot: 5,
            revive_slot: 5,
        }]);
    }

    #[test]
    fn uniform_restarts_are_deterministic_and_in_window() {
        let topo = topo();
        let p1 = RestartPlan::uniform(&topo, 4, 10..20, 3, &mut DetRng::seed_from(7));
        let p2 = RestartPlan::uniform(&topo, 4, 10..20, 3, &mut DetRng::seed_from(7));
        assert_eq!(p1.events(), p2.events());
        assert_eq!(p1.events().len(), 4);
        for e in p1.events() {
            assert!((10..20).contains(&e.crash_slot));
            assert_eq!(e.revive_slot, e.crash_slot + 3);
        }
        let nodes: std::collections::HashSet<NodeId> = p1.events().iter().map(|e| e.node).collect();
        assert_eq!(nodes.len(), 4, "distinct nodes");
    }

    #[test]
    fn perfect_links_never_drop() {
        let mut links = LinkFaults::perfect();
        assert!((0..100).all(|_| !links.drops()));
    }

    #[test]
    fn forked_links_are_stable_and_keep_rate() {
        let links = LinkFaults::lossy(0.3, DetRng::seed_from(11));
        let mut a = links.fork(7);
        let mut b = links.fork(7);
        let mut c = links.fork(8);
        let seq_a: Vec<bool> = (0..200).map(|_| a.drops()).collect();
        let seq_b: Vec<bool> = (0..200).map(|_| b.drops()).collect();
        let seq_c: Vec<bool> = (0..200).map(|_| c.drops()).collect();
        assert_eq!(seq_a, seq_b, "same label, same stream");
        assert_ne!(seq_a, seq_c, "labels are independent");
        let drops = seq_a.iter().filter(|&&d| d).count();
        assert!((20..100).contains(&drops), "rate preserved: {drops}");
    }

    #[test]
    fn lossy_links_drop_roughly_at_rate() {
        let mut links = LinkFaults::lossy(0.3, DetRng::seed_from(4));
        let drops = (0..10_000).filter(|_| links.drops()).count();
        assert!((2_500..3_500).contains(&drops), "drops = {drops}");
    }
}
