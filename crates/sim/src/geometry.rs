//! Planar geometry primitives for node placement.

/// A point in the deployment area, in meters.
#[derive(Clone, Copy, Debug, PartialEq, Default)]
pub struct Point {
    /// X coordinate (m).
    pub x: f64,
    /// Y coordinate (m).
    pub y: f64,
}

impl Point {
    /// Creates a point.
    pub const fn new(x: f64, y: f64) -> Self {
        Point { x, y }
    }

    /// Euclidean distance to `other`.
    pub fn distance(&self, other: &Point) -> f64 {
        self.distance_sq(other).sqrt()
    }

    /// Squared Euclidean distance (avoids the square root in range tests).
    pub fn distance_sq(&self, other: &Point) -> f64 {
        let dx = self.x - other.x;
        let dy = self.y - other.y;
        dx * dx + dy * dy
    }

    /// Whether `other` lies within `range` meters (inclusive).
    pub fn in_range(&self, other: &Point, range: f64) -> bool {
        self.distance_sq(other) <= range * range
    }

    /// Whether the point lies inside the square `[0, side] × [0, side]`.
    pub fn in_square(&self, side: f64) -> bool {
        (0.0..=side).contains(&self.x) && (0.0..=side).contains(&self.y)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn distance_is_euclidean() {
        let a = Point::new(0.0, 0.0);
        let b = Point::new(3.0, 4.0);
        assert!((a.distance(&b) - 5.0).abs() < 1e-12);
        assert!((a.distance_sq(&b) - 25.0).abs() < 1e-12);
    }

    #[test]
    fn in_range_is_inclusive() {
        let a = Point::new(0.0, 0.0);
        let b = Point::new(50.0, 0.0);
        assert!(a.in_range(&b, 50.0));
        assert!(!a.in_range(&b, 49.999));
    }

    #[test]
    fn in_square_checks_bounds() {
        assert!(Point::new(0.0, 0.0).in_square(10.0));
        assert!(Point::new(10.0, 10.0).in_square(10.0));
        assert!(!Point::new(10.1, 5.0).in_square(10.0));
        assert!(!Point::new(-0.1, 5.0).in_square(10.0));
    }
}
