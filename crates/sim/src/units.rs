//! Bit/byte units for the overhead model.
//!
//! The paper specifies every field size in bits (`f_H = f_s = 256`,
//! `f_v = f_t = f_n = 32`) and reports storage in MB and communication in
//! Mb. [`Bits`] keeps those conversions explicit so the accounting code can
//! never silently mix units.

use std::fmt;
use std::iter::Sum;
use std::ops::{Add, AddAssign, Mul, Sub};

/// A quantity of information, stored in bits.
///
/// # Example
///
/// ```
/// use tldag_sim::Bits;
///
/// let header = Bits::from_bits(608) + Bits::from_bytes(32);
/// assert_eq!(header.bits(), 608 + 256);
/// assert!((Bits::from_megabytes_f(0.5).as_megabytes() - 0.5).abs() < 1e-12);
/// ```
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct Bits(u64);

impl Bits {
    /// Zero bits.
    pub const ZERO: Bits = Bits(0);

    /// Constructs from a bit count.
    pub const fn from_bits(bits: u64) -> Self {
        Bits(bits)
    }

    /// Constructs from a byte count.
    pub const fn from_bytes(bytes: u64) -> Self {
        Bits(bytes * 8)
    }

    /// Constructs from kilobytes (10³ bytes, as in the paper's plots).
    pub const fn from_kilobytes(kb: u64) -> Self {
        Bits(kb * 8_000)
    }

    /// Constructs from megabytes (10⁶ bytes).
    pub const fn from_megabytes(mb: u64) -> Self {
        Bits(mb * 8_000_000)
    }

    /// Constructs from a fractional megabyte count (e.g. the paper's
    /// `C = 0.1 MB`). Rounds to the nearest bit.
    pub fn from_megabytes_f(mb: f64) -> Self {
        Bits((mb * 8_000_000.0).round() as u64)
    }

    /// Raw bit count.
    pub const fn bits(self) -> u64 {
        self.0
    }

    /// Bytes, rounding up partial bytes.
    pub const fn bytes_ceil(self) -> u64 {
        self.0.div_ceil(8)
    }

    /// Value in megabytes (10⁶ bytes), as used for storage plots.
    pub fn as_megabytes(self) -> f64 {
        self.0 as f64 / 8_000_000.0
    }

    /// Value in megabits (10⁶ bits), as used for communication plots.
    pub fn as_megabits(self) -> f64 {
        self.0 as f64 / 1_000_000.0
    }

    /// Saturating subtraction.
    #[must_use]
    pub fn saturating_sub(self, rhs: Bits) -> Bits {
        Bits(self.0.saturating_sub(rhs.0))
    }
}

impl Add for Bits {
    type Output = Bits;
    fn add(self, rhs: Bits) -> Bits {
        Bits(self.0 + rhs.0)
    }
}

impl AddAssign for Bits {
    fn add_assign(&mut self, rhs: Bits) {
        self.0 += rhs.0;
    }
}

impl Sub for Bits {
    type Output = Bits;
    fn sub(self, rhs: Bits) -> Bits {
        Bits(self.0 - rhs.0)
    }
}

impl Mul<u64> for Bits {
    type Output = Bits;
    fn mul(self, rhs: u64) -> Bits {
        Bits(self.0 * rhs)
    }
}

impl Sum for Bits {
    fn sum<I: Iterator<Item = Bits>>(iter: I) -> Bits {
        Bits(iter.map(|b| b.0).sum())
    }
}

impl fmt::Debug for Bits {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "Bits({})", self.0)
    }
}

impl fmt::Display for Bits {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.0 >= 8_000_000 {
            write!(f, "{:.3} MB", self.as_megabytes())
        } else if self.0 >= 8_000 {
            write!(f, "{:.3} kB", self.0 as f64 / 8_000.0)
        } else {
            write!(f, "{} b", self.0)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn conversions_agree() {
        assert_eq!(Bits::from_bytes(1).bits(), 8);
        assert_eq!(Bits::from_kilobytes(1).bits(), 8_000);
        assert_eq!(Bits::from_megabytes(1).bits(), 8_000_000);
        assert_eq!(Bits::from_megabytes_f(0.5), Bits::from_bits(4_000_000));
    }

    #[test]
    fn arithmetic() {
        let a = Bits::from_bits(100);
        let b = Bits::from_bits(28);
        assert_eq!((a + b).bits(), 128);
        assert_eq!((a - b).bits(), 72);
        assert_eq!((a * 3).bits(), 300);
        assert_eq!(a.saturating_sub(Bits::from_bits(1000)), Bits::ZERO);
        let total: Bits = [a, b].into_iter().sum();
        assert_eq!(total.bits(), 128);
    }

    #[test]
    fn bytes_ceil_rounds_up() {
        assert_eq!(Bits::from_bits(1).bytes_ceil(), 1);
        assert_eq!(Bits::from_bits(8).bytes_ceil(), 1);
        assert_eq!(Bits::from_bits(9).bytes_ceil(), 2);
    }

    #[test]
    fn display_scales_units() {
        assert_eq!(Bits::from_bits(12).to_string(), "12 b");
        assert_eq!(Bits::from_megabytes(2).to_string(), "2.000 MB");
    }
}
