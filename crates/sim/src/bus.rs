//! Byte-accounted message bus.
//!
//! Fig. 8 of the paper reports *per-node communication overhead* split into
//! "DAG construction" (digest broadcasts) and "consensus" (PoP header
//! retrieval), while the PBFT and IOTA baselines report their own traffic.
//! The bus therefore meters every send at both endpoints, tagged with a
//! [`TrafficClass`], and exposes per-node/per-class totals for the plots.
//!
//! Delivery semantics are synchronous within a slot: the simulator is a
//! single-threaded discrete-time model, so `send` immediately enqueues to the
//! destination's inbox and accounting happens at send time. Request/response
//! exchanges (PoP) are accounted directly by the caller through
//! [`MessageBus::accounting_mut`].

use crate::topology::NodeId;
use crate::units::Bits;
use std::collections::VecDeque;

/// Category of traffic, used to split Fig. 8's panels.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub enum TrafficClass {
    /// Digest broadcast during block generation (2LDAG "DAG construction").
    DagConstruction,
    /// PoP `REQ_CHILD` / `RPY_CHILD` / block retrieval ("consensus").
    Consensus,
    /// PBFT pre-prepare/prepare/commit/view-change traffic.
    Pbft,
    /// IOTA transaction gossip.
    IotaGossip,
    /// Anything else (tests, control messages).
    Other,
}

impl TrafficClass {
    /// All classes, for iteration in reports.
    pub const ALL: [TrafficClass; 5] = [
        TrafficClass::DagConstruction,
        TrafficClass::Consensus,
        TrafficClass::Pbft,
        TrafficClass::IotaGossip,
        TrafficClass::Other,
    ];

    fn index(self) -> usize {
        match self {
            TrafficClass::DagConstruction => 0,
            TrafficClass::Consensus => 1,
            TrafficClass::Pbft => 2,
            TrafficClass::IotaGossip => 3,
            TrafficClass::Other => 4,
        }
    }
}

/// Per-node, per-class transmit/receive accounting.
#[derive(Clone, Debug)]
pub struct Accounting {
    tx: Vec<[Bits; 5]>,
    rx: Vec<[Bits; 5]>,
}

impl Accounting {
    /// Creates accounting for `nodes` nodes, all counters zero.
    pub fn new(nodes: usize) -> Self {
        Accounting {
            tx: vec![[Bits::ZERO; 5]; nodes],
            rx: vec![[Bits::ZERO; 5]; nodes],
        }
    }

    /// Number of nodes tracked.
    pub fn len(&self) -> usize {
        self.tx.len()
    }

    /// True if no nodes are tracked.
    pub fn is_empty(&self) -> bool {
        self.tx.is_empty()
    }

    /// Records `size` transmitted by `from` and received by `to`.
    pub fn record(&mut self, from: NodeId, to: NodeId, class: TrafficClass, size: Bits) {
        self.tx[from.index()][class.index()] += size;
        self.rx[to.index()][class.index()] += size;
    }

    /// Records a transmission with no modelled receiver (e.g. a broadcast
    /// stub in tests).
    pub fn record_tx_only(&mut self, from: NodeId, class: TrafficClass, size: Bits) {
        self.tx[from.index()][class.index()] += size;
    }

    /// Records a reception with no modelled sender. Together with
    /// [`Self::record_tx_only`] this lets all-to-all protocol phases (PBFT
    /// votes) be accounted in `O(n)` aggregate operations instead of `O(n²)`
    /// per-pair records; the totals are identical.
    pub fn record_rx_only(&mut self, to: NodeId, class: TrafficClass, size: Bits) {
        self.rx[to.index()][class.index()] += size;
    }

    /// Bits transmitted by `node` in `class`.
    pub fn tx(&self, node: NodeId, class: TrafficClass) -> Bits {
        self.tx[node.index()][class.index()]
    }

    /// Bits received by `node` in `class`.
    pub fn rx(&self, node: NodeId, class: TrafficClass) -> Bits {
        self.rx[node.index()][class.index()]
    }

    /// Total (tx + rx) for `node` in `class` — the paper's "communication
    /// overhead" counts both emitted and received messages (Prop. 4).
    pub fn node_total(&self, node: NodeId, class: TrafficClass) -> Bits {
        self.tx(node, class) + self.rx(node, class)
    }

    /// Total (tx + rx) for `node` across all classes.
    pub fn node_total_all(&self, node: NodeId) -> Bits {
        TrafficClass::ALL
            .iter()
            .map(|&c| self.node_total(node, c))
            .sum()
    }

    /// Sum of per-node totals in `class` across the network.
    pub fn network_total(&self, class: TrafficClass) -> Bits {
        (0..self.len() as u32)
            .map(|i| self.node_total(NodeId(i), class))
            .sum()
    }

    /// Mean per-node total (tx + rx) in `class`.
    pub fn mean_node_total(&self, class: TrafficClass) -> Bits {
        if self.is_empty() {
            return Bits::ZERO;
        }
        Bits::from_bits(self.network_total(class).bits() / self.len() as u64)
    }

    /// Per-node totals across all classes, for CDF plots (Fig. 8(d)).
    pub fn per_node_totals(&self) -> Vec<Bits> {
        (0..self.len() as u32)
            .map(|i| self.node_total_all(NodeId(i)))
            .collect()
    }

    /// Bits transmitted by `node` across all classes. The paper defines
    /// communication overhead as "the total amount of data a node transmits",
    /// so the Fig. 8 series are tx-based.
    pub fn node_tx_all(&self, node: NodeId) -> Bits {
        TrafficClass::ALL.iter().map(|&c| self.tx(node, c)).sum()
    }

    /// Sum of transmitted bits in `class` across the network.
    pub fn network_tx(&self, class: TrafficClass) -> Bits {
        (0..self.len() as u32)
            .map(|i| self.tx(NodeId(i), class))
            .sum()
    }

    /// Mean per-node transmitted bits in `class`.
    pub fn mean_node_tx(&self, class: TrafficClass) -> Bits {
        if self.is_empty() {
            return Bits::ZERO;
        }
        Bits::from_bits(self.network_tx(class).bits() / self.len() as u64)
    }

    /// Per-node transmitted bits across the given classes, for CDFs.
    pub fn per_node_tx(&self, classes: &[TrafficClass]) -> Vec<Bits> {
        (0..self.len() as u32)
            .map(|i| classes.iter().map(|&c| self.tx(NodeId(i), c)).sum())
            .collect()
    }

    /// Extends the accounting with one more (zeroed) node slot. Supports
    /// dynamic membership.
    pub fn grow(&mut self) {
        self.tx.push([Bits::ZERO; 5]);
        self.rx.push([Bits::ZERO; 5]);
    }

    /// Merges another accounting (same node count) into this one.
    ///
    /// # Panics
    ///
    /// Panics if the node counts differ.
    pub fn merge(&mut self, other: &Accounting) {
        assert_eq!(self.len(), other.len(), "accounting size mismatch");
        for i in 0..self.tx.len() {
            for c in 0..5 {
                self.tx[i][c] += other.tx[i][c];
                self.rx[i][c] += other.rx[i][c];
            }
        }
    }
}

/// An in-flight message.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Envelope<M> {
    /// Sender.
    pub from: NodeId,
    /// Destination.
    pub to: NodeId,
    /// Traffic category for accounting.
    pub class: TrafficClass,
    /// Logical size on the wire.
    pub size: Bits,
    /// Payload.
    pub message: M,
}

/// A synchronous, accounted message bus between simulated nodes.
///
/// # Example
///
/// ```
/// use tldag_sim::bus::{MessageBus, TrafficClass};
/// use tldag_sim::{Bits, NodeId};
///
/// let mut bus: MessageBus<&'static str> = MessageBus::new(2);
/// bus.send(NodeId(0), NodeId(1), TrafficClass::Other, Bits::from_bytes(4), "ping");
/// let msg = bus.pop_inbox(NodeId(1)).unwrap();
/// assert_eq!(msg.message, "ping");
/// assert_eq!(bus.accounting().tx(NodeId(0), TrafficClass::Other).bits(), 32);
/// ```
#[derive(Clone, Debug)]
pub struct MessageBus<M> {
    inboxes: Vec<VecDeque<Envelope<M>>>,
    accounting: Accounting,
    messages_sent: u64,
}

impl<M> MessageBus<M> {
    /// Creates a bus connecting `nodes` nodes.
    pub fn new(nodes: usize) -> Self {
        MessageBus {
            inboxes: (0..nodes).map(|_| VecDeque::new()).collect(),
            accounting: Accounting::new(nodes),
            messages_sent: 0,
        }
    }

    /// Sends a message, recording its size at both endpoints.
    ///
    /// # Panics
    ///
    /// Panics if either node id is out of bounds.
    pub fn send(&mut self, from: NodeId, to: NodeId, class: TrafficClass, size: Bits, message: M) {
        self.accounting.record(from, to, class, size);
        self.messages_sent += 1;
        self.inboxes[to.index()].push_back(Envelope {
            from,
            to,
            class,
            size,
            message,
        });
    }

    /// Pops the oldest message from `node`'s inbox.
    pub fn pop_inbox(&mut self, node: NodeId) -> Option<Envelope<M>> {
        self.inboxes[node.index()].pop_front()
    }

    /// Drains all pending messages for `node`.
    pub fn drain_inbox(&mut self, node: NodeId) -> Vec<Envelope<M>> {
        self.inboxes[node.index()].drain(..).collect()
    }

    /// Number of undelivered messages for `node`.
    pub fn inbox_len(&self, node: NodeId) -> usize {
        self.inboxes[node.index()].len()
    }

    /// Total messages ever sent through the bus.
    pub fn messages_sent(&self) -> u64 {
        self.messages_sent
    }

    /// Read-only accounting view.
    pub fn accounting(&self) -> &Accounting {
        &self.accounting
    }

    /// Mutable accounting, for callers that account request/response pairs
    /// directly (synchronous exchanges that never sit in an inbox).
    pub fn accounting_mut(&mut self) -> &mut Accounting {
        &mut self.accounting
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn send_and_receive() {
        let mut bus: MessageBus<u32> = MessageBus::new(3);
        bus.send(
            NodeId(0),
            NodeId(2),
            TrafficClass::Other,
            Bits::from_bits(10),
            42,
        );
        assert_eq!(bus.inbox_len(NodeId(2)), 1);
        let env = bus.pop_inbox(NodeId(2)).unwrap();
        assert_eq!(env.message, 42);
        assert_eq!(env.from, NodeId(0));
        assert!(bus.pop_inbox(NodeId(2)).is_none());
    }

    #[test]
    fn accounting_records_both_endpoints() {
        let mut bus: MessageBus<()> = MessageBus::new(2);
        bus.send(
            NodeId(0),
            NodeId(1),
            TrafficClass::Consensus,
            Bits::from_bits(100),
            (),
        );
        let acc = bus.accounting();
        assert_eq!(acc.tx(NodeId(0), TrafficClass::Consensus).bits(), 100);
        assert_eq!(acc.rx(NodeId(1), TrafficClass::Consensus).bits(), 100);
        assert_eq!(acc.rx(NodeId(0), TrafficClass::Consensus).bits(), 0);
        assert_eq!(
            acc.node_total(NodeId(0), TrafficClass::Consensus).bits(),
            100
        );
        assert_eq!(acc.network_total(TrafficClass::Consensus).bits(), 200);
    }

    #[test]
    fn classes_are_separate() {
        let mut acc = Accounting::new(1);
        acc.record_tx_only(NodeId(0), TrafficClass::DagConstruction, Bits::from_bits(5));
        acc.record_tx_only(NodeId(0), TrafficClass::Pbft, Bits::from_bits(7));
        assert_eq!(acc.tx(NodeId(0), TrafficClass::DagConstruction).bits(), 5);
        assert_eq!(acc.tx(NodeId(0), TrafficClass::Pbft).bits(), 7);
        assert_eq!(acc.node_total_all(NodeId(0)).bits(), 12);
    }

    #[test]
    fn merge_adds_counters() {
        let mut a = Accounting::new(2);
        let mut b = Accounting::new(2);
        a.record(
            NodeId(0),
            NodeId(1),
            TrafficClass::Other,
            Bits::from_bits(3),
        );
        b.record(
            NodeId(0),
            NodeId(1),
            TrafficClass::Other,
            Bits::from_bits(4),
        );
        a.merge(&b);
        assert_eq!(a.tx(NodeId(0), TrafficClass::Other).bits(), 7);
        assert_eq!(a.rx(NodeId(1), TrafficClass::Other).bits(), 7);
    }

    #[test]
    #[should_panic(expected = "size mismatch")]
    fn merge_size_mismatch_panics() {
        let mut a = Accounting::new(2);
        let b = Accounting::new(3);
        a.merge(&b);
    }

    #[test]
    fn drain_preserves_order() {
        let mut bus: MessageBus<u32> = MessageBus::new(2);
        for i in 0..5 {
            bus.send(NodeId(0), NodeId(1), TrafficClass::Other, Bits::ZERO, i);
        }
        let drained: Vec<u32> = bus
            .drain_inbox(NodeId(1))
            .into_iter()
            .map(|e| e.message)
            .collect();
        assert_eq!(drained, vec![0, 1, 2, 3, 4]);
        assert_eq!(bus.inbox_len(NodeId(1)), 0);
    }

    #[test]
    fn mean_node_total() {
        let mut acc = Accounting::new(2);
        acc.record(
            NodeId(0),
            NodeId(1),
            TrafficClass::Other,
            Bits::from_bits(100),
        );
        // node0 tx 100, node1 rx 100 → each node total 100, mean 100.
        assert_eq!(acc.mean_node_total(TrafficClass::Other).bits(), 100);
    }
}
