//! Lightweight event tracing for simulation debugging.
//!
//! A [`Trace`] collects timestamped, categorised events in memory. It is off
//! by default (`Trace::disabled()` drops everything at zero cost beyond a
//! branch), can be bounded to the last `N` events, and renders a readable
//! transcript. Protocol code takes `&mut Trace` so tests can capture runs
//! without a global logger.
//!
//! The event model is shared with the wire runtime's journal
//! (`tldag_obs::journal`): [`TraceKind`] *is* [`tldag_obs::EventKind`] and
//! [`TraceEvent`] *is* [`tldag_obs::JournalEvent`], so a simulator trace
//! and a deployed node's `/journal` dump render and serialize identically
//! ([`Trace::to_jsonl`]). The simulator has no wall clock, so its events
//! carry `ts_ms = 0`.

use crate::engine::Slot;
use tldag_obs::journal::{events_jsonl, render_events};

pub use tldag_obs::journal::{EventKind as TraceKind, JournalEvent as TraceEvent};

/// An in-memory event trace.
///
/// # Example
///
/// ```
/// use tldag_sim::trace::{Trace, TraceKind};
///
/// let mut trace = Trace::bounded(2);
/// trace.record(0, TraceKind::Generate, "n0 generated b0");
/// trace.record(1, TraceKind::Pop, "n1 verified n0#0");
/// trace.record(2, TraceKind::Pop, "n2 verified n0#0");
/// assert_eq!(trace.len(), 2, "bounded to the most recent events");
/// assert!(trace.render().contains("n2 verified"));
/// ```
#[derive(Clone, Debug)]
pub struct Trace {
    enabled: bool,
    capacity: usize,
    events: std::collections::VecDeque<TraceEvent>,
    next_seq: u64,
    dropped: u64,
}

impl Trace {
    /// A trace that records everything (unbounded).
    pub fn enabled() -> Self {
        Trace {
            enabled: true,
            capacity: usize::MAX,
            events: Default::default(),
            next_seq: 0,
            dropped: 0,
        }
    }

    /// A trace that keeps only the most recent `capacity` events.
    pub fn bounded(capacity: usize) -> Self {
        Trace {
            enabled: true,
            capacity,
            events: Default::default(),
            next_seq: 0,
            dropped: 0,
        }
    }

    /// A trace that drops everything.
    pub fn disabled() -> Self {
        Trace {
            enabled: false,
            capacity: 0,
            events: Default::default(),
            next_seq: 0,
            dropped: 0,
        }
    }

    /// Whether events are being recorded.
    pub fn is_enabled(&self) -> bool {
        self.enabled
    }

    /// Records an event (no-op when disabled).
    pub fn record(&mut self, slot: Slot, kind: TraceKind, message: impl Into<String>) {
        if !self.enabled {
            return;
        }
        if self.events.len() >= self.capacity {
            self.events.pop_front();
            self.dropped += 1;
        }
        let seq = self.next_seq;
        self.next_seq += 1;
        self.events.push_back(TraceEvent {
            seq,
            ts_ms: 0,
            slot,
            kind,
            message: message.into(),
        });
    }

    /// Number of retained events.
    pub fn len(&self) -> usize {
        self.events.len()
    }

    /// True if nothing is retained.
    pub fn is_empty(&self) -> bool {
        self.events.is_empty()
    }

    /// Events evicted by the capacity bound.
    pub fn dropped(&self) -> u64 {
        self.dropped
    }

    /// Retained events in arrival order.
    pub fn events(&self) -> impl Iterator<Item = &TraceEvent> {
        self.events.iter()
    }

    /// Events of one category.
    pub fn of_kind(&self, kind: TraceKind) -> Vec<&TraceEvent> {
        self.events.iter().filter(|e| e.kind == kind).collect()
    }

    /// Renders a readable transcript.
    pub fn render(&self) -> String {
        render_events(self.events.iter(), self.dropped)
    }

    /// The retained events as JSONL — the same schema as a deployed node's
    /// `/journal` endpoint.
    pub fn to_jsonl(&self) -> String {
        events_jsonl(self.events.iter())
    }
}

impl Default for Trace {
    fn default() -> Self {
        Self::disabled()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn disabled_records_nothing() {
        let mut t = Trace::disabled();
        t.record(0, TraceKind::Other, "ignored");
        assert!(t.is_empty());
        assert!(!t.is_enabled());
    }

    #[test]
    fn enabled_keeps_everything_in_order() {
        let mut t = Trace::enabled();
        for i in 0..5 {
            t.record(i, TraceKind::Generate, format!("event {i}"));
        }
        assert_eq!(t.len(), 5);
        let slots: Vec<u64> = t.events().map(|e| e.slot).collect();
        assert_eq!(slots, vec![0, 1, 2, 3, 4]);
    }

    #[test]
    fn bounded_evicts_oldest() {
        let mut t = Trace::bounded(3);
        for i in 0..10 {
            t.record(i, TraceKind::Pop, format!("e{i}"));
        }
        assert_eq!(t.len(), 3);
        assert_eq!(t.dropped(), 7);
        assert_eq!(t.events().next().unwrap().slot, 7);
        assert!(t.render().contains("7 earlier events dropped"));
    }

    #[test]
    fn kind_filter() {
        let mut t = Trace::enabled();
        t.record(0, TraceKind::Generate, "g");
        t.record(0, TraceKind::Pop, "p1");
        t.record(1, TraceKind::Pop, "p2");
        assert_eq!(t.of_kind(TraceKind::Pop).len(), 2);
        assert_eq!(t.of_kind(TraceKind::Penalty).len(), 0);
    }

    #[test]
    fn render_format() {
        let mut t = Trace::enabled();
        t.record(12, TraceKind::Membership, "n9 joined");
        let rendered = t.render();
        assert!(rendered.contains("[   12] mem n9 joined"));
    }

    #[test]
    fn jsonl_matches_journal_schema() {
        let mut t = Trace::enabled();
        t.record(4, TraceKind::Generate, "n0 generated b4");
        let jsonl = t.to_jsonl();
        assert_eq!(
            jsonl,
            "{\"seq\":0,\"ts_ms\":0,\"slot\":4,\"kind\":\"gen\",\"msg\":\"n0 generated b4\"}\n"
        );
    }
}
