//! Lightweight event tracing for simulation debugging.
//!
//! A [`Trace`] collects timestamped, categorised events in memory. It is off
//! by default (`Trace::disabled()` drops everything at zero cost beyond a
//! branch), can be bounded to the last `N` events, and renders a readable
//! transcript. Protocol code takes `&mut Trace` so tests can capture runs
//! without a global logger.

use crate::engine::Slot;
use std::fmt;

/// Category of a traced event.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub enum TraceKind {
    /// Block generated.
    Generate,
    /// Digest transmitted/received.
    Digest,
    /// PoP request/response activity.
    Pop,
    /// Blacklist/ban activity.
    Penalty,
    /// Membership change (join/leave).
    Membership,
    /// Anything else.
    Other,
}

impl fmt::Display for TraceKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = match self {
            TraceKind::Generate => "gen",
            TraceKind::Digest => "dig",
            TraceKind::Pop => "pop",
            TraceKind::Penalty => "pen",
            TraceKind::Membership => "mem",
            TraceKind::Other => "oth",
        };
        f.write_str(s)
    }
}

/// One traced event.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct TraceEvent {
    /// Slot at which the event occurred.
    pub slot: Slot,
    /// Category.
    pub kind: TraceKind,
    /// Human-readable description.
    pub message: String,
}

/// An in-memory event trace.
///
/// # Example
///
/// ```
/// use tldag_sim::trace::{Trace, TraceKind};
///
/// let mut trace = Trace::bounded(2);
/// trace.record(0, TraceKind::Generate, "n0 generated b0");
/// trace.record(1, TraceKind::Pop, "n1 verified n0#0");
/// trace.record(2, TraceKind::Pop, "n2 verified n0#0");
/// assert_eq!(trace.len(), 2, "bounded to the most recent events");
/// assert!(trace.render().contains("n2 verified"));
/// ```
#[derive(Clone, Debug)]
pub struct Trace {
    enabled: bool,
    capacity: usize,
    events: std::collections::VecDeque<TraceEvent>,
    dropped: u64,
}

impl Trace {
    /// A trace that records everything (unbounded).
    pub fn enabled() -> Self {
        Trace {
            enabled: true,
            capacity: usize::MAX,
            events: Default::default(),
            dropped: 0,
        }
    }

    /// A trace that keeps only the most recent `capacity` events.
    pub fn bounded(capacity: usize) -> Self {
        Trace {
            enabled: true,
            capacity,
            events: Default::default(),
            dropped: 0,
        }
    }

    /// A trace that drops everything.
    pub fn disabled() -> Self {
        Trace {
            enabled: false,
            capacity: 0,
            events: Default::default(),
            dropped: 0,
        }
    }

    /// Whether events are being recorded.
    pub fn is_enabled(&self) -> bool {
        self.enabled
    }

    /// Records an event (no-op when disabled).
    pub fn record(&mut self, slot: Slot, kind: TraceKind, message: impl Into<String>) {
        if !self.enabled {
            return;
        }
        if self.events.len() >= self.capacity {
            self.events.pop_front();
            self.dropped += 1;
        }
        self.events.push_back(TraceEvent {
            slot,
            kind,
            message: message.into(),
        });
    }

    /// Number of retained events.
    pub fn len(&self) -> usize {
        self.events.len()
    }

    /// True if nothing is retained.
    pub fn is_empty(&self) -> bool {
        self.events.is_empty()
    }

    /// Events evicted by the capacity bound.
    pub fn dropped(&self) -> u64 {
        self.dropped
    }

    /// Retained events in arrival order.
    pub fn events(&self) -> impl Iterator<Item = &TraceEvent> {
        self.events.iter()
    }

    /// Events of one category.
    pub fn of_kind(&self, kind: TraceKind) -> Vec<&TraceEvent> {
        self.events.iter().filter(|e| e.kind == kind).collect()
    }

    /// Renders a readable transcript.
    pub fn render(&self) -> String {
        use std::fmt::Write as _;
        let mut out = String::new();
        if self.dropped > 0 {
            let _ = writeln!(out, "… {} earlier events dropped …", self.dropped);
        }
        for e in &self.events {
            let _ = writeln!(out, "[{:>5}] {} {}", e.slot, e.kind, e.message);
        }
        out
    }
}

impl Default for Trace {
    fn default() -> Self {
        Self::disabled()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn disabled_records_nothing() {
        let mut t = Trace::disabled();
        t.record(0, TraceKind::Other, "ignored");
        assert!(t.is_empty());
        assert!(!t.is_enabled());
    }

    #[test]
    fn enabled_keeps_everything_in_order() {
        let mut t = Trace::enabled();
        for i in 0..5 {
            t.record(i, TraceKind::Generate, format!("event {i}"));
        }
        assert_eq!(t.len(), 5);
        let slots: Vec<u64> = t.events().map(|e| e.slot).collect();
        assert_eq!(slots, vec![0, 1, 2, 3, 4]);
    }

    #[test]
    fn bounded_evicts_oldest() {
        let mut t = Trace::bounded(3);
        for i in 0..10 {
            t.record(i, TraceKind::Pop, format!("e{i}"));
        }
        assert_eq!(t.len(), 3);
        assert_eq!(t.dropped(), 7);
        assert_eq!(t.events().next().unwrap().slot, 7);
        assert!(t.render().contains("7 earlier events dropped"));
    }

    #[test]
    fn kind_filter() {
        let mut t = Trace::enabled();
        t.record(0, TraceKind::Generate, "g");
        t.record(0, TraceKind::Pop, "p1");
        t.record(1, TraceKind::Pop, "p2");
        assert_eq!(t.of_kind(TraceKind::Pop).len(), 2);
        assert_eq!(t.of_kind(TraceKind::Penalty).len(), 0);
    }

    #[test]
    fn render_format() {
        let mut t = Trace::enabled();
        t.record(12, TraceKind::Membership, "n9 joined");
        let rendered = t.render();
        assert!(rendered.contains("[   12] mem n9 joined"));
    }
}
