//! Time-slot bookkeeping and block-generation schedules.
//!
//! The paper divides time into slots; "each node generates at most one block
//! in each time slot" (Sec. VI), and for the consensus experiments "each node
//! has a random block generation rate of one block per {1, 2} time slots"
//! (Fig. 9 caption). [`GenerationSchedule`] captures both workloads.

use crate::rng::DetRng;
use crate::topology::NodeId;

/// A discrete time slot (0-based).
pub type Slot = u64;

/// Shard-parallel execution policy for a slotted simulation loop.
///
/// The engine partitions nodes into `threads` contiguous shards and runs
/// each slot phase shard-parallel, with a deterministic cross-shard message
/// exchange between phases. Results are **identical for every thread count**
/// given the same seed: all per-node randomness is derived from
/// `(seed, slot, node)` rather than drawn from one shared stream, and
/// per-shard results are merged in shard (= node id) order.
///
/// # Example
///
/// ```
/// use tldag_sim::engine::Sharding;
///
/// let sharding = Sharding::threads(4);
/// let ranges = sharding.chunk_ranges(10);
/// assert_eq!(ranges, vec![0..3, 3..6, 6..8, 8..10]);
/// // Chunks cover every node exactly once, in order.
/// assert_eq!(ranges.iter().map(|r| r.len()).sum::<usize>(), 10);
/// ```
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct Sharding {
    /// Number of worker threads (= shards). `1` runs the loop inline.
    pub threads: usize,
}

impl Default for Sharding {
    fn default() -> Self {
        Sharding::single()
    }
}

impl Sharding {
    /// Single-threaded execution (the seed behaviour).
    pub fn single() -> Self {
        Sharding { threads: 1 }
    }

    /// Shard the loop across `threads` workers.
    ///
    /// # Panics
    ///
    /// Panics if `threads == 0`.
    pub fn threads(threads: usize) -> Self {
        assert!(threads > 0, "sharding needs at least one thread");
        Sharding { threads }
    }

    /// The shard (chunk index) that `index` falls into when `0..n` is split
    /// by [`Sharding::chunk_ranges`], in O(1). Indices at or beyond `n`
    /// (e.g. nodes that joined after sizing) land in the last shard.
    /// Storage factories use this to give each worker thread its own shard
    /// log — appends then never cross a shard boundary, so the log mutexes
    /// stay uncontended.
    pub fn shard_of(&self, n: usize, index: usize) -> usize {
        if n == 0 {
            return 0;
        }
        let shards = self.threads.min(n).max(1);
        let base = n / shards;
        let extra = n % shards;
        // The first `extra` chunks hold `base + 1` items.
        let boundary = extra * (base + 1);
        if index >= n {
            shards - 1
        } else if index < boundary {
            index / (base + 1)
        } else {
            extra + (index - boundary) / base
        }
    }

    /// Splits `0..n` into at most `threads` contiguous, near-equal, non-empty
    /// ranges (fewer when `n < threads`). Concatenating the ranges in order
    /// visits every index exactly once in ascending order, which is what
    /// keeps shard-merge order equal to node-id order.
    pub fn chunk_ranges(&self, n: usize) -> Vec<std::ops::Range<usize>> {
        if n == 0 {
            return Vec::new();
        }
        let shards = self.threads.min(n).max(1);
        let base = n / shards;
        let extra = n % shards;
        let mut ranges = Vec::with_capacity(shards);
        let mut start = 0;
        for s in 0..shards {
            let len = base + usize::from(s < extra);
            ranges.push(start..start + len);
            start += len;
        }
        ranges
    }
}

/// Simple slot counter with a horizon.
///
/// # Example
///
/// ```
/// use tldag_sim::engine::SlotClock;
///
/// let mut clock = SlotClock::new(3);
/// let seen: Vec<u64> = std::iter::from_fn(|| clock.tick()).collect();
/// assert_eq!(seen, vec![0, 1, 2]);
/// ```
#[derive(Clone, Debug)]
pub struct SlotClock {
    next: Slot,
    horizon: Slot,
}

impl SlotClock {
    /// Creates a clock that yields slots `0..horizon`.
    pub fn new(horizon: Slot) -> Self {
        SlotClock { next: 0, horizon }
    }

    /// Returns the next slot, or `None` once the horizon is reached.
    pub fn tick(&mut self) -> Option<Slot> {
        if self.next >= self.horizon {
            return None;
        }
        let s = self.next;
        self.next += 1;
        Some(s)
    }

    /// The current (next unticked) slot.
    pub fn current(&self) -> Slot {
        self.next
    }

    /// Total number of slots this clock will yield.
    pub fn horizon(&self) -> Slot {
        self.horizon
    }
}

/// Per-node block-generation periods, in slots per block.
///
/// A node with period `p` generates a block in every slot `s` with
/// `s % p == phase`. The paper's storage experiments use `p = 1` for all
/// nodes; the consensus experiments draw `p` uniformly from `{1, 2}`.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct GenerationSchedule {
    periods: Vec<u64>,
    phases: Vec<u64>,
}

impl GenerationSchedule {
    /// Every node generates one block per slot (Figs. 7–8 workload).
    pub fn uniform(nodes: usize) -> Self {
        GenerationSchedule {
            periods: vec![1; nodes],
            phases: vec![0; nodes],
        }
    }

    /// Every node gets a fixed period drawn uniformly from `periods_choices`
    /// with a random phase (Fig. 9 workload uses `&[1, 2]`).
    ///
    /// # Panics
    ///
    /// Panics if `periods_choices` is empty or contains zero.
    pub fn random_periods(nodes: usize, periods_choices: &[u64], rng: &mut DetRng) -> Self {
        assert!(!periods_choices.is_empty(), "need at least one period");
        assert!(
            periods_choices.iter().all(|&p| p > 0),
            "periods must be positive"
        );
        let periods: Vec<u64> = (0..nodes)
            .map(|_| *rng.choose(periods_choices).expect("non-empty"))
            .collect();
        let phases = periods.iter().map(|&p| rng.next_below(p)).collect();
        GenerationSchedule { periods, phases }
    }

    /// Explicit per-node periods (phase 0), for targeted tests such as the
    /// micro-loop example of Fig. 6.
    ///
    /// # Panics
    ///
    /// Panics if any period is zero.
    pub fn from_periods(periods: Vec<u64>) -> Self {
        assert!(periods.iter().all(|&p| p > 0), "periods must be positive");
        let phases = vec![0; periods.len()];
        GenerationSchedule { periods, phases }
    }

    /// Number of nodes covered.
    pub fn len(&self) -> usize {
        self.periods.len()
    }

    /// True if the schedule covers no nodes.
    pub fn is_empty(&self) -> bool {
        self.periods.is_empty()
    }

    /// Whether `node` generates a block in `slot`.
    pub fn generates(&self, node: NodeId, slot: Slot) -> bool {
        let p = self.periods[node.index()];
        slot % p == self.phases[node.index()]
    }

    /// The node's period in slots per block.
    pub fn period(&self, node: NodeId) -> u64 {
        self.periods[node.index()]
    }

    /// Blocks node will have generated during slots `0..=slot` (inclusive),
    /// i.e. the count of generation slots so far.
    pub fn blocks_by(&self, node: NodeId, slot: Slot) -> u64 {
        let p = self.periods[node.index()];
        let phase = self.phases[node.index()];
        // Count s in [0, slot] with s % p == phase.
        if slot < phase {
            0
        } else {
            (slot - phase) / p + 1
        }
    }

    /// Generation rate in blocks per slot (`1/p`).
    pub fn rate(&self, node: NodeId) -> f64 {
        1.0 / self.periods[node.index()] as f64
    }

    /// Extends the schedule with one more node generating every `period`
    /// slots starting at `phase`. Supports dynamic membership.
    ///
    /// # Panics
    ///
    /// Panics if `period == 0`.
    pub fn push(&mut self, period: u64, phase: u64) {
        assert!(period > 0, "periods must be positive");
        self.periods.push(period);
        self.phases.push(phase % period);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn clock_yields_horizon_slots() {
        let mut clock = SlotClock::new(5);
        let mut n = 0;
        while clock.tick().is_some() {
            n += 1;
        }
        assert_eq!(n, 5);
        assert!(clock.tick().is_none());
        assert_eq!(clock.current(), 5);
    }

    #[test]
    fn uniform_schedule_generates_every_slot() {
        let sched = GenerationSchedule::uniform(3);
        for slot in 0..10 {
            for node in 0..3u32 {
                assert!(sched.generates(NodeId(node), slot));
            }
        }
        assert_eq!(sched.blocks_by(NodeId(0), 9), 10);
    }

    #[test]
    fn period_two_generates_every_other_slot() {
        let sched = GenerationSchedule::from_periods(vec![2]);
        let slots: Vec<bool> = (0..6).map(|s| sched.generates(NodeId(0), s)).collect();
        assert_eq!(slots, vec![true, false, true, false, true, false]);
        assert_eq!(sched.blocks_by(NodeId(0), 5), 3);
    }

    #[test]
    fn random_periods_uses_choices() {
        let mut rng = DetRng::seed_from(1);
        let sched = GenerationSchedule::random_periods(100, &[1, 2], &mut rng);
        let ones = (0..100u32)
            .filter(|&i| sched.period(NodeId(i)) == 1)
            .count();
        assert!(ones > 20 && ones < 80, "roughly balanced: {ones}");
        for i in 0..100u32 {
            assert!(matches!(sched.period(NodeId(i)), 1 | 2));
        }
    }

    #[test]
    fn blocks_by_counts_generation_slots() {
        let mut rng = DetRng::seed_from(2);
        let sched = GenerationSchedule::random_periods(10, &[1, 2, 3], &mut rng);
        for node in 0..10u32 {
            let id = NodeId(node);
            for slot in 0..30 {
                let manual = (0..=slot).filter(|&s| sched.generates(id, s)).count() as u64;
                assert_eq!(sched.blocks_by(id, slot), manual, "node {node} slot {slot}");
            }
        }
    }

    #[test]
    fn rate_is_inverse_period() {
        let sched = GenerationSchedule::from_periods(vec![1, 2, 4]);
        assert_eq!(sched.rate(NodeId(0)), 1.0);
        assert_eq!(sched.rate(NodeId(1)), 0.5);
        assert_eq!(sched.rate(NodeId(2)), 0.25);
    }

    #[test]
    #[should_panic(expected = "periods must be positive")]
    fn zero_period_rejected() {
        GenerationSchedule::from_periods(vec![0]);
    }

    #[test]
    fn chunk_ranges_partition_in_order() {
        for n in [0usize, 1, 5, 16, 17, 1000] {
            for threads in [1usize, 2, 3, 4, 7, 32] {
                let ranges = Sharding::threads(threads).chunk_ranges(n);
                assert!(ranges.len() <= threads);
                let mut next = 0;
                for r in &ranges {
                    assert_eq!(r.start, next, "contiguous");
                    assert!(!r.is_empty(), "no empty shard for n={n} t={threads}");
                    next = r.end;
                }
                assert_eq!(next, n, "covers all of 0..{n}");
                if n > 0 {
                    let sizes: Vec<usize> = ranges.iter().map(|r| r.len()).collect();
                    let (min, max) = (sizes.iter().min().unwrap(), sizes.iter().max().unwrap());
                    assert!(max - min <= 1, "near-equal chunks: {sizes:?}");
                }
            }
        }
        assert!(Sharding::threads(4).chunk_ranges(0).is_empty());
    }

    #[test]
    #[should_panic(expected = "at least one thread")]
    fn zero_threads_rejected() {
        Sharding::threads(0);
    }

    #[test]
    fn shard_of_matches_chunk_ranges() {
        for n in [1usize, 5, 16, 17, 100] {
            for threads in [1usize, 2, 3, 4, 7] {
                let sharding = Sharding::threads(threads);
                let ranges = sharding.chunk_ranges(n);
                for (shard, r) in ranges.iter().enumerate() {
                    for i in r.clone() {
                        assert_eq!(sharding.shard_of(n, i), shard, "n={n} t={threads} i={i}");
                    }
                }
                // Late joiners land in the last shard.
                assert_eq!(sharding.shard_of(n, n + 3), ranges.len() - 1);
            }
        }
        assert_eq!(Sharding::threads(4).shard_of(0, 9), 0);
    }
}
