//! Time-series recorders for per-slot experiment outputs.
//!
//! Figs. 7(a–c) and 8(a–c) plot a metric (average node storage, average node
//! communication) against the number of elapsed time slots. [`TimeSeries`]
//! records one `f64` per sampled slot; [`SeriesSet`] groups the named series
//! of one experiment so harness binaries can emit aligned CSV.

use crate::engine::Slot;
use std::collections::BTreeMap;
use std::fmt::Write as _;

/// A `(slot, value)` series sampled over a run.
///
/// # Example
///
/// ```
/// use tldag_sim::metrics::TimeSeries;
///
/// let mut ts = TimeSeries::new();
/// ts.record(25, 1.5);
/// ts.record(50, 3.0);
/// assert_eq!(ts.value_at(50), Some(3.0));
/// assert_eq!(ts.last(), Some((50, 3.0)));
/// ```
#[derive(Clone, Debug, Default, PartialEq)]
pub struct TimeSeries {
    points: BTreeMap<Slot, f64>,
}

impl TimeSeries {
    /// Creates an empty series.
    pub fn new() -> Self {
        Self::default()
    }

    /// Records `value` at `slot`, overwriting any previous sample there.
    pub fn record(&mut self, slot: Slot, value: f64) {
        self.points.insert(slot, value);
    }

    /// The value sampled exactly at `slot`.
    pub fn value_at(&self, slot: Slot) -> Option<f64> {
        self.points.get(&slot).copied()
    }

    /// The most recent sample.
    pub fn last(&self) -> Option<(Slot, f64)> {
        self.points.iter().next_back().map(|(&s, &v)| (s, v))
    }

    /// All `(slot, value)` points in slot order.
    pub fn points(&self) -> Vec<(Slot, f64)> {
        self.points.iter().map(|(&s, &v)| (s, v)).collect()
    }

    /// Slots at which the series was sampled.
    pub fn slots(&self) -> Vec<Slot> {
        self.points.keys().copied().collect()
    }

    /// Number of samples.
    pub fn len(&self) -> usize {
        self.points.len()
    }

    /// True if nothing has been recorded.
    pub fn is_empty(&self) -> bool {
        self.points.is_empty()
    }
}

/// A set of named, slot-aligned series (one experiment panel).
#[derive(Clone, Debug, Default)]
pub struct SeriesSet {
    names: Vec<String>,
    series: Vec<TimeSeries>,
}

impl SeriesSet {
    /// Creates an empty set.
    pub fn new() -> Self {
        Self::default()
    }

    /// Adds or fetches the series named `name`, returning a mutable handle.
    pub fn series_mut(&mut self, name: &str) -> &mut TimeSeries {
        if let Some(pos) = self.names.iter().position(|n| n == name) {
            return &mut self.series[pos];
        }
        self.names.push(name.to_owned());
        self.series.push(TimeSeries::new());
        self.series.last_mut().expect("just pushed")
    }

    /// Fetches a series by name.
    pub fn series(&self, name: &str) -> Option<&TimeSeries> {
        let pos = self.names.iter().position(|n| n == name)?;
        Some(&self.series[pos])
    }

    /// Names in insertion order.
    pub fn names(&self) -> &[String] {
        &self.names
    }

    /// Renders the set as a CSV table with a `slot` column followed by one
    /// column per series. Slots are the union of all sampled slots; missing
    /// samples render as empty cells.
    pub fn to_csv(&self) -> String {
        let mut slots: Vec<Slot> = Vec::new();
        for s in &self.series {
            for slot in s.slots() {
                if !slots.contains(&slot) {
                    slots.push(slot);
                }
            }
        }
        slots.sort_unstable();

        let mut out = String::from("slot");
        for name in &self.names {
            // Escape commas defensively; series names are ours, but cheap.
            let safe = name.replace(',', ";");
            let _ = write!(out, ",{safe}");
        }
        out.push('\n');
        for slot in slots {
            let _ = write!(out, "{slot}");
            for s in &self.series {
                match s.value_at(slot) {
                    Some(v) => {
                        let _ = write!(out, ",{v:.6}");
                    }
                    None => out.push(','),
                }
            }
            out.push('\n');
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn record_and_query() {
        let mut ts = TimeSeries::new();
        ts.record(10, 1.0);
        ts.record(5, 0.5);
        ts.record(10, 2.0); // overwrite
        assert_eq!(ts.value_at(10), Some(2.0));
        assert_eq!(ts.points(), vec![(5, 0.5), (10, 2.0)]);
        assert_eq!(ts.last(), Some((10, 2.0)));
        assert_eq!(ts.len(), 2);
    }

    #[test]
    fn series_set_round_trip() {
        let mut set = SeriesSet::new();
        set.series_mut("pbft").record(25, 100.0);
        set.series_mut("2ldag").record(25, 1.0);
        set.series_mut("pbft").record(50, 200.0);
        assert_eq!(set.names(), &["pbft".to_string(), "2ldag".to_string()]);
        assert_eq!(set.series("pbft").unwrap().value_at(50), Some(200.0));
        assert!(set.series("iota").is_none());
    }

    #[test]
    fn csv_has_header_and_aligned_rows() {
        let mut set = SeriesSet::new();
        set.series_mut("a").record(1, 1.0);
        set.series_mut("b").record(2, 2.0);
        let csv = set.to_csv();
        let lines: Vec<&str> = csv.lines().collect();
        assert_eq!(lines[0], "slot,a,b");
        assert_eq!(lines[1], "1,1.000000,");
        assert_eq!(lines[2], "2,,2.000000");
    }

    #[test]
    fn empty_set_renders_header_only() {
        let set = SeriesSet::new();
        assert_eq!(set.to_csv(), "slot\n");
    }
}
