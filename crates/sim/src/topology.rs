//! Unit-disk IoT network topologies built with the paper's placement rule.
//!
//! Sec. VI of the paper: *"The physical network consists of 50 wireless IoT
//! nodes [...]. All nodes have a communication range of 50 meters. To ensure a
//! connected network, we place nodes one by one. That is, we start by randomly
//! placing a node in the center of the said area. A new node is then added to
//! the area with the condition that it is always placed randomly within the
//! communication range of an already deployed node."*
//!
//! [`Topology::random_connected`] implements exactly that procedure;
//! [`Topology::from_edges`] builds the hand-drawn topologies of Figs. 3–6 for
//! unit tests.

use crate::geometry::Point;
use crate::rng::DetRng;
use std::collections::VecDeque;
use std::fmt;

/// Identifier of a physical node (index into the topology's node list).
///
/// # Example
///
/// ```
/// use tldag_sim::NodeId;
///
/// let id = NodeId(3);
/// assert_eq!(id.index(), 3);
/// assert_eq!(id.to_string(), "n3");
/// ```
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Debug, Default)]
pub struct NodeId(pub u32);

impl NodeId {
    /// The id as a `usize` index.
    pub const fn index(self) -> usize {
        self.0 as usize
    }
}

impl fmt::Display for NodeId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "n{}", self.0)
    }
}

impl From<u32> for NodeId {
    fn from(v: u32) -> Self {
        NodeId(v)
    }
}

/// Parameters of the random deployment.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct TopologyConfig {
    /// Number of nodes, |V|.
    pub nodes: usize,
    /// Side length of the square deployment area, in meters.
    pub side_m: f64,
    /// Radio range, in meters.
    pub range_m: f64,
    /// Maximum placement attempts per node before relaxing to any position in
    /// range of the chosen anchor (guards against pathological rejection).
    pub max_attempts: usize,
}

impl TopologyConfig {
    /// The paper's evaluation setting: 50 nodes, 50 m range. The paper says
    /// "an area of 1000 square meters"; a literal 31.6 m × 31.6 m square would
    /// make the graph nearly complete, contradicting the 17–26-hop consensus
    /// paths of Sec. VI-B, so we read it as a 1000 m × 1000 m square (see
    /// DESIGN.md §1).
    pub fn paper_default() -> Self {
        TopologyConfig {
            nodes: 50,
            side_m: 1000.0,
            range_m: 50.0,
            max_attempts: 64,
        }
    }

    /// A small topology for fast unit tests.
    pub fn small(nodes: usize) -> Self {
        TopologyConfig {
            nodes,
            side_m: 200.0,
            range_m: 50.0,
            max_attempts: 64,
        }
    }
}

impl Default for TopologyConfig {
    fn default() -> Self {
        Self::paper_default()
    }
}

/// An undirected unit-disk graph `G(V, E)` with node positions.
#[derive(Clone, Debug)]
pub struct Topology {
    positions: Vec<Point>,
    adjacency: Vec<Vec<NodeId>>,
}

impl Topology {
    /// Builds a connected topology with the paper's incremental placement.
    ///
    /// The first node sits at the center of the area; each subsequent node is
    /// placed uniformly at random inside the radio range of a uniformly chosen
    /// already-placed anchor node (rejecting positions outside the area).
    ///
    /// # Panics
    ///
    /// Panics if `config.nodes == 0`.
    pub fn random_connected(config: &TopologyConfig, rng: &mut DetRng) -> Self {
        assert!(config.nodes > 0, "topology needs at least one node");
        let mut positions: Vec<Point> = Vec::with_capacity(config.nodes);
        positions.push(Point::new(config.side_m / 2.0, config.side_m / 2.0));
        while positions.len() < config.nodes {
            let anchor = positions[rng.index(positions.len())];
            let mut placed = None;
            for _ in 0..config.max_attempts {
                // Uniform point in the disk of radius `range_m` around anchor:
                // r = R√u gives area-uniform radius.
                let r = config.range_m * rng.unit_f64().sqrt();
                let theta = rng.range_f64(0.0, std::f64::consts::TAU);
                let candidate = Point::new(anchor.x + r * theta.cos(), anchor.y + r * theta.sin());
                if candidate.in_square(config.side_m) {
                    placed = Some(candidate);
                    break;
                }
            }
            // The anchor itself is inside the area, so falling back to the
            // anchor's position keeps the graph connected in the (vanishingly
            // rare) case where every sampled point landed outside.
            positions.push(placed.unwrap_or(anchor));
        }
        Self::from_positions(positions, config.range_m)
    }

    /// Builds a topology from explicit positions and a radio range.
    pub fn from_positions(positions: Vec<Point>, range_m: f64) -> Self {
        let n = positions.len();
        let mut adjacency = vec![Vec::new(); n];
        for i in 0..n {
            for j in (i + 1)..n {
                if positions[i].in_range(&positions[j], range_m) {
                    adjacency[i].push(NodeId(j as u32));
                    adjacency[j].push(NodeId(i as u32));
                }
            }
        }
        Topology {
            positions,
            adjacency,
        }
    }

    /// Builds a topology from an explicit edge list (positions are synthetic).
    /// Used to reproduce the hand-drawn examples in Figs. 3–6 of the paper.
    ///
    /// # Panics
    ///
    /// Panics if an edge references a node `>= nodes` or is a self-loop.
    pub fn from_edges(nodes: usize, edges: &[(u32, u32)]) -> Self {
        let mut adjacency: Vec<Vec<NodeId>> = vec![Vec::new(); nodes];
        for &(a, b) in edges {
            assert!(a != b, "self-loop {a}-{b}");
            assert!(
                (a as usize) < nodes && (b as usize) < nodes,
                "edge {a}-{b} out of bounds"
            );
            if !adjacency[a as usize].contains(&NodeId(b)) {
                adjacency[a as usize].push(NodeId(b));
                adjacency[b as usize].push(NodeId(a));
            }
        }
        let positions = (0..nodes).map(|i| Point::new(i as f64, 0.0)).collect();
        Topology {
            positions,
            adjacency,
        }
    }

    /// Number of nodes |V|.
    pub fn len(&self) -> usize {
        self.positions.len()
    }

    /// True if the topology has no nodes.
    pub fn is_empty(&self) -> bool {
        self.positions.is_empty()
    }

    /// Iterator over all node ids.
    pub fn node_ids(&self) -> impl Iterator<Item = NodeId> + '_ {
        (0..self.positions.len() as u32).map(NodeId)
    }

    /// The neighbor set `N(i)`.
    ///
    /// # Panics
    ///
    /// Panics if `id` is out of bounds.
    pub fn neighbors(&self, id: NodeId) -> &[NodeId] {
        &self.adjacency[id.index()]
    }

    /// Degree `|N(i)|`.
    pub fn degree(&self, id: NodeId) -> usize {
        self.adjacency[id.index()].len()
    }

    /// Position of a node.
    pub fn position(&self, id: NodeId) -> Point {
        self.positions[id.index()]
    }

    /// True if `a` and `b` share an edge.
    pub fn are_neighbors(&self, a: NodeId, b: NodeId) -> bool {
        self.adjacency[a.index()].contains(&b)
    }

    /// Total number of undirected edges |E|.
    pub fn edge_count(&self) -> usize {
        self.adjacency.iter().map(Vec::len).sum::<usize>() / 2
    }

    /// Whether the graph is connected (trivially true for ≤1 nodes).
    pub fn is_connected(&self) -> bool {
        if self.len() <= 1 {
            return true;
        }
        let mut seen = vec![false; self.len()];
        let mut queue = VecDeque::from([NodeId(0)]);
        seen[0] = true;
        let mut count = 1;
        while let Some(u) = queue.pop_front() {
            for &v in self.neighbors(u) {
                if !seen[v.index()] {
                    seen[v.index()] = true;
                    count += 1;
                    queue.push_back(v);
                }
            }
        }
        count == self.len()
    }

    /// BFS hop distances from `source`; `None` for unreachable nodes.
    pub fn hop_distances(&self, source: NodeId) -> Vec<Option<u32>> {
        let mut dist = vec![None; self.len()];
        dist[source.index()] = Some(0);
        let mut queue = VecDeque::from([source]);
        while let Some(u) = queue.pop_front() {
            let du = dist[u.index()].expect("queued nodes have distances");
            for &v in self.neighbors(u) {
                if dist[v.index()].is_none() {
                    dist[v.index()] = Some(du + 1);
                    queue.push_back(v);
                }
            }
        }
        dist
    }

    /// Graph diameter in hops (`None` if disconnected).
    pub fn diameter(&self) -> Option<u32> {
        let mut best = 0;
        for src in self.node_ids() {
            for d in self.hop_distances(src) {
                best = best.max(d?);
            }
        }
        Some(best)
    }

    /// Mean node degree.
    pub fn mean_degree(&self) -> f64 {
        if self.is_empty() {
            return 0.0;
        }
        self.adjacency.iter().map(Vec::len).sum::<usize>() as f64 / self.len() as f64
    }

    /// Adds a node at `position`, wiring edges to every existing node within
    /// `range_m`. Returns the new node's id. Supports the dynamic-membership
    /// extension (paper Sec. VII future work).
    pub fn add_node(&mut self, position: Point, range_m: f64) -> NodeId {
        let id = NodeId(self.positions.len() as u32);
        let mut edges = Vec::new();
        for existing in 0..self.positions.len() {
            if self.positions[existing].in_range(&position, range_m) {
                edges.push(NodeId(existing as u32));
            }
        }
        for &nb in &edges {
            self.adjacency[nb.index()].push(id);
        }
        self.positions.push(position);
        self.adjacency.push(edges);
        id
    }

    /// Disconnects a node from the graph (its id remains valid so historical
    /// references stay resolvable, but it has no edges). Models a node
    /// leaving the network.
    pub fn isolate_node(&mut self, id: NodeId) {
        let neighbors = std::mem::take(&mut self.adjacency[id.index()]);
        for nb in neighbors {
            self.adjacency[nb.index()].retain(|&n| n != id);
        }
    }

    /// BFS parent array rooted at `source`: `parents[v]` is `v`'s predecessor
    /// on a shortest path from `source` (`None` for the source itself and for
    /// unreachable nodes). Used to attribute multi-hop message relaying.
    pub fn shortest_path_parents(&self, source: NodeId) -> Vec<Option<NodeId>> {
        let mut parents = vec![None; self.len()];
        let mut seen = vec![false; self.len()];
        seen[source.index()] = true;
        let mut queue = VecDeque::from([source]);
        while let Some(u) = queue.pop_front() {
            for &v in self.neighbors(u) {
                if !seen[v.index()] {
                    seen[v.index()] = true;
                    parents[v.index()] = Some(u);
                    queue.push_back(v);
                }
            }
        }
        parents
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn paper_default_is_connected_for_many_seeds() {
        let config = TopologyConfig::paper_default();
        for seed in 0..20 {
            let mut rng = DetRng::seed_from(seed);
            let topo = Topology::random_connected(&config, &mut rng);
            assert_eq!(topo.len(), 50);
            assert!(topo.is_connected(), "seed {seed}");
        }
    }

    #[test]
    fn edges_respect_radio_range() {
        let config = TopologyConfig::paper_default();
        let mut rng = DetRng::seed_from(11);
        let topo = Topology::random_connected(&config, &mut rng);
        for a in topo.node_ids() {
            for &b in topo.neighbors(a) {
                assert!(
                    topo.position(a).in_range(&topo.position(b), config.range_m),
                    "{a}-{b} out of range"
                );
            }
        }
    }

    #[test]
    fn all_positions_inside_area() {
        let config = TopologyConfig::paper_default();
        let mut rng = DetRng::seed_from(13);
        let topo = Topology::random_connected(&config, &mut rng);
        for id in topo.node_ids() {
            assert!(topo.position(id).in_square(config.side_m));
        }
    }

    #[test]
    fn same_seed_same_topology() {
        let config = TopologyConfig::small(20);
        let t1 = Topology::random_connected(&config, &mut DetRng::seed_from(5));
        let t2 = Topology::random_connected(&config, &mut DetRng::seed_from(5));
        for id in t1.node_ids() {
            assert_eq!(t1.neighbors(id), t2.neighbors(id));
            assert_eq!(t1.position(id), t2.position(id));
        }
    }

    #[test]
    fn adjacency_is_symmetric() {
        let config = TopologyConfig::small(30);
        let topo = Topology::random_connected(&config, &mut DetRng::seed_from(17));
        for a in topo.node_ids() {
            for &b in topo.neighbors(a) {
                assert!(topo.are_neighbors(b, a), "asymmetric edge {a}-{b}");
            }
        }
    }

    #[test]
    fn fig3_topology_from_edges() {
        // Fig. 3: N(A)={B}, N(B)={A,C,D}, N(C)={B,D}, N(D)={B,C}
        // A=0, B=1, C=2, D=3.
        let topo = Topology::from_edges(4, &[(0, 1), (1, 2), (1, 3), (2, 3)]);
        assert_eq!(topo.neighbors(NodeId(0)), &[NodeId(1)]);
        assert_eq!(topo.degree(NodeId(1)), 3);
        assert_eq!(topo.degree(NodeId(2)), 2);
        assert_eq!(topo.degree(NodeId(3)), 2);
        assert!(topo.is_connected());
        assert_eq!(topo.edge_count(), 4);
    }

    #[test]
    fn duplicate_edges_are_deduplicated() {
        let topo = Topology::from_edges(2, &[(0, 1), (0, 1), (1, 0)]);
        assert_eq!(topo.edge_count(), 1);
    }

    #[test]
    #[should_panic(expected = "self-loop")]
    fn self_loops_rejected() {
        Topology::from_edges(2, &[(1, 1)]);
    }

    #[test]
    fn hop_distances_on_a_path_graph() {
        let topo = Topology::from_edges(4, &[(0, 1), (1, 2), (2, 3)]);
        let d = topo.hop_distances(NodeId(0));
        assert_eq!(d, vec![Some(0), Some(1), Some(2), Some(3)]);
        assert_eq!(topo.diameter(), Some(3));
    }

    #[test]
    fn diameter_none_when_disconnected() {
        let topo = Topology::from_edges(4, &[(0, 1), (2, 3)]);
        assert!(!topo.is_connected());
        assert_eq!(topo.diameter(), None);
    }

    #[test]
    fn single_node_topology() {
        let topo = Topology::from_edges(1, &[]);
        assert!(topo.is_connected());
        assert_eq!(topo.diameter(), Some(0));
        assert_eq!(topo.mean_degree(), 0.0);
    }

    #[test]
    fn add_node_wires_in_range_edges() {
        let mut topo = Topology::from_positions(
            vec![
                Point::new(0.0, 0.0),
                Point::new(40.0, 0.0),
                Point::new(200.0, 0.0),
            ],
            50.0,
        );
        let id = topo.add_node(Point::new(20.0, 0.0), 50.0);
        assert_eq!(id, NodeId(3));
        assert!(topo.are_neighbors(id, NodeId(0)));
        assert!(topo.are_neighbors(id, NodeId(1)));
        assert!(!topo.are_neighbors(id, NodeId(2)));
        assert!(topo.are_neighbors(NodeId(0), id), "edges are symmetric");
    }

    #[test]
    fn isolate_node_removes_all_edges() {
        let mut topo = Topology::from_edges(4, &[(0, 1), (1, 2), (2, 3), (1, 3)]);
        topo.isolate_node(NodeId(1));
        assert_eq!(topo.degree(NodeId(1)), 0);
        assert!(!topo.are_neighbors(NodeId(0), NodeId(1)));
        assert!(!topo.are_neighbors(NodeId(2), NodeId(1)));
        // Untouched edges survive.
        assert!(topo.are_neighbors(NodeId(2), NodeId(3)));
    }

    #[test]
    fn shortest_path_parents_trace_back_to_source() {
        let topo = Topology::from_edges(5, &[(0, 1), (1, 2), (2, 3), (3, 4), (0, 4)]);
        let parents = topo.shortest_path_parents(NodeId(0));
        assert_eq!(parents[0], None);
        assert_eq!(parents[1], Some(NodeId(0)));
        assert_eq!(
            parents[4],
            Some(NodeId(0)),
            "direct edge beats the long way"
        );
        // Walk from 3 back to 0: 3 → (2 or 4) → ... terminates at source.
        let mut at = NodeId(3);
        let mut hops = 0;
        while let Some(p) = parents[at.index()] {
            at = p;
            hops += 1;
            assert!(hops < 5, "must terminate");
        }
        assert_eq!(at, NodeId(0));
        assert_eq!(hops, 2);
    }

    #[test]
    fn multihop_paths_exist_in_paper_topology() {
        // The paper's consensus paths traverse 17-26 nodes, so the deployment
        // must be multi-hop. Check diameter is well above 1.
        let config = TopologyConfig::paper_default();
        let mut any_multihop = false;
        for seed in 0..5 {
            let topo = Topology::random_connected(&config, &mut DetRng::seed_from(seed));
            if topo.diameter().unwrap_or(0) >= 5 {
                any_multihop = true;
            }
        }
        assert!(any_multihop, "paper-scale topologies should be multi-hop");
    }
}
