//! Deterministic, splittable PRNG (SplitMix64-seeded xoshiro256++).
//!
//! Every stochastic choice in the workspace — node placement, generation
//! schedules, malicious-node selection, WPS tie-breaks — draws from a
//! [`DetRng`] so a single `u64` seed reproduces an entire experiment. Streams
//! can be forked per subsystem ([`DetRng::fork`]) so adding draws in one
//! component does not perturb another.

/// SplitMix64 step, used for seeding and stream derivation.
fn splitmix64(state: &mut u64) -> u64 {
    *state = state.wrapping_add(0x9e3779b97f4a7c15);
    let mut z = *state;
    z = (z ^ (z >> 30)).wrapping_mul(0xbf58476d1ce4e5b9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94d049bb133111eb);
    z ^ (z >> 31)
}

/// xoshiro256++ deterministic random number generator.
///
/// # Example
///
/// ```
/// use tldag_sim::rng::DetRng;
///
/// let mut a = DetRng::seed_from(1);
/// let mut b = DetRng::seed_from(1);
/// assert_eq!(a.next_u64(), b.next_u64());
/// ```
#[derive(Clone, Debug)]
pub struct DetRng {
    s: [u64; 4],
}

impl DetRng {
    /// Creates a generator from a 64-bit seed.
    pub fn seed_from(seed: u64) -> Self {
        let mut sm = seed;
        let s = [
            splitmix64(&mut sm),
            splitmix64(&mut sm),
            splitmix64(&mut sm),
            splitmix64(&mut sm),
        ];
        DetRng { s }
    }

    /// Derives an independent stream labelled by `stream`. Forking with the
    /// same label always yields the same child generator, so subsystems can be
    /// given stable streams regardless of draw order elsewhere.
    pub fn fork(&self, stream: u64) -> DetRng {
        let mut sm =
            self.s[0] ^ self.s[2].rotate_left(17) ^ stream.wrapping_mul(0xd1342543de82ef95);
        let s = [
            splitmix64(&mut sm),
            splitmix64(&mut sm),
            splitmix64(&mut sm),
            splitmix64(&mut sm),
        ];
        DetRng { s }
    }

    /// Next raw 64-bit value.
    pub fn next_u64(&mut self) -> u64 {
        let result = self.s[0]
            .wrapping_add(self.s[3])
            .rotate_left(23)
            .wrapping_add(self.s[0]);
        let t = self.s[1] << 17;
        self.s[2] ^= self.s[0];
        self.s[3] ^= self.s[1];
        self.s[1] ^= self.s[2];
        self.s[0] ^= self.s[3];
        self.s[2] ^= t;
        self.s[3] = self.s[3].rotate_left(45);
        result
    }

    /// Uniform value in `[0, bound)`.
    ///
    /// # Panics
    ///
    /// Panics if `bound == 0`.
    pub fn next_below(&mut self, bound: u64) -> u64 {
        assert!(bound > 0, "next_below bound must be positive");
        // Lemire's nearly-divisionless method with rejection for exactness.
        let mut x = self.next_u64();
        let mut m = (x as u128).wrapping_mul(bound as u128);
        let mut low = m as u64;
        if low < bound {
            let threshold = bound.wrapping_neg() % bound;
            while low < threshold {
                x = self.next_u64();
                m = (x as u128).wrapping_mul(bound as u128);
                low = m as u64;
            }
        }
        (m >> 64) as u64
    }

    /// Uniform `usize` index in `[0, bound)`.
    ///
    /// # Panics
    ///
    /// Panics if `bound == 0`.
    pub fn index(&mut self, bound: usize) -> usize {
        self.next_below(bound as u64) as usize
    }

    /// Uniform value in the half-open integer range `[lo, hi)`.
    ///
    /// # Panics
    ///
    /// Panics if `lo >= hi`.
    pub fn range_u64(&mut self, lo: u64, hi: u64) -> u64 {
        assert!(lo < hi, "empty range");
        lo + self.next_below(hi - lo)
    }

    /// Uniform `f64` in `[0, 1)`.
    pub fn unit_f64(&mut self) -> f64 {
        // 53 random mantissa bits.
        (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }

    /// Uniform `f64` in `[lo, hi)`.
    pub fn range_f64(&mut self, lo: f64, hi: f64) -> f64 {
        lo + self.unit_f64() * (hi - lo)
    }

    /// Bernoulli draw with probability `p` (clamped to `[0, 1]`).
    pub fn chance(&mut self, p: f64) -> bool {
        self.unit_f64() < p.clamp(0.0, 1.0)
    }

    /// Chooses a uniformly random element of `items`, or `None` if empty.
    pub fn choose<'a, T>(&mut self, items: &'a [T]) -> Option<&'a T> {
        if items.is_empty() {
            None
        } else {
            Some(&items[self.index(items.len())])
        }
    }

    /// Fisher–Yates shuffle in place.
    pub fn shuffle<T>(&mut self, items: &mut [T]) {
        for i in (1..items.len()).rev() {
            let j = self.index(i + 1);
            items.swap(i, j);
        }
    }

    /// Samples `k` distinct indices from `[0, n)` (k ≤ n), in random order.
    ///
    /// # Panics
    ///
    /// Panics if `k > n`.
    pub fn sample_indices(&mut self, n: usize, k: usize) -> Vec<usize> {
        assert!(k <= n, "cannot sample {k} from {n}");
        let mut all: Vec<usize> = (0..n).collect();
        self.shuffle(&mut all);
        all.truncate(k);
        all
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn same_seed_same_stream() {
        let mut a = DetRng::seed_from(99);
        let mut b = DetRng::seed_from(99);
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    #[test]
    fn different_seeds_differ() {
        let mut a = DetRng::seed_from(1);
        let mut b = DetRng::seed_from(2);
        let same = (0..10).filter(|_| a.next_u64() == b.next_u64()).count();
        assert!(same < 10);
    }

    #[test]
    fn fork_is_stable_and_independent() {
        let root = DetRng::seed_from(5);
        let mut f1 = root.fork(1);
        let mut f1_again = root.fork(1);
        let mut f2 = root.fork(2);
        assert_eq!(f1.next_u64(), f1_again.next_u64());
        assert_ne!(f1.next_u64(), f2.next_u64());
    }

    #[test]
    fn next_below_is_in_range_and_covers() {
        let mut rng = DetRng::seed_from(3);
        let mut seen = [false; 10];
        for _ in 0..1000 {
            let v = rng.next_below(10) as usize;
            assert!(v < 10);
            seen[v] = true;
        }
        assert!(seen.iter().all(|&s| s), "all residues reachable");
    }

    #[test]
    fn unit_f64_in_bounds_and_roughly_uniform() {
        let mut rng = DetRng::seed_from(4);
        let n = 10_000;
        let mean: f64 = (0..n).map(|_| rng.unit_f64()).sum::<f64>() / n as f64;
        assert!((mean - 0.5).abs() < 0.02, "mean {mean}");
    }

    #[test]
    fn shuffle_is_a_permutation() {
        let mut rng = DetRng::seed_from(6);
        let mut v: Vec<u32> = (0..50).collect();
        rng.shuffle(&mut v);
        let mut sorted = v.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, (0..50).collect::<Vec<_>>());
    }

    #[test]
    fn sample_indices_distinct() {
        let mut rng = DetRng::seed_from(7);
        let sample = rng.sample_indices(50, 25);
        let mut dedup = sample.clone();
        dedup.sort_unstable();
        dedup.dedup();
        assert_eq!(dedup.len(), 25);
        assert!(sample.iter().all(|&i| i < 50));
    }

    #[test]
    #[should_panic(expected = "cannot sample")]
    fn oversample_panics() {
        DetRng::seed_from(8).sample_indices(3, 4);
    }

    #[test]
    fn chance_extremes() {
        let mut rng = DetRng::seed_from(9);
        assert!(!rng.chance(0.0));
        assert!(rng.chance(1.0));
    }
}
