//! Crash-recovery properties of the durable engine: reopen after clean
//! shutdown, crash (drop without sync), torn tail writes, snapshot
//! corruption, and segment compaction.

use proptest::prelude::*;
use tldag_core::config::ProtocolConfig;
use tldag_core::store::BlockBackend;
use tldag_core::{BlockBody, BlockId, DataBlock, DigestEntry};
use tldag_crypto::schnorr::KeyPair;
use tldag_crypto::Digest;
use tldag_sim::NodeId;
use tldag_storage::{DurableStore, StorageOptions};

/// A scratch directory removed on drop (best-effort).
struct Scratch(std::path::PathBuf);

impl Scratch {
    fn new(name: &str) -> Self {
        let dir = std::env::temp_dir().join(format!("tldag-storage-{name}-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        Scratch(dir)
    }

    fn path(&self) -> &std::path::Path {
        &self.0
    }
}

impl Drop for Scratch {
    fn drop(&mut self) {
        let _ = std::fs::remove_dir_all(&self.0);
    }
}

/// Builds a linked chain of `n` blocks for node 1 (each block references its
/// predecessor, like real generation does).
fn chain(n: u32, payload_bytes: usize) -> Vec<DataBlock> {
    let cfg = ProtocolConfig::test_default();
    let kp = KeyPair::from_seed(1);
    let mut blocks: Vec<DataBlock> = Vec::with_capacity(n as usize);
    for seq in 0..n {
        let digests = blocks
            .last()
            .map(|prev: &DataBlock| {
                vec![DigestEntry {
                    origin: NodeId(1),
                    digest: prev.header_digest(),
                }]
            })
            .unwrap_or_default();
        blocks.push(DataBlock::create(
            &cfg,
            BlockId::new(NodeId(1), seq),
            u64::from(seq),
            digests,
            BlockBody::new(vec![seq as u8; payload_bytes], cfg.body_bits),
            &kp,
        ));
    }
    blocks
}

fn opts() -> StorageOptions {
    StorageOptions::compact_test()
}

#[test]
fn clean_reopen_recovers_everything() {
    let scratch = Scratch::new("clean-reopen");
    let blocks = chain(40, 64);
    {
        let mut store = DurableStore::open(scratch.path(), opts()).unwrap();
        for b in &blocks {
            store.append(b.clone()).unwrap();
        }
        store.sync().unwrap();
        assert_eq!(store.durable_len(), 40);
    }
    let store = DurableStore::open(scratch.path(), opts()).unwrap();
    assert_eq!(store.len(), 40);
    for b in &blocks {
        assert_eq!(store.get(b.id.seq).as_ref(), Some(b));
        assert_eq!(store.by_header_digest(&b.header_digest()).as_ref(), Some(b));
    }
    // 40 × ~100-byte records across 4 KiB segments: rolls must have happened.
    assert!(
        std::fs::read_dir(scratch.path())
            .unwrap()
            .filter(|e| e
                .as_ref()
                .unwrap()
                .file_name()
                .to_string_lossy()
                .starts_with("seg-"))
            .count()
            > 1,
        "test must exercise multiple segments"
    );
}

#[test]
fn crash_without_sync_keeps_synced_prefix() {
    let scratch = Scratch::new("crash-prefix");
    let blocks = chain(30, 64);
    {
        let mut store = DurableStore::open(scratch.path(), opts()).unwrap();
        for b in &blocks[..20] {
            store.append(b.clone()).unwrap();
        }
        store.sync().unwrap();
        for b in &blocks[20..] {
            store.append(b.clone()).unwrap();
        }
        assert_eq!(
            store.durable_len(),
            20,
            "only the synced prefix is promised"
        );
        assert_eq!(store.len(), 30);
        // Dropped here without sync: the buffered tail may be lost.
    }
    let store = DurableStore::open(scratch.path(), opts()).unwrap();
    assert!(store.len() >= 20, "synced blocks must survive a crash");
    for b in &blocks[..store.len()] {
        assert_eq!(
            store.get(b.id.seq).as_ref(),
            Some(b),
            "recovered prefix intact"
        );
    }
}

#[test]
fn chain_continues_after_restart() {
    let scratch = Scratch::new("continue");
    let blocks = chain(12, 32);
    {
        let mut store = DurableStore::open(scratch.path(), opts()).unwrap();
        for b in &blocks[..8] {
            store.append(b.clone()).unwrap();
        }
        store.sync().unwrap();
    }
    let mut store = DurableStore::open(scratch.path(), opts()).unwrap();
    assert_eq!(store.len(), 8);
    // Appending the next seq succeeds; skipping one is rejected.
    assert!(matches!(
        store.append(blocks[9].clone()),
        Err(tldag_core::TldagError::OutOfOrderAppend {
            expected: 8,
            got: 9
        })
    ));
    store.append(blocks[8].clone()).unwrap();
    assert_eq!(store.len(), 9);
}

#[test]
fn corrupt_snapshot_falls_back_to_full_scan() {
    let scratch = Scratch::new("bad-snapshot");
    let blocks = chain(20, 64);
    {
        let mut store = DurableStore::open(scratch.path(), opts()).unwrap();
        for b in &blocks {
            store.append(b.clone()).unwrap();
        }
        store.sync().unwrap();
        store.sync().unwrap(); // second sync crosses snapshot_every = 8
    }
    let snap = scratch.path().join("index.snap");
    assert!(snap.exists(), "snapshot must have been written");
    std::fs::write(&snap, b"garbage that is definitely not a snapshot").unwrap();

    let store = DurableStore::open(scratch.path(), opts()).unwrap();
    assert_eq!(store.len(), 20, "full scan recovers the chain");
    for b in &blocks {
        assert_eq!(store.get(b.id.seq).as_ref(), Some(b));
    }
}

#[test]
fn compaction_honours_budget_and_keeps_chain_length() {
    let scratch = Scratch::new("compaction");
    let blocks = chain(60, 64);
    let mut store = DurableStore::open(scratch.path(), opts()).unwrap();
    for b in &blocks {
        store.append(b.clone()).unwrap();
    }
    store.sync().unwrap();
    let before = store.disk_usage_bytes();
    let pruned = store.compact_to_budget(before / 2).unwrap();
    assert!(pruned > 0, "budget must force pruning");
    assert!(store.disk_usage_bytes() <= before / 2);
    assert_eq!(store.len(), 60, "chain length keeps counting pruned blocks");
    let base = store.base_seq();
    assert!(base > 0);
    assert!(store.get(base - 1).is_none(), "pruned blocks are gone");
    assert_eq!(store.get(base).as_ref(), Some(&blocks[base as usize]));

    // The retained suffix (and only it) is what a reopen recovers.
    drop(store);
    let reopened = DurableStore::open(scratch.path(), opts()).unwrap();
    assert_eq!(reopened.len(), 60);
    assert_eq!(reopened.base_seq(), base);
    assert_eq!(reopened.get(base).as_ref(), Some(&blocks[base as usize]));
    assert_eq!(reopened.get(59).as_ref(), Some(&blocks[59]));
}

#[test]
fn auto_compaction_snapshot_survives_crash_and_reopen() {
    // Regression: a roll-triggered compaction writes an index snapshot; the
    // record that triggered the roll must already be indexed, or the
    // snapshot covers its bytes without its entry and a reopen replays past
    // it into a bogus sequence-gap corruption error.
    let scratch = Scratch::new("auto-compact");
    let blocks = chain(40, 64);
    let auto = StorageOptions {
        segment_bytes: 1024,
        snapshot_every: 1024, // the compaction snapshot stays the latest
        retain_disk_bytes: Some(2 * 1024),
        ..StorageOptions::compact_test()
    };
    {
        let mut store = DurableStore::open(scratch.path(), auto.clone()).unwrap();
        for b in &blocks {
            store.append(b.clone()).unwrap();
        }
        store.sync().unwrap();
        assert!(store.base_seq() > 0, "budget must prune");
        assert!(store.disk_usage_bytes() <= 2 * 1024 + auto.segment_bytes);
    }
    let store = DurableStore::open(scratch.path(), auto).unwrap();
    assert_eq!(store.len(), 40, "chain length survives the reopen");
    let base = store.base_seq();
    assert!(base > 0);
    for b in &blocks[base as usize..] {
        assert_eq!(
            store.get(b.id.seq).as_ref(),
            Some(b),
            "retained suffix intact"
        );
    }
}

#[test]
fn compaction_never_prunes_the_chain_head() {
    let scratch = Scratch::new("head-guard");
    let blocks = chain(60, 64);
    let mut store = DurableStore::open(scratch.path(), opts()).unwrap();
    for b in &blocks {
        store.append(b.clone()).unwrap();
    }
    store.sync().unwrap();
    // An absurdly small budget must still keep the newest block reachable —
    // the node's own prev-digest linkage depends on latest().
    store.compact_to_budget(1).unwrap();
    let latest = store.latest().expect("chain head survives any budget");
    assert_eq!(latest.id.seq, 59);
    assert!(store.base_seq() < 60);
    assert!(store.len() == 60);
}

#[test]
fn child_lookups_span_segments() {
    let scratch = Scratch::new("children");
    let cfg = ProtocolConfig::test_default();
    let kp = KeyPair::from_seed(1);
    let target = Digest::from_bytes([9; 32]);
    let mut store = DurableStore::open(scratch.path(), opts()).unwrap();
    // Blocks 3 and 47 contain `target`; everything else does not.
    for seq in 0..50u32 {
        let digests = if seq == 3 || seq == 47 {
            vec![DigestEntry {
                origin: NodeId(2),
                digest: target,
            }]
        } else {
            vec![]
        };
        let block = DataBlock::create(
            &cfg,
            BlockId::new(NodeId(1), seq),
            u64::from(seq),
            digests,
            BlockBody::new(vec![seq as u8; 64], cfg.body_bits),
            &kp,
        );
        store.append(block).unwrap();
    }
    store.sync().unwrap();
    assert_eq!(store.oldest_child_of(&target).unwrap().id.seq, 3);
    let children: Vec<u32> = store
        .children_of(&target)
        .iter()
        .map(|b| b.id.seq)
        .collect();
    assert_eq!(children, vec![3, 47]);
    assert_eq!(store.iter().count(), 50);
}

#[test]
fn resident_memory_stays_bounded_by_index_and_cache() {
    let scratch = Scratch::new("resident");
    let payload = 512usize;
    let blocks = chain(200, payload);
    let mut store = DurableStore::open(
        scratch.path(),
        StorageOptions {
            cache_blocks: 4,
            flush_buffer_bytes: 2 * 1024,
            ..StorageOptions::compact_test()
        },
    )
    .unwrap();
    for b in &blocks {
        store.append(b.clone()).unwrap();
    }
    store.sync().unwrap();
    let resident = store.resident_bytes();
    let on_disk = store.disk_usage_bytes() as usize;
    assert!(
        resident < on_disk / 2,
        "resident {resident} B should be far below the {on_disk} B chain"
    );
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// Any prefix truncation of the tail segment (a torn write) reopens to a
    /// consistent chain prefix: every surviving block equals the original,
    /// every fully-durable record survives, and the rebuilt index answers
    /// digest lookups for exactly the surviving blocks.
    #[test]
    fn torn_tail_recovers_longest_valid_prefix(
        n in 4u32..24,
        payload in 8usize..96,
        cut_fraction in 0.0f64..1.0,
    ) {
        let scratch = Scratch::new(&format!("torn-{n}-{payload}"));
        let blocks = chain(n, payload);
        // Single-segment store so the cut always lands in the tail.
        let big = StorageOptions {
            segment_bytes: u64::MAX,
            flush_buffer_bytes: 1,
            ..StorageOptions::compact_test()
        };
        let mut record_ends: Vec<u64> = Vec::new();
        {
            let mut store = DurableStore::open(scratch.path(), big.clone()).unwrap();
            let mut end = 0u64;
            for b in &blocks {
                end += tldag_storage::record::encode_record(b).len() as u64;
                record_ends.push(end);
                store.append(b.clone()).unwrap();
            }
            store.sync().unwrap();
        }
        let seg = scratch.path().join("seg-000000.log");
        let full = std::fs::metadata(&seg).unwrap().len();
        prop_assert_eq!(full, *record_ends.last().unwrap());
        let cut = (full as f64 * cut_fraction) as u64;
        // Remove the snapshot so recovery must replay the (torn) log.
        let _ = std::fs::remove_file(scratch.path().join("index.snap"));
        let file = std::fs::OpenOptions::new().write(true).open(&seg).unwrap();
        file.set_len(cut).unwrap();
        drop(file);

        let store = DurableStore::open(scratch.path(), big).unwrap();
        // Expected survivors: records that end at or before the cut.
        let expect = record_ends.iter().filter(|&&e| e <= cut).count();
        prop_assert_eq!(store.len(), expect, "longest valid prefix");
        for b in &blocks[..expect] {
            prop_assert_eq!(store.get(b.id.seq), Some(b.clone()));
            prop_assert_eq!(store.by_header_digest(&b.header_digest()), Some(b.clone()));
        }
        for b in &blocks[expect..] {
            prop_assert!(store.by_header_digest(&b.header_digest()).is_none());
        }
        // The truncated file was trimmed to the record boundary.
        let trimmed = std::fs::metadata(&seg).unwrap().len();
        let boundary = record_ends.iter().rev().find(|&&e| e <= cut).copied().unwrap_or(0);
        prop_assert_eq!(trimmed, boundary);
    }

    /// A bit flip anywhere in a sealed chain prefix is either behind the
    /// snapshot (invisible to replay) or surfaces as an error / shorter
    /// prefix — never as silently wrong data.
    #[test]
    fn bitflip_never_yields_wrong_blocks(
        n in 4u32..16,
        flip_fraction in 0.0f64..1.0,
        bit in 0u8..8,
    ) {
        let scratch = Scratch::new(&format!("flip-{n}-{bit}"));
        let blocks = chain(n, 48);
        let big = StorageOptions {
            segment_bytes: u64::MAX,
            flush_buffer_bytes: 1,
            ..StorageOptions::compact_test()
        };
        {
            let mut store = DurableStore::open(scratch.path(), big.clone()).unwrap();
            for b in &blocks {
                store.append(b.clone()).unwrap();
            }
            store.sync().unwrap();
        }
        let _ = std::fs::remove_file(scratch.path().join("index.snap"));
        let seg = scratch.path().join("seg-000000.log");
        let mut bytes = std::fs::read(&seg).unwrap();
        let idx = ((bytes.len() - 1) as f64 * flip_fraction) as usize;
        bytes[idx] ^= 1 << bit;
        std::fs::write(&seg, &bytes).unwrap();

        match DurableStore::open(scratch.path(), big) {
            Err(_) => {} // detected corruption: acceptable
            Ok(store) => {
                // The flipped record (and everything after it) is dropped;
                // whatever survived must byte-match the originals.
                prop_assert!(store.len() < blocks.len());
                for b in &blocks[..store.len()] {
                    prop_assert_eq!(store.get(b.id.seq), Some(b.clone()));
                }
            }
        }
    }
}
