//! Compaction + recovery interplay of the group-commit shard log on the
//! shared segment core: with segment rolls and an active retention budget,
//! a `ShardLog` must recover every non-pruned chain **byte-identically**
//! after a crash — including a torn tail write — and the single-writer lock
//! must refuse a second live handle instead of corrupting the log.

use proptest::prelude::*;
use tldag_core::config::ProtocolConfig;
use tldag_core::error::TldagError;
use tldag_core::{BlockBody, BlockId, DataBlock, DigestEntry};
use tldag_crypto::schnorr::KeyPair;
use tldag_sim::NodeId;
use tldag_storage::{ShardLog, StorageOptions};

/// A scratch directory removed on drop (best-effort).
struct Scratch(std::path::PathBuf);

impl Scratch {
    fn new(name: &str) -> Self {
        let dir = std::env::temp_dir().join(format!("tldag-groupc-{name}-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        Scratch(dir)
    }

    fn path(&self) -> &std::path::Path {
        &self.0
    }
}

impl Drop for Scratch {
    fn drop(&mut self) {
        let _ = std::fs::remove_dir_all(&self.0);
    }
}

/// Linked per-owner chains, interleaved in generation order (seq-major),
/// exactly like the slot loop appends them into a shard log.
fn interleaved_chains(owners: u32, blocks_per_owner: u32, payload: usize) -> Vec<DataBlock> {
    let cfg = ProtocolConfig::test_default();
    let mut prev: Vec<Option<tldag_crypto::Digest>> = vec![None; owners as usize];
    let mut out = Vec::with_capacity((owners * blocks_per_owner) as usize);
    for seq in 0..blocks_per_owner {
        for owner in 0..owners {
            let digests = prev[owner as usize]
                .map(|digest| {
                    vec![DigestEntry {
                        origin: NodeId(owner),
                        digest,
                    }]
                })
                .unwrap_or_default();
            let block = DataBlock::create(
                &cfg,
                BlockId::new(NodeId(owner), seq),
                u64::from(seq),
                digests,
                BlockBody::new(vec![owner as u8 ^ seq as u8; payload], cfg.body_bits),
                &KeyPair::from_seed(u64::from(owner)),
            );
            prev[owner as usize] = Some(block.header_digest());
            out.push(block);
        }
    }
    out
}

fn tiny_segments(retain: Option<u64>) -> StorageOptions {
    StorageOptions {
        segment_bytes: 2 * 1024,
        flush_buffer_bytes: 1, // every append reaches the file: torn cuts bite
        retain_disk_bytes: retain,
        ..StorageOptions::default()
    }
}

#[test]
fn durable_store_and_shard_log_share_the_lock_guard() {
    let scratch = Scratch::new("lock");
    // ShardLog holds the directory; a DurableStore on the same directory is
    // the classic "two engines, one log" operator mistake.
    let log = ShardLog::open(scratch.path(), tiny_segments(None)).unwrap();
    let err = tldag_storage::DurableStore::open(scratch.path(), tiny_segments(None)).unwrap_err();
    assert!(
        matches!(err, TldagError::Locked { .. }),
        "expected Locked, got {err}"
    );
    let msg = err.to_string();
    assert!(msg.contains("locked by live process"), "{msg}");
    drop(log);
    // Released: the per-node engine can now legitimately take over the dir.
    let reopened = tldag_storage::DurableStore::open(scratch.path(), tiny_segments(None));
    // (The shard log's records are multiplexed, so the per-node engine
    // rejects them as out-of-order — what matters here is that the lock no
    // longer refuses the open attempt.)
    match reopened {
        Ok(_) | Err(TldagError::Corrupt(_)) => {}
        Err(other) => panic!("lock must be released on drop: {other}"),
    }
}

#[test]
fn budgeted_log_survives_clean_reopen_byte_identically() {
    let scratch = Scratch::new("clean");
    let blocks = interleaved_chains(3, 40, 48);
    let opts = tiny_segments(Some(6 * 1024));
    let floors: Vec<u32> = {
        let mut log = ShardLog::open(scratch.path(), opts.clone()).unwrap();
        for b in &blocks {
            log.append(b.clone()).unwrap();
        }
        log.sync().unwrap();
        (0..3).map(|o| log.pruned_floor_of(NodeId(o))).collect()
    };
    assert!(
        floors.iter().all(|&f| f > 0),
        "budget must prune: {floors:?}"
    );

    let log = ShardLog::open(scratch.path(), opts).unwrap();
    for owner in 0..3u32 {
        assert_eq!(log.pruned_floor_of(NodeId(owner)), floors[owner as usize]);
        assert_eq!(log.len_of(NodeId(owner)), 40);
        for b in blocks.iter().filter(|b| b.id.owner == NodeId(owner)) {
            let recovered = log.get_of(NodeId(owner), b.id.seq);
            if b.id.seq >= floors[owner as usize] {
                assert_eq!(recovered.as_ref(), Some(b), "retained block byte-identical");
            } else {
                assert_eq!(recovered, None, "pruned block stays pruned");
            }
        }
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(16))]

    /// The satellite property: a shard log with segment rolls and an active
    /// retention budget, crashed with a torn tail write, recovers every
    /// non-pruned chain byte-identically — each member chain comes back as
    /// a contiguous suffix `floor..recovered_len` of the original, with
    /// every surviving block equal to what was appended.
    #[test]
    fn torn_tail_crash_recovers_non_pruned_chains_byte_identically(
        owners in 2u32..5,
        blocks_per_owner in 8u32..28,
        payload in 8usize..80,
        budget_kib in 3u64..10,
        cut_back in 1u64..160,
    ) {
        let scratch = Scratch::new(&format!("torn-{owners}-{blocks_per_owner}-{payload}"));
        let blocks = interleaved_chains(owners, blocks_per_owner, payload);
        let opts = tiny_segments(Some(budget_kib * 1024));
        {
            let mut log = ShardLog::open(scratch.path(), opts.clone()).unwrap();
            for b in &blocks {
                log.append(b.clone()).unwrap();
            }
            log.sync().unwrap();
        }
        // Crash artifact: tear the tail segment mid-record.
        let mut segs: Vec<_> = std::fs::read_dir(scratch.path())
            .unwrap()
            .filter_map(|e| e.ok())
            .map(|e| e.path())
            .filter(|p| p.file_name().is_some_and(|n| {
                let n = n.to_string_lossy();
                n.starts_with("seg-") && n.ends_with(".log")
            }))
            .collect();
        segs.sort();
        let tail = segs.last().expect("tail exists");
        let len = std::fs::metadata(tail).unwrap().len();
        let cut = len.saturating_sub(cut_back);
        let file = std::fs::OpenOptions::new().write(true).open(tail).unwrap();
        file.set_len(cut).unwrap();
        drop(file);

        let log = ShardLog::open(scratch.path(), opts).unwrap();
        for owner in 0..owners {
            let node = NodeId(owner);
            let floor = log.pruned_floor_of(node);
            let recovered_len = log.len_of(node) as u32;
            prop_assert!(recovered_len <= blocks_per_owner);
            prop_assert!(floor <= recovered_len);
            // Non-pruned, non-torn-away blocks are byte-identical.
            for b in blocks.iter().filter(|b| b.id.owner == node) {
                let recovered = log.get_of(node, b.id.seq);
                if b.id.seq >= floor && b.id.seq < recovered_len {
                    prop_assert_eq!(recovered.as_ref(), Some(b));
                    let by_digest = log.by_header_digest_of(node, &b.header_digest());
                    prop_assert_eq!(by_digest.as_ref(), Some(b));
                } else {
                    prop_assert_eq!(recovered, None);
                }
            }
        }
    }

    /// Compaction never violates the budget by more than one tail segment
    /// and never prunes a chain head, for arbitrary member/size mixes.
    #[test]
    fn budget_is_honoured_with_head_guard(
        owners in 1u32..6,
        blocks_per_owner in 6u32..24,
        payload in 8usize..96,
        budget_kib in 3u64..12,
    ) {
        let scratch = Scratch::new(&format!("budget-{owners}-{blocks_per_owner}-{payload}"));
        let blocks = interleaved_chains(owners, blocks_per_owner, payload);
        let opts = tiny_segments(Some(budget_kib * 1024));
        let mut log = ShardLog::open(scratch.path(), opts.clone()).unwrap();
        for b in &blocks {
            log.append(b.clone()).unwrap();
        }
        log.sync().unwrap();
        prop_assert!(
            log.disk_usage_bytes() <= budget_kib * 1024 + opts.segment_bytes,
            "usage {} exceeds budget {} + one segment",
            log.disk_usage_bytes(),
            budget_kib * 1024
        );
        for owner in 0..owners {
            let node = NodeId(owner);
            prop_assert_eq!(log.len_of(node) as u32, blocks_per_owner);
            // The head guard: the newest block is always retrievable.
            prop_assert!(log.get_of(node, blocks_per_owner - 1).is_some());
        }
    }
}
