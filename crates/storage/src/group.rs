//! Group-commit storage: one multiplexed block log per **shard** of nodes.
//!
//! The per-node [`DurableStore`](crate::engine::DurableStore) issues one
//! `fsync` per node per sync point; at the 10⁴–10⁵-node scale the ROADMAP
//! targets, that makes the sync syscall — not the protocol — the slot-loop
//! bottleneck in disk mode. This module batches durability the way real
//! databases do (group commit): all nodes of a shard append CRC-framed
//! records into **one** shared segmented log, staged writes accumulate per
//! shard, and a slot-boundary sync costs **one** `fsync` per shard per slot
//! no matter how many nodes the shard holds.
//!
//! ## Layout
//!
//! Since the segmented-core refactor each shard owns a **directory** of
//! segment files (the same [`crate::segment::SegmentSet`] the per-node
//! engine uses), so the shard log rolls and compacts exactly like a
//! per-node log:
//!
//! ```text
//! root/
//!   shard-0000/
//!     seg-000000.log   sealed segment (records of the shard's node band)
//!     seg-000001.log   tail segment
//!     LOCK             single-writer guard
//!   shard-0001/        …  (bands follow Sharding::chunk_ranges, so each
//!                          engine worker thread owns one log)
//! ```
//!
//! Records reuse the [`crate::record`] frame; no extra framing is needed
//! because the canonical block encoding already carries the owner id
//! ([`DataBlock::id`]), which is what demultiplexes the log back into
//! per-node chains on recovery.
//!
//! ## Retention
//!
//! With [`StorageOptions::retain_disk_bytes`] set, a segment roll compacts
//! the log to the budget: the oldest sealed segment is dropped **only** when
//! every member chain keeps its newest retained block in a later segment
//! (dropping a chain head would break that node's own prev-digest linkage).
//! Because appends from all members interleave in generation order, a
//! dropped segment removes a *prefix* of every member chain — each member's
//! index is pruned below its first sequence number stored beyond the dropped
//! segment, and [`ShardLog::pruned_floor_of`] reports the per-member floor.
//! Recovery demultiplexes the surviving segments: the first record seen for
//! an owner re-establishes that chain's base.
//!
//! ## Durability contract
//!
//! [`ShardLog::sync`] is idempotent per batch: the first member handle that
//! syncs after an append flushes the shared buffer and `fsync`s the file;
//! subsequent syncs in the same slot see a clean log and do nothing. A crash
//! (dropping the log without sync) loses at most the records staged since
//! the last sync — for [`SyncPolicy::PerSlot`](tldag_core::store::SyncPolicy)
//! that is at most the current slot, and **never** a block whose sync point
//! already returned.
//!
//! Unlike the per-node engine, one crash takes down a whole shard *process*:
//! `TldagNetwork::crash_node` only drops the node's handle, so its staged
//! records survive in the shard log held by its neighbours' handles, exactly
//! like a thread dying inside a surviving storage process. Dropping every
//! handle (and the factory) models the whole process dying.

use crate::index::BlockIndex;
use crate::record;
use crate::segment::{SegmentSet, StorageOptions};
use std::collections::BTreeMap;
use std::fs;
use std::path::{Path, PathBuf};
use std::sync::{Arc, Mutex};
use tldag_core::config::ProtocolConfig;
use tldag_core::error::TldagError;
use tldag_core::store::{BackendFactory, BlockBackend, TrustCache};
use tldag_core::{BlockId, DataBlock};
use tldag_crypto::Digest;
use tldag_sim::engine::Sharding;
use tldag_sim::{Bits, NodeId};

/// Default staging-buffer size that triggers a (non-fsync) write to the file.
pub const DEFAULT_FLUSH_BUFFER_BYTES: usize = 256 * 1024;

/// A multiplexed, group-committed block log shared by every node of a shard.
///
/// Appends from any member node are staged into one buffer and indexed
/// per-node; [`ShardLog::sync`] makes the whole batch durable with a single
/// `fsync`. Reads are index-driven and served from the segment files (or the
/// staging buffer for records not yet written out).
#[derive(Debug)]
pub struct ShardLog {
    set: SegmentSet,
    opts: StorageOptions,
    /// Whether any record since the last fsync is not yet durable. This flag
    /// is what collapses N member syncs into one fsync per batch.
    dirty: bool,
    /// Per-node chain indexes over the shared log.
    indexes: BTreeMap<u32, BlockIndex>,
    /// Per-node durable chain length (next seq covered by the last fsync).
    durable: BTreeMap<u32, u32>,
}

impl ShardLog {
    /// Opens (or creates) the shard log in directory `dir`, replaying the
    /// surviving segments into per-node indexes. The segmented core handles
    /// torn-tail truncation (an invalid frame in the tail segment marks a
    /// crash artifact) and treats sealed-segment damage as fatal.
    ///
    /// # Errors
    ///
    /// [`TldagError::Locked`] when another live handle owns the directory,
    /// [`TldagError::Storage`] on I/O failure, [`TldagError::Corrupt`] when
    /// a checksummed record decodes to an out-of-order sequence number
    /// (which no torn write can produce) or a sealed segment is damaged.
    pub fn open(dir: impl Into<PathBuf>, opts: StorageOptions) -> Result<Self, TldagError> {
        let mut set = SegmentSet::open(dir, "seg", opts.segment_bytes, opts.flush_buffer_bytes)?;
        let mut indexes: BTreeMap<u32, BlockIndex> = BTreeMap::new();
        set.replay(None, &mut |block, location| {
            let owner = block.id.owner.0;
            let index = indexes.entry(owner).or_default();
            if index.retained() == 0 && index.base_seq() == 0 && block.id.seq != 0 {
                // Compacted log: the first surviving record of this owner
                // defines its chain base.
                index.start_at(block.id.seq);
            }
            let expected = index.next_seq();
            if block.id.seq != expected {
                return Err(TldagError::Corrupt(format!(
                    "shard segment {}: node {owner} expected seq {expected}, found {}",
                    location.segment, block.id.seq
                )));
            }
            index.push(&block, location);
            Ok(())
        })?;
        // Everything replayed from the files was covered by a prior fsync
        // (or is about to be overwritten) — report it as durable, like the
        // per-node engine does after recovery.
        let durable = indexes
            .iter()
            .map(|(&n, idx)| (n, idx.next_seq()))
            .collect();

        Ok(ShardLog {
            set,
            opts,
            dirty: false,
            indexes,
            durable,
        })
    }

    /// The directory holding the log's segments.
    pub fn dir(&self) -> &Path {
        self.set.dir()
    }

    /// Registers `node` as a member (so empty chains have an index and the
    /// resident-memory attribution knows the member count).
    pub fn register(&mut self, node: NodeId) {
        self.indexes.entry(node.0).or_default();
        self.durable.entry(node.0).or_insert(0);
    }

    /// Number of member nodes (registered or recovered).
    pub fn members(&self) -> usize {
        self.indexes.len()
    }

    /// Physical fsync calls issued so far.
    pub fn fsync_count(&self) -> u64 {
        self.set.fsync_count()
    }

    /// Number of live segment files backing the shared log.
    pub fn segment_count(&self) -> u64 {
        self.set.segment_count()
    }

    /// Total bytes on disk (flushed) plus the pending staging buffer.
    pub fn disk_usage_bytes(&self) -> u64 {
        self.set.disk_usage_bytes()
    }

    /// Chain length of `node`.
    pub fn len_of(&self, node: NodeId) -> usize {
        self.indexes
            .get(&node.0)
            .map_or(0, |idx| idx.next_seq() as usize)
    }

    /// Durable chain length of `node` (blocks covered by the last fsync).
    pub fn durable_len_of(&self, node: NodeId) -> usize {
        self.durable.get(&node.0).copied().unwrap_or(0) as usize
    }

    /// First sequence number of `node`'s chain still retained (> 0 once
    /// compaction has pruned its prefix).
    pub fn pruned_floor_of(&self, node: NodeId) -> u32 {
        self.indexes.get(&node.0).map_or(0, BlockIndex::base_seq)
    }

    /// Appends the next block of its owner's chain. A segment roll under an
    /// active [`StorageOptions::retain_disk_bytes`] budget triggers
    /// compaction.
    ///
    /// # Errors
    ///
    /// [`TldagError::OutOfOrderAppend`] when the block skips a sequence
    /// number, [`TldagError::Storage`] when the medium fails.
    pub fn append(&mut self, block: DataBlock) -> Result<(), TldagError> {
        let index = self.indexes.entry(block.id.owner.0).or_default();
        let expected = index.next_seq();
        if block.id.seq != expected {
            return Err(TldagError::OutOfOrderAppend {
                expected,
                got: block.id.seq,
            });
        }
        let rec = record::encode_record(&block);
        let outcome = self.set.append_record(&rec)?;
        self.indexes
            .get_mut(&block.id.owner.0)
            .expect("index created above")
            .push(&block, outcome.location);
        self.dirty = true;
        if outcome.rolled {
            if let Some(budget) = self.opts.retain_disk_bytes {
                self.compact_to_budget(budget)?;
            }
        }
        Ok(())
    }

    /// Drops whole sealed segments, oldest first, until disk usage is within
    /// `max_bytes`. A segment is only droppable when **every** member chain
    /// keeps its newest retained block in a later segment (a node's own
    /// prev-digest linkage needs `latest()`); each member's index is pruned
    /// below its first sequence number stored beyond the dropped segment.
    /// Returns the number of blocks pruned across all members.
    ///
    /// # Errors
    ///
    /// [`TldagError::Storage`] on I/O failure.
    pub fn compact_to_budget(&mut self, max_bytes: u64) -> Result<usize, TldagError> {
        let mut pruned_total = 0usize;
        let mut synced_for_drop = false;
        while self.set.disk_usage_bytes() > max_bytes {
            let Some(oldest) = self.set.oldest_sealed() else {
                break; // only the tail is left
            };
            // Per member: the first retained seq located beyond `oldest`
            // becomes the new base. A member whose retained head still
            // lives in `oldest` blocks the drop entirely.
            let mut cuts: Vec<(u32, u32)> = Vec::new();
            let mut head_guard = false;
            for (&owner, index) in &self.indexes {
                if index.retained() == 0 {
                    continue; // empty chain, nothing in any segment
                }
                let head = index
                    .entry(index.next_seq() - 1)
                    .expect("retained head exists");
                if head.location.segment <= oldest {
                    head_guard = true;
                    break;
                }
                let new_base = (index.base_seq()..index.next_seq())
                    .find(|&seq| {
                        index
                            .entry(seq)
                            .is_some_and(|e| e.location.segment > oldest)
                    })
                    .expect("head lies beyond the dropped segment");
                cuts.push((owner, new_base));
            }
            if head_guard {
                break;
            }
            // The head guard trusts index entries whose records may still
            // sit in the volatile staging buffer (the roll-triggering
            // append). Make the tail durable BEFORE deleting any sealed
            // segment, or a crash right after the deletion could lose a
            // member's only fsynced block together with its buffered head.
            if !synced_for_drop {
                self.set.sync()?;
                self.dirty = false;
                for (&node, index) in &self.indexes {
                    self.durable.insert(node, index.next_seq());
                }
                synced_for_drop = true;
            }
            for (owner, new_base) in cuts {
                pruned_total += self
                    .indexes
                    .get_mut(&owner)
                    .expect("owner indexed")
                    .prune_below(new_base);
            }
            // Dropping oldest-first keeps the surviving segment set
            // contiguous even if a crash interrupts between deletions, so
            // recovery (a full scan) never sees a gap in any member chain.
            self.set.retire_segment(oldest);
            self.set.delete_segment_file(oldest)?;
        }
        Ok(pruned_total)
    }

    /// Makes every staged append durable with (at most) one `fsync`.
    ///
    /// The first member to sync after an append pays the syscall; everyone
    /// else in the same batch gets a no-op. This is the group-commit dedup
    /// that turns N per-node slot syncs into one fsync per shard per slot.
    ///
    /// # Errors
    ///
    /// [`TldagError::Storage`] when the medium fails.
    pub fn sync(&mut self) -> Result<(), TldagError> {
        if !self.dirty {
            return Ok(());
        }
        self.set.sync()?;
        self.dirty = false;
        for (&node, index) in &self.indexes {
            self.durable.insert(node, index.next_seq());
        }
        Ok(())
    }

    /// The block at `seq` of `node`'s chain (`None` below the pruned floor
    /// or beyond the tip).
    pub fn get_of(&self, node: NodeId, seq: u32) -> Option<DataBlock> {
        let entry = self.indexes.get(&node.0)?.entry(seq)?;
        // Index and log are maintained together; a decode failure here is
        // real corruption, which the simulator treats as fatal.
        Some(
            self.set
                .read(entry.location)
                .expect("indexed shard record must decode"),
        )
    }

    /// Looks a block of `node`'s chain up by its header digest.
    pub fn by_header_digest_of(&self, node: NodeId, digest: &Digest) -> Option<DataBlock> {
        let seq = self.indexes.get(&node.0)?.seq_of_digest(digest)?;
        self.get_of(node, seq)
    }

    fn oldest_child_of(&self, node: NodeId, target: &Digest) -> Option<DataBlock> {
        let seq = self.indexes.get(&node.0)?.oldest_child_of(target)?;
        self.get_of(node, seq)
    }

    fn children_of(&self, node: NodeId, target: &Digest) -> Vec<DataBlock> {
        let Some(index) = self.indexes.get(&node.0) else {
            return Vec::new();
        };
        index
            .children_of(target)
            .into_iter()
            .filter_map(|seq| self.get_of(node, seq))
            .collect()
    }

    fn iter_of(&self, node: NodeId) -> Vec<DataBlock> {
        let Some(index) = self.indexes.get(&node.0) else {
            return Vec::new();
        };
        (index.base_seq()..index.next_seq())
            .filter_map(|seq| self.get_of(node, seq))
            .collect()
    }

    fn iter_meta_of(&self, node: NodeId) -> Vec<(BlockId, u64)> {
        let Some(index) = self.indexes.get(&node.0) else {
            return Vec::new();
        };
        (index.base_seq()..index.next_seq())
            .filter_map(|seq| index.entry(seq).map(|e| (BlockId::new(node, seq), e.time)))
            .collect()
    }

    fn logical_bits_of(&self, node: NodeId, cfg: &ProtocolConfig) -> Bits {
        self.indexes
            .get(&node.0)
            .map_or(Bits::ZERO, |idx| idx.logical_bits(cfg))
    }

    /// Approximate resident bytes of the whole log (indexes + staging
    /// buffer).
    pub fn resident_bytes(&self) -> usize {
        self.set.buffered_bytes()
            + self
                .indexes
                .values()
                .map(BlockIndex::resident_bytes)
                .sum::<usize>()
    }
}

/// One node's [`BlockBackend`] view over a shared [`ShardLog`].
///
/// Handles of the same shard share the log through an `Arc<Mutex<…>>`;
/// within the shard-parallel engine each shard is driven by one worker
/// thread, so the mutex is effectively uncontended.
#[derive(Debug)]
pub struct ShardedNodeStore {
    log: Arc<Mutex<ShardLog>>,
    node: NodeId,
}

impl ShardedNodeStore {
    /// Creates a member handle for `node` and registers it with the log.
    pub fn new(log: Arc<Mutex<ShardLog>>, node: NodeId) -> Self {
        log.lock().expect("shard log lock").register(node);
        ShardedNodeStore { log, node }
    }

    fn log(&self) -> std::sync::MutexGuard<'_, ShardLog> {
        self.log.lock().expect("shard log lock")
    }
}

impl BlockBackend for ShardedNodeStore {
    fn append(&mut self, block: DataBlock) -> Result<(), TldagError> {
        if block.id.owner != self.node {
            return Err(TldagError::Storage(format!(
                "node {} cannot append a block owned by {}",
                self.node, block.id.owner
            )));
        }
        self.log().append(block)
    }

    fn len(&self) -> usize {
        self.log().len_of(self.node)
    }

    fn get(&self, seq: u32) -> Option<DataBlock> {
        self.log().get_of(self.node, seq)
    }

    fn by_header_digest(&self, digest: &Digest) -> Option<DataBlock> {
        self.log().by_header_digest_of(self.node, digest)
    }

    fn oldest_child_of(&self, target: &Digest) -> Option<DataBlock> {
        self.log().oldest_child_of(self.node, target)
    }

    fn children_of(&self, target: &Digest) -> Vec<DataBlock> {
        self.log().children_of(self.node, target)
    }

    fn iter(&self) -> Box<dyn Iterator<Item = DataBlock> + '_> {
        Box::new(self.log().iter_of(self.node).into_iter())
    }

    fn iter_meta(&self) -> Box<dyn Iterator<Item = (BlockId, u64)> + '_> {
        Box::new(self.log().iter_meta_of(self.node).into_iter())
    }

    fn logical_bits(&self, cfg: &ProtocolConfig) -> Bits {
        self.log().logical_bits_of(self.node, cfg)
    }

    fn resident_bytes(&self) -> usize {
        let log = self.log();
        log.resident_bytes() / log.members().max(1)
    }

    fn sync(&mut self) -> Result<(), TldagError> {
        self.log().sync()
    }

    fn durable_len(&self) -> usize {
        self.log().durable_len_of(self.node)
    }

    fn pruned_floor(&self) -> u32 {
        self.log().pruned_floor_of(self.node)
    }

    /// The **shared** shard log's count — see the trait docs for the
    /// double-counting caveat when summing over members.
    fn fsync_count(&self) -> u64 {
        self.log().fsync_count()
    }

    /// The **shared** shard log's segment count (same caveat as
    /// [`BlockBackend::fsync_count`] when summing over members).
    fn segment_count(&self) -> u64 {
        self.log().segment_count()
    }
}

/// Provisions group-committed storage: `shards` shard logs under a root
/// directory, each shared by one **contiguous band** of node ids — the same
/// bands `tldag_sim::engine::Sharding::chunk_ranges` deals to the engine's
/// worker threads. With the shard count equal to `--threads`, every worker
/// appends only to its own shard's log, so the log mutexes stay
/// uncontended and the record order within each file is the worker's own
/// deterministic append order.
///
/// Implements [`BackendFactory`], so `TldagNetwork::with_factory` can run
/// any experiment with one fsync per shard per sync point. Trust caches
/// (`H_i`) are persisted per node under `root/trust/` when the network opts
/// in.
#[derive(Debug)]
pub struct ShardedDiskFactory {
    root: PathBuf,
    sharding: Sharding,
    /// Node count the bands were sized for (joiners beyond it land in the
    /// last shard). Must be the same on reattach for chains to be found.
    nodes: usize,
    opts: StorageOptions,
    logs: Vec<Option<Arc<Mutex<ShardLog>>>>,
}

impl ShardedDiskFactory {
    /// A **fresh** factory rooted at `root`, with `shards` shard logs sized
    /// for `nodes` node ids: shard-log directories (and persisted trust
    /// caches) left by a previous run are deleted. Only `shard-*`
    /// directories, legacy `shard-*.log` files, and the `trust/` directory
    /// are touched — the root may hold other data (it is often a
    /// user-supplied `--storage-dir`).
    ///
    /// # Panics
    ///
    /// Panics if `shards == 0`.
    pub fn new(root: impl Into<PathBuf>, shards: usize, nodes: usize) -> Self {
        let root = root.into();
        if let Ok(entries) = fs::read_dir(&root) {
            for entry in entries.flatten() {
                let name = entry.file_name();
                let Some(name) = name.to_str() else { continue };
                let is_shard_dir = name.starts_with("shard-") && entry.path().is_dir();
                let is_legacy_log = name.starts_with("shard-") && name.ends_with(".log");
                if is_shard_dir {
                    let _ = fs::remove_dir_all(entry.path());
                } else if is_legacy_log {
                    let _ = fs::remove_file(entry.path());
                }
            }
        }
        let _ = fs::remove_dir_all(root.join("trust"));
        Self::attach(root, shards, nodes)
    }

    /// Attaches to an existing root **without wiping**, recovering whatever
    /// the shard logs persisted — the whole-process restart path. `shards`
    /// and `nodes` must match the values the directory was created with,
    /// or chains will be looked up in the wrong log.
    ///
    /// # Panics
    ///
    /// Panics if `shards == 0`.
    pub fn attach(root: impl Into<PathBuf>, shards: usize, nodes: usize) -> Self {
        assert!(shards > 0, "need at least one shard");
        ShardedDiskFactory {
            root: root.into(),
            sharding: Sharding::threads(shards),
            nodes,
            opts: StorageOptions {
                flush_buffer_bytes: DEFAULT_FLUSH_BUFFER_BYTES,
                ..StorageOptions::default()
            },
            logs: vec![None; shards.min(nodes).max(1)],
        }
    }

    /// Overrides the engine options (segment size, flush threshold,
    /// retention budget) used for every shard log opened from now on.
    pub fn with_options(mut self, opts: StorageOptions) -> Self {
        self.opts = opts;
        self
    }

    /// Overrides the staging-buffer flush threshold (tests use a large value
    /// to keep unsynced records in memory, so a simulated crash loses them).
    pub fn with_flush_buffer(mut self, bytes: usize) -> Self {
        self.opts.flush_buffer_bytes = bytes.max(1);
        self
    }

    /// The shard a node's chain lives in: the contiguous band of
    /// [`Sharding::chunk_ranges`] over the sized node count. Stable under
    /// joins — ids at or beyond the sized count use the last shard.
    pub fn shard_of(&self, node: NodeId) -> usize {
        self.sharding.shard_of(self.nodes, node.index())
    }

    /// Number of shard logs (capped at the sized node count).
    pub fn shards(&self) -> usize {
        self.logs.len()
    }

    /// The shard log directory for `shard`.
    pub fn shard_dir(&self, shard: usize) -> PathBuf {
        self.root.join(format!("shard-{shard:04}"))
    }

    fn trust_path(&self, node: NodeId) -> PathBuf {
        self.root
            .join("trust")
            .join(format!("node-{}.cache", node.0))
    }

    /// Handles on every currently open shard log (experiments read fsync
    /// counts through these after moving the factory into the network).
    pub fn open_logs(&self) -> Vec<Arc<Mutex<ShardLog>>> {
        self.logs.iter().flatten().cloned().collect()
    }

    /// Total fsyncs across all open shard logs.
    pub fn total_fsyncs(&self) -> u64 {
        self.open_logs()
            .iter()
            .map(|l| l.lock().expect("shard log lock").fsync_count())
            .sum()
    }

    fn log_for(&mut self, shard: usize) -> Result<Arc<Mutex<ShardLog>>, TldagError> {
        if let Some(log) = &self.logs[shard] {
            return Ok(Arc::clone(log));
        }
        let log = Arc::new(Mutex::new(ShardLog::open(
            self.shard_dir(shard),
            self.opts.clone(),
        )?));
        self.logs[shard] = Some(Arc::clone(&log));
        Ok(log)
    }
}

impl BackendFactory for ShardedDiskFactory {
    /// Attaches `node` to its shard log (creating the log on first use).
    /// Unlike `DiskFactory::create`, nothing is wiped here — the wipe
    /// happened once in [`ShardedDiskFactory::new`] — because a joining
    /// node must not erase its shard-mates' chains.
    ///
    /// # Panics
    ///
    /// Panics when the shard log cannot be opened — a simulation cannot
    /// proceed without its storage root.
    fn create(&mut self, node: NodeId) -> Box<dyn BlockBackend> {
        let shard = self.shard_of(node);
        let log = self
            .log_for(shard)
            .unwrap_or_else(|e| panic!("cannot open shard log {shard}: {e}"));
        Box::new(ShardedNodeStore::new(log, node))
    }

    /// Reattaches `node` to its shard log. While the factory (or any member
    /// handle) is alive the log keeps its staged state — the shard process
    /// survived the node's crash; a factory built with
    /// [`ShardedDiskFactory::attach`] over a cold directory recovers only
    /// what was fsynced.
    fn reopen(&mut self, node: NodeId) -> Result<Box<dyn BlockBackend>, TldagError> {
        let log = self.log_for(self.shard_of(node))?;
        Ok(Box::new(ShardedNodeStore::new(log, node)))
    }

    fn save_trust_cache(&mut self, node: NodeId, cache: &TrustCache) -> Result<(), TldagError> {
        crate::engine::write_trust_cache(&self.trust_path(node), cache)
    }

    fn load_trust_cache(&mut self, node: NodeId) -> Result<Option<TrustCache>, TldagError> {
        Ok(crate::engine::read_trust_cache(&self.trust_path(node)))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use tldag_core::config::ProtocolConfig;
    use tldag_core::BlockBody;
    use tldag_crypto::schnorr::KeyPair;

    fn block(owner: u32, seq: u32) -> DataBlock {
        block_with_payload(owner, seq, 2)
    }

    fn block_with_payload(owner: u32, seq: u32, payload: usize) -> DataBlock {
        let cfg = ProtocolConfig::test_default();
        DataBlock::create(
            &cfg,
            BlockId::new(NodeId(owner), seq),
            u64::from(seq),
            vec![],
            BlockBody::new(vec![owner as u8 ^ seq as u8; payload], cfg.body_bits),
            &KeyPair::from_seed(u64::from(owner)),
        )
    }

    fn temp_dir(tag: &str) -> PathBuf {
        let dir = std::env::temp_dir().join(format!("tldag-group-{tag}-{}", std::process::id()));
        let _ = fs::remove_dir_all(&dir);
        dir
    }

    fn opts(flush_buffer_bytes: usize) -> StorageOptions {
        StorageOptions {
            flush_buffer_bytes,
            ..StorageOptions::default()
        }
    }

    #[test]
    fn multiplexed_chains_round_trip() {
        let dir = temp_dir("mux");
        let mut log = ShardLog::open(dir.join("shard"), opts(64)).unwrap();
        for seq in 0..3 {
            log.append(block(1, seq)).unwrap();
            log.append(block(5, seq)).unwrap();
        }
        assert_eq!(log.len_of(NodeId(1)), 3);
        assert_eq!(log.len_of(NodeId(5)), 3);
        assert_eq!(
            log.get_of(NodeId(5), 2).unwrap().id,
            BlockId::new(NodeId(5), 2)
        );
        assert_eq!(log.get_of(NodeId(9), 0), None);
        let err = log.append(block(1, 7)).unwrap_err();
        assert!(matches!(
            err,
            TldagError::OutOfOrderAppend {
                expected: 3,
                got: 7
            }
        ));
        drop(log);
        fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn sync_is_deduplicated_per_batch() {
        let dir = temp_dir("dedup");
        let mut log = ShardLog::open(dir.join("shard"), opts(1 << 20)).unwrap();
        log.append(block(0, 0)).unwrap();
        log.append(block(2, 0)).unwrap();
        log.sync().unwrap();
        log.sync().unwrap(); // second member of the same slot: no-op
        log.sync().unwrap();
        assert_eq!(log.fsync_count(), 1, "one fsync per batch");
        assert_eq!(log.durable_len_of(NodeId(0)), 1);
        assert_eq!(log.durable_len_of(NodeId(2)), 1);
        log.append(block(0, 1)).unwrap();
        assert_eq!(log.durable_len_of(NodeId(0)), 1, "staged, not durable");
        log.sync().unwrap();
        assert_eq!(log.fsync_count(), 2);
        assert_eq!(log.durable_len_of(NodeId(0)), 2);
        drop(log);
        fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn reopen_recovers_synced_records_only() {
        let dir = temp_dir("recover");
        let path = dir.join("shard");
        {
            // Large flush buffer: unsynced records stay in process memory,
            // so dropping the log models a crash that loses them.
            let mut log = ShardLog::open(&path, opts(1 << 20)).unwrap();
            log.append(block(0, 0)).unwrap();
            log.append(block(2, 0)).unwrap();
            log.sync().unwrap();
            log.append(block(0, 1)).unwrap(); // never synced
        }
        let log = ShardLog::open(&path, opts(1 << 20)).unwrap();
        assert_eq!(log.len_of(NodeId(0)), 1, "unsynced append lost");
        assert_eq!(log.len_of(NodeId(2)), 1);
        assert_eq!(log.durable_len_of(NodeId(0)), 1);
        drop(log);
        fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn torn_tail_is_truncated() {
        let dir = temp_dir("torn");
        let path = dir.join("shard");
        {
            let mut log = ShardLog::open(&path, opts(1)).unwrap();
            log.append(block(0, 0)).unwrap();
            log.append(block(0, 1)).unwrap();
            log.sync().unwrap();
        }
        // Tear the last record mid-frame.
        let seg = path.join("seg-000000.log");
        let len = fs::metadata(&seg).unwrap().len();
        let file = fs::OpenOptions::new().write(true).open(&seg).unwrap();
        file.set_len(len - 3).unwrap();
        drop(file);
        let log = ShardLog::open(&path, opts(1)).unwrap();
        assert_eq!(log.len_of(NodeId(0)), 1, "torn record discarded");
        assert!(
            fs::metadata(&seg).unwrap().len() < len - 3,
            "file truncated"
        );
        drop(log);
        fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn two_live_handles_on_one_shard_dir_are_refused() {
        let dir = temp_dir("locked");
        let first = ShardLog::open(dir.join("shard"), opts(64)).unwrap();
        let err = ShardLog::open(dir.join("shard"), opts(64)).unwrap_err();
        assert!(matches!(err, TldagError::Locked { .. }), "{err}");
        drop(first);
        fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn retention_budget_prunes_prefixes_and_recovers_bases() {
        let dir = temp_dir("retention");
        let path = dir.join("shard");
        let small = StorageOptions {
            segment_bytes: 2 * 1024,
            flush_buffer_bytes: 1,
            retain_disk_bytes: Some(4 * 1024),
            ..StorageOptions::default()
        };
        let rounds = 60u32;
        {
            let mut log = ShardLog::open(&path, small.clone()).unwrap();
            for seq in 0..rounds {
                log.append(block(0, seq)).unwrap();
                log.append(block(1, seq)).unwrap();
            }
            log.sync().unwrap();
            assert!(
                log.disk_usage_bytes() <= 4 * 1024 + 2 * 1024,
                "budget bounds disk usage up to one tail segment of slack"
            );
            for owner in [0u32, 1] {
                let floor = log.pruned_floor_of(NodeId(owner));
                assert!(floor > 0, "node {owner} must have pruned its prefix");
                assert_eq!(log.len_of(NodeId(owner)), rounds as usize);
                assert_eq!(log.get_of(NodeId(owner), floor - 1), None);
                assert!(log.get_of(NodeId(owner), floor).is_some());
                // The chain head always survives (head guard).
                assert!(log.get_of(NodeId(owner), rounds - 1).is_some());
            }
        }
        // Recovery re-derives the same floors from the surviving segments.
        let log = ShardLog::open(&path, small).unwrap();
        for owner in [0u32, 1] {
            assert!(log.pruned_floor_of(NodeId(owner)) > 0);
            assert_eq!(log.len_of(NodeId(owner)), rounds as usize);
            assert!(log.get_of(NodeId(owner), rounds - 1).is_some());
        }
        drop(log);
        fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn compaction_never_sacrifices_durable_blocks_to_a_buffered_head() {
        // Regression: the head guard trusts index entries whose records may
        // only exist in the volatile staging buffer (the roll-triggering
        // append). Compaction must make the tail durable before deleting a
        // sealed segment, or a crash loses both the deleted durable block
        // and the buffered head that justified deleting it.
        let dir = temp_dir("durable-head");
        let path = dir.join("shard");
        let opts = StorageOptions {
            segment_bytes: 1024,
            flush_buffer_bytes: 1 << 20, // staged records stay in memory
            retain_disk_bytes: Some(2 * 1024),
            ..StorageOptions::default()
        };
        {
            let mut log = ShardLog::open(&path, opts.clone()).unwrap();
            log.append(block(0, 0)).unwrap();
            log.sync().unwrap();
            assert_eq!(log.durable_len_of(NodeId(0)), 1);
            // Filler pushes usage past the budget, but node 0's head still
            // sits in segment 0, so the head guard blocks every compaction.
            for seq in 0..20 {
                log.append(block(1, seq)).unwrap();
            }
            assert_eq!(log.pruned_floor_of(NodeId(0)), 0, "guard must hold");
            // Node 0's big seq-1 record triggers the roll itself: at
            // compaction time it is the only record in the staging buffer,
            // and it is what unblocks pruning node 0's durable seq 0.
            log.append(block_with_payload(0, 1, 900)).unwrap();
            assert!(
                log.pruned_floor_of(NodeId(0)) > 0,
                "compaction must prune node 0's prefix for this test to bite"
            );
            // Crash: drop without sync — the staging buffer dies with us.
        }
        let log = ShardLog::open(&path, opts).unwrap();
        assert_eq!(
            log.len_of(NodeId(0)),
            2,
            "node 0's chain must survive: seq 0 was durable before compaction \
traded it for seq 1"
        );
        assert!(log.get_of(NodeId(0), 1).is_some());
        assert_eq!(log.pruned_floor_of(NodeId(0)), 1);
        drop(log);
        fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn factory_routes_nodes_to_shards() {
        let dir = temp_dir("factory");
        let mut factory = ShardedDiskFactory::new(&dir, 2, 4);
        let mut stores: Vec<Box<dyn BlockBackend>> =
            (0..4).map(|i| factory.create(NodeId(i))).collect();
        for (i, store) in stores.iter_mut().enumerate() {
            store.append(block(i as u32, 0)).unwrap();
        }
        for store in &mut stores {
            store.sync().unwrap();
        }
        // 4 nodes, 2 shards, 1 batch: exactly 2 fsyncs.
        assert_eq!(factory.total_fsyncs(), 2);
        assert_eq!(factory.open_logs().len(), 2);
        assert_eq!(factory.shard_of(NodeId(3)), 1);
        for store in &stores {
            assert_eq!(store.durable_len(), 1);
        }
        drop(stores);
        drop(factory);
        fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn fresh_factory_wipes_only_its_own_shard_state() {
        let dir = temp_dir("wipe");
        fs::create_dir_all(dir.join("shard-0000")).unwrap();
        fs::write(dir.join("precious.txt"), b"user data").unwrap();
        fs::write(dir.join("shard-0000").join("seg-000000.log"), b"stale").unwrap();
        fs::write(dir.join("shard-0001.log"), b"legacy single-file log").unwrap();
        fs::create_dir_all(dir.join("trust")).unwrap();
        fs::write(dir.join("trust").join("node-0.cache"), b"stale").unwrap();
        let _factory = ShardedDiskFactory::new(&dir, 2, 4);
        assert!(
            dir.join("precious.txt").exists(),
            "unrelated files must survive"
        );
        assert!(
            !dir.join("shard-0000").exists(),
            "stale shard directories are wiped"
        );
        assert!(
            !dir.join("shard-0001.log").exists(),
            "legacy shard logs are wiped"
        );
        assert!(!dir.join("trust").exists(), "stale trust caches are wiped");
        fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn wrong_owner_append_is_refused() {
        let dir = temp_dir("owner");
        let mut factory = ShardedDiskFactory::new(&dir, 1, 4);
        let mut store = factory.create(NodeId(0));
        let err = store.append(block(1, 0)).unwrap_err();
        assert!(err.to_string().contains("owned by"), "{err}");
        drop(store);
        drop(factory);
        fs::remove_dir_all(&dir).unwrap();
    }
}
