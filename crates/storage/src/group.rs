//! Group-commit storage: one multiplexed block log per **shard** of nodes.
//!
//! The per-node [`DurableStore`](crate::engine::DurableStore) issues one
//! `fsync` per node per sync point; at the 10⁴–10⁵-node scale the ROADMAP
//! targets, that makes the sync syscall — not the protocol — the slot-loop
//! bottleneck in disk mode. This module batches durability the way real
//! databases do (group commit): all nodes of a shard append CRC-framed
//! records into **one** shared log file, staged writes accumulate per shard,
//! and a slot-boundary sync costs **one** `fsync` per shard per slot no
//! matter how many nodes the shard holds.
//!
//! ## Layout
//!
//! ```text
//! root/
//!   shard-0000.log     records of the first contiguous band of node ids
//!   shard-0001.log     …  (bands follow Sharding::chunk_ranges, so each
//!                          engine worker thread owns one log)
//! ```
//!
//! Records reuse the [`crate::record`] frame; no extra framing is needed
//! because the canonical block encoding already carries the owner id
//! ([`DataBlock::id`]), which is what demultiplexes the log back into
//! per-node chains on recovery.
//!
//! ## Durability contract
//!
//! [`ShardLog::sync`] is idempotent per batch: the first member handle that
//! syncs after an append flushes the shared buffer and `fsync`s the file;
//! subsequent syncs in the same slot see a clean log and do nothing. A crash
//! (dropping the log without sync) loses at most the records staged since
//! the last sync — for [`SyncPolicy::PerSlot`](tldag_core::store::SyncPolicy)
//! that is at most the current slot, and **never** a block whose sync point
//! already returned.
//!
//! Unlike the per-node engine, one crash takes down a whole shard *process*:
//! `TldagNetwork::crash_node` only drops the node's handle, so its staged
//! records survive in the shard log held by its neighbours' handles, exactly
//! like a thread dying inside a surviving storage process. Dropping every
//! handle (and the factory) models the whole process dying.

use crate::index::{BlockIndex, RecordLocation};
use crate::record::{self, RecordRead};
use std::collections::BTreeMap;
use std::fs::{self, File, OpenOptions};
use std::os::unix::fs::FileExt;
use std::path::{Path, PathBuf};
use std::sync::{Arc, Mutex};
use tldag_core::config::ProtocolConfig;
use tldag_core::error::TldagError;
use tldag_core::store::{BackendFactory, BlockBackend};
use tldag_core::{BlockId, DataBlock};
use tldag_crypto::Digest;
use tldag_sim::engine::Sharding;
use tldag_sim::{Bits, NodeId};

/// Default staging-buffer size that triggers a (non-fsync) write to the file.
pub const DEFAULT_FLUSH_BUFFER_BYTES: usize = 256 * 1024;

/// A multiplexed, group-committed block log shared by every node of a shard.
///
/// Appends from any member node are staged into one buffer and indexed
/// per-node; [`ShardLog::sync`] makes the whole batch durable with a single
/// `fsync`. Reads are index-driven and served from the file (or the staging
/// buffer for records not yet written out).
#[derive(Debug)]
pub struct ShardLog {
    path: PathBuf,
    file: File,
    /// Bytes already written to the file.
    flushed: u64,
    /// Records appended but not yet written to the file.
    buffer: Vec<u8>,
    /// Whether any record since the last fsync is not yet durable. This flag
    /// is what collapses N member syncs into one fsync per batch.
    dirty: bool,
    flush_buffer_bytes: usize,
    /// Per-node chain indexes over the shared log (`segment` is always 0).
    indexes: BTreeMap<u32, BlockIndex>,
    /// Per-node durable chain length (next seq covered by the last fsync).
    durable: BTreeMap<u32, u32>,
    /// Physical fsync calls issued so far.
    fsyncs: u64,
}

impl ShardLog {
    /// Opens (or creates) the shard log at `path`, replaying existing
    /// records into per-node indexes. An invalid frame marks the torn tail:
    /// the file is truncated to the last valid record boundary (single-file
    /// logs have no sealed/tail distinction — any invalid suffix is treated
    /// as a crash artifact).
    ///
    /// # Errors
    ///
    /// [`TldagError::Storage`] on I/O failure, [`TldagError::Corrupt`] when
    /// a checksummed record decodes to an out-of-order sequence number
    /// (which no torn write can produce).
    pub fn open(path: impl Into<PathBuf>, flush_buffer_bytes: usize) -> Result<Self, TldagError> {
        let path = path.into();
        if let Some(parent) = path.parent() {
            fs::create_dir_all(parent).map_err(|e| TldagError::io("create shard log dir", &e))?;
        }
        let file = OpenOptions::new()
            .read(true)
            .write(true)
            .create(true)
            .truncate(false)
            .open(&path)
            .map_err(|e| TldagError::io("open shard log", &e))?;

        let file_len = file
            .metadata()
            .map_err(|e| TldagError::io("stat shard log", &e))?
            .len();

        // Streaming replay: the log holds every member chain of the shard,
        // so recovery must not materialise the whole file — read it in
        // chunks, carrying the partial record at a chunk boundary over into
        // the next window. Resident memory stays O(chunk + largest record).
        const REPLAY_CHUNK: usize = 4 * 1024 * 1024;
        let mut indexes: BTreeMap<u32, BlockIndex> = BTreeMap::new();
        let mut window: Vec<u8> = Vec::new();
        let mut window_start = 0u64; // file offset of window[0]
        let mut parsed = 0usize; // bytes of the window already consumed
        let mut read_to = 0u64; // file offset up to which we have read
        let flushed = loop {
            match record::read_record(&window[parsed..]) {
                RecordRead::Complete { block, consumed } => {
                    let owner = block.id.owner.0;
                    let index = indexes.entry(owner).or_default();
                    let expected = index.next_seq();
                    if block.id.seq != expected {
                        return Err(TldagError::Corrupt(format!(
                            "shard log {}: node {owner} expected seq {expected}, found {}",
                            path.display(),
                            block.id.seq
                        )));
                    }
                    index.push(
                        &block,
                        RecordLocation {
                            segment: 0,
                            offset: window_start + parsed as u64,
                            len: consumed as u32,
                        },
                    );
                    parsed += consumed;
                }
                RecordRead::Torn if read_to < file_len => {
                    // The window ends mid-record but the file has more:
                    // drop the parsed prefix and pull in the next chunk.
                    window.drain(..parsed);
                    window_start += parsed as u64;
                    parsed = 0;
                    let take = REPLAY_CHUNK.min((file_len - read_to) as usize);
                    let old_len = window.len();
                    window.resize(old_len + take, 0);
                    file.read_exact_at(&mut window[old_len..], read_to)
                        .map_err(|e| TldagError::io("read shard log", &e))?;
                    read_to += take as u64;
                }
                RecordRead::Torn | RecordRead::Corrupt(_) => {
                    // End of the valid prefix: clean end-of-log, or a crash
                    // artifact (torn/garbled tail) that gets truncated away.
                    let valid = window_start + parsed as u64;
                    if valid < file_len {
                        file.set_len(valid)
                            .map_err(|e| TldagError::io("truncate torn shard tail", &e))?;
                    }
                    break valid;
                }
            }
        };
        // Everything replayed from the file was covered by a prior fsync (or
        // is about to be overwritten) — report it as durable, like the
        // per-node engine does after recovery.
        let durable = indexes
            .iter()
            .map(|(&n, idx)| (n, idx.next_seq()))
            .collect();

        Ok(ShardLog {
            path,
            file,
            flushed,
            buffer: Vec::new(),
            dirty: false,
            flush_buffer_bytes: flush_buffer_bytes.max(1),
            indexes,
            durable,
            fsyncs: 0,
        })
    }

    /// The log's file path.
    pub fn path(&self) -> &Path {
        &self.path
    }

    /// Registers `node` as a member (so empty chains have an index and the
    /// resident-memory attribution knows the member count).
    pub fn register(&mut self, node: NodeId) {
        self.indexes.entry(node.0).or_default();
        self.durable.entry(node.0).or_insert(0);
    }

    /// Number of member nodes (registered or recovered).
    pub fn members(&self) -> usize {
        self.indexes.len()
    }

    /// Physical fsync calls issued so far.
    pub fn fsync_count(&self) -> u64 {
        self.fsyncs
    }

    /// Chain length of `node`.
    pub fn len_of(&self, node: NodeId) -> usize {
        self.indexes
            .get(&node.0)
            .map_or(0, |idx| idx.next_seq() as usize)
    }

    /// Durable chain length of `node` (blocks covered by the last fsync).
    pub fn durable_len_of(&self, node: NodeId) -> usize {
        self.durable.get(&node.0).copied().unwrap_or(0) as usize
    }

    /// Appends the next block of its owner's chain.
    ///
    /// # Errors
    ///
    /// [`TldagError::OutOfOrderAppend`] when the block skips a sequence
    /// number, [`TldagError::Storage`] when the medium fails.
    pub fn append(&mut self, block: DataBlock) -> Result<(), TldagError> {
        let index = self.indexes.entry(block.id.owner.0).or_default();
        let expected = index.next_seq();
        if block.id.seq != expected {
            return Err(TldagError::OutOfOrderAppend {
                expected,
                got: block.id.seq,
            });
        }
        let rec = record::encode_record(&block);
        let location = RecordLocation {
            segment: 0,
            offset: self.flushed + self.buffer.len() as u64,
            len: rec.len() as u32,
        };
        index.push(&block, location);
        self.buffer.extend_from_slice(&rec);
        self.dirty = true;
        if self.buffer.len() >= self.flush_buffer_bytes {
            self.flush_buffer()?;
        }
        Ok(())
    }

    /// Writes the staged records to the file (no fsync).
    fn flush_buffer(&mut self) -> Result<(), TldagError> {
        if self.buffer.is_empty() {
            return Ok(());
        }
        self.file
            .write_all_at(&self.buffer, self.flushed)
            .map_err(|e| TldagError::io("flush shard buffer", &e))?;
        self.flushed += self.buffer.len() as u64;
        self.buffer.clear();
        Ok(())
    }

    /// Makes every staged append durable with (at most) one `fsync`.
    ///
    /// The first member to sync after an append pays the syscall; everyone
    /// else in the same batch gets a no-op. This is the group-commit dedup
    /// that turns N per-node slot syncs into one fsync per shard per slot.
    ///
    /// # Errors
    ///
    /// [`TldagError::Storage`] when the medium fails.
    pub fn sync(&mut self) -> Result<(), TldagError> {
        if !self.dirty {
            return Ok(());
        }
        self.flush_buffer()?;
        self.file
            .sync_data()
            .map_err(|e| TldagError::io("fsync shard log", &e))?;
        self.fsyncs += 1;
        self.dirty = false;
        for (&node, index) in &self.indexes {
            self.durable.insert(node, index.next_seq());
        }
        Ok(())
    }

    /// Reads the record at `location`, from the staging buffer when it has
    /// not been written out yet.
    fn read_location(&self, location: RecordLocation) -> Result<DataBlock, TldagError> {
        let mut frame = vec![0u8; location.len as usize];
        if location.offset >= self.flushed {
            let start = (location.offset - self.flushed) as usize;
            frame.copy_from_slice(&self.buffer[start..start + location.len as usize]);
        } else {
            self.file
                .read_exact_at(&mut frame, location.offset)
                .map_err(|e| TldagError::io("read shard record", &e))?;
        }
        record::decode_indexed(&frame)
    }

    fn get_of(&self, node: NodeId, seq: u32) -> Option<DataBlock> {
        let entry = self.indexes.get(&node.0)?.entry(seq)?;
        // Index and log are maintained together; a decode failure here is
        // real corruption, which the simulator treats as fatal.
        Some(
            self.read_location(entry.location)
                .expect("indexed shard record must decode"),
        )
    }

    fn by_header_digest_of(&self, node: NodeId, digest: &Digest) -> Option<DataBlock> {
        let seq = self.indexes.get(&node.0)?.seq_of_digest(digest)?;
        self.get_of(node, seq)
    }

    fn oldest_child_of(&self, node: NodeId, target: &Digest) -> Option<DataBlock> {
        let seq = self.indexes.get(&node.0)?.oldest_child_of(target)?;
        self.get_of(node, seq)
    }

    fn children_of(&self, node: NodeId, target: &Digest) -> Vec<DataBlock> {
        let Some(index) = self.indexes.get(&node.0) else {
            return Vec::new();
        };
        index
            .children_of(target)
            .into_iter()
            .filter_map(|seq| self.get_of(node, seq))
            .collect()
    }

    fn iter_of(&self, node: NodeId) -> Vec<DataBlock> {
        (0..self.len_of(node) as u32)
            .filter_map(|seq| self.get_of(node, seq))
            .collect()
    }

    fn iter_meta_of(&self, node: NodeId) -> Vec<(BlockId, u64)> {
        let Some(index) = self.indexes.get(&node.0) else {
            return Vec::new();
        };
        (0..index.next_seq())
            .filter_map(|seq| index.entry(seq).map(|e| (BlockId::new(node, seq), e.time)))
            .collect()
    }

    fn logical_bits_of(&self, node: NodeId, cfg: &ProtocolConfig) -> Bits {
        self.indexes
            .get(&node.0)
            .map_or(Bits::ZERO, |idx| idx.logical_bits(cfg))
    }

    /// Approximate resident bytes of the whole log (indexes + staging
    /// buffer).
    pub fn resident_bytes(&self) -> usize {
        self.buffer.len()
            + self
                .indexes
                .values()
                .map(BlockIndex::resident_bytes)
                .sum::<usize>()
    }
}

/// One node's [`BlockBackend`] view over a shared [`ShardLog`].
///
/// Handles of the same shard share the log through an `Arc<Mutex<…>>`;
/// within the shard-parallel engine each shard is driven by one worker
/// thread, so the mutex is effectively uncontended.
#[derive(Debug)]
pub struct ShardedNodeStore {
    log: Arc<Mutex<ShardLog>>,
    node: NodeId,
}

impl ShardedNodeStore {
    /// Creates a member handle for `node` and registers it with the log.
    pub fn new(log: Arc<Mutex<ShardLog>>, node: NodeId) -> Self {
        log.lock().expect("shard log lock").register(node);
        ShardedNodeStore { log, node }
    }

    fn log(&self) -> std::sync::MutexGuard<'_, ShardLog> {
        self.log.lock().expect("shard log lock")
    }
}

impl BlockBackend for ShardedNodeStore {
    fn append(&mut self, block: DataBlock) -> Result<(), TldagError> {
        if block.id.owner != self.node {
            return Err(TldagError::Storage(format!(
                "node {} cannot append a block owned by {}",
                self.node, block.id.owner
            )));
        }
        self.log().append(block)
    }

    fn len(&self) -> usize {
        self.log().len_of(self.node)
    }

    fn get(&self, seq: u32) -> Option<DataBlock> {
        self.log().get_of(self.node, seq)
    }

    fn by_header_digest(&self, digest: &Digest) -> Option<DataBlock> {
        self.log().by_header_digest_of(self.node, digest)
    }

    fn oldest_child_of(&self, target: &Digest) -> Option<DataBlock> {
        self.log().oldest_child_of(self.node, target)
    }

    fn children_of(&self, target: &Digest) -> Vec<DataBlock> {
        self.log().children_of(self.node, target)
    }

    fn iter(&self) -> Box<dyn Iterator<Item = DataBlock> + '_> {
        Box::new(self.log().iter_of(self.node).into_iter())
    }

    fn iter_meta(&self) -> Box<dyn Iterator<Item = (BlockId, u64)> + '_> {
        Box::new(self.log().iter_meta_of(self.node).into_iter())
    }

    fn logical_bits(&self, cfg: &ProtocolConfig) -> Bits {
        self.log().logical_bits_of(self.node, cfg)
    }

    fn resident_bytes(&self) -> usize {
        let log = self.log();
        log.resident_bytes() / log.members().max(1)
    }

    fn sync(&mut self) -> Result<(), TldagError> {
        self.log().sync()
    }

    fn durable_len(&self) -> usize {
        self.log().durable_len_of(self.node)
    }

    /// The **shared** shard log's count — see the trait docs for the
    /// double-counting caveat when summing over members.
    fn fsync_count(&self) -> u64 {
        self.log().fsync_count()
    }
}

/// Provisions group-committed storage: `shards` shard logs under a root
/// directory, each shared by one **contiguous band** of node ids — the same
/// bands `tldag_sim::engine::Sharding::chunk_ranges` deals to the engine's
/// worker threads. With the shard count equal to `--threads`, every worker
/// appends only to its own shard's log, so the log mutexes stay
/// uncontended and the record order within each file is the worker's own
/// deterministic append order.
///
/// Implements [`BackendFactory`], so `TldagNetwork::with_factory` can run
/// any experiment with one fsync per shard per sync point.
#[derive(Debug)]
pub struct ShardedDiskFactory {
    root: PathBuf,
    sharding: Sharding,
    /// Node count the bands were sized for (joiners beyond it land in the
    /// last shard). Must be the same on reattach for chains to be found.
    nodes: usize,
    flush_buffer_bytes: usize,
    logs: Vec<Option<Arc<Mutex<ShardLog>>>>,
}

impl ShardedDiskFactory {
    /// A **fresh** factory rooted at `root`, with `shards` shard logs sized
    /// for `nodes` node ids: shard logs left by a previous run are deleted.
    /// Only `shard-*.log` files are touched — the directory may hold other
    /// data (it is often a user-supplied `--storage-dir`).
    ///
    /// # Panics
    ///
    /// Panics if `shards == 0`.
    pub fn new(root: impl Into<PathBuf>, shards: usize, nodes: usize) -> Self {
        let root = root.into();
        if let Ok(entries) = fs::read_dir(&root) {
            for entry in entries.flatten() {
                let name = entry.file_name();
                let is_shard_log = name
                    .to_str()
                    .is_some_and(|n| n.starts_with("shard-") && n.ends_with(".log"));
                if is_shard_log {
                    let _ = fs::remove_file(entry.path());
                }
            }
        }
        Self::attach(root, shards, nodes)
    }

    /// Attaches to an existing root **without wiping**, recovering whatever
    /// the shard logs persisted — the whole-process restart path. `shards`
    /// and `nodes` must match the values the directory was created with,
    /// or chains will be looked up in the wrong log.
    ///
    /// # Panics
    ///
    /// Panics if `shards == 0`.
    pub fn attach(root: impl Into<PathBuf>, shards: usize, nodes: usize) -> Self {
        assert!(shards > 0, "need at least one shard");
        ShardedDiskFactory {
            root: root.into(),
            sharding: Sharding::threads(shards),
            nodes,
            flush_buffer_bytes: DEFAULT_FLUSH_BUFFER_BYTES,
            logs: vec![None; shards.min(nodes).max(1)],
        }
    }

    /// Overrides the staging-buffer flush threshold (tests use a large value
    /// to keep unsynced records in memory, so a simulated crash loses them).
    pub fn with_flush_buffer(mut self, bytes: usize) -> Self {
        self.flush_buffer_bytes = bytes.max(1);
        self
    }

    /// The shard a node's chain lives in: the contiguous band of
    /// [`Sharding::chunk_ranges`] over the sized node count. Stable under
    /// joins — ids at or beyond the sized count use the last shard.
    pub fn shard_of(&self, node: NodeId) -> usize {
        self.sharding.shard_of(self.nodes, node.index())
    }

    /// Number of shard logs (capped at the sized node count).
    pub fn shards(&self) -> usize {
        self.logs.len()
    }

    /// The shard log file path for `shard`.
    pub fn shard_path(&self, shard: usize) -> PathBuf {
        self.root.join(format!("shard-{shard:04}.log"))
    }

    /// Handles on every currently open shard log (experiments read fsync
    /// counts through these after moving the factory into the network).
    pub fn open_logs(&self) -> Vec<Arc<Mutex<ShardLog>>> {
        self.logs.iter().flatten().cloned().collect()
    }

    /// Total fsyncs across all open shard logs.
    pub fn total_fsyncs(&self) -> u64 {
        self.open_logs()
            .iter()
            .map(|l| l.lock().expect("shard log lock").fsync_count())
            .sum()
    }

    fn log_for(&mut self, shard: usize) -> Result<Arc<Mutex<ShardLog>>, TldagError> {
        if let Some(log) = &self.logs[shard] {
            return Ok(Arc::clone(log));
        }
        let log = Arc::new(Mutex::new(ShardLog::open(
            self.shard_path(shard),
            self.flush_buffer_bytes,
        )?));
        self.logs[shard] = Some(Arc::clone(&log));
        Ok(log)
    }
}

impl BackendFactory for ShardedDiskFactory {
    /// Attaches `node` to its shard log (creating the log on first use).
    /// Unlike `DiskFactory::create`, nothing is wiped here — the wipe
    /// happened once in [`ShardedDiskFactory::new`] — because a joining
    /// node must not erase its shard-mates' chains.
    ///
    /// # Panics
    ///
    /// Panics when the shard log cannot be opened — a simulation cannot
    /// proceed without its storage root.
    fn create(&mut self, node: NodeId) -> Box<dyn BlockBackend> {
        let shard = self.shard_of(node);
        let log = self
            .log_for(shard)
            .unwrap_or_else(|e| panic!("cannot open shard log {shard}: {e}"));
        Box::new(ShardedNodeStore::new(log, node))
    }

    /// Reattaches `node` to its shard log. While the factory (or any member
    /// handle) is alive the log keeps its staged state — the shard process
    /// survived the node's crash; a factory built with
    /// [`ShardedDiskFactory::attach`] over a cold directory recovers only
    /// what was fsynced.
    fn reopen(&mut self, node: NodeId) -> Result<Box<dyn BlockBackend>, TldagError> {
        let log = self.log_for(self.shard_of(node))?;
        Ok(Box::new(ShardedNodeStore::new(log, node)))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use tldag_core::config::ProtocolConfig;
    use tldag_core::BlockBody;
    use tldag_crypto::schnorr::KeyPair;

    fn block(owner: u32, seq: u32) -> DataBlock {
        let cfg = ProtocolConfig::test_default();
        DataBlock::create(
            &cfg,
            BlockId::new(NodeId(owner), seq),
            u64::from(seq),
            vec![],
            BlockBody::new(vec![owner as u8, seq as u8], cfg.body_bits),
            &KeyPair::from_seed(u64::from(owner)),
        )
    }

    fn temp_dir(tag: &str) -> PathBuf {
        let dir = std::env::temp_dir().join(format!("tldag-group-{tag}-{}", std::process::id()));
        let _ = fs::remove_dir_all(&dir);
        dir
    }

    #[test]
    fn multiplexed_chains_round_trip() {
        let dir = temp_dir("mux");
        let mut log = ShardLog::open(dir.join("shard.log"), 64).unwrap();
        for seq in 0..3 {
            log.append(block(1, seq)).unwrap();
            log.append(block(5, seq)).unwrap();
        }
        assert_eq!(log.len_of(NodeId(1)), 3);
        assert_eq!(log.len_of(NodeId(5)), 3);
        assert_eq!(
            log.get_of(NodeId(5), 2).unwrap().id,
            BlockId::new(NodeId(5), 2)
        );
        assert_eq!(log.get_of(NodeId(9), 0), None);
        let err = log.append(block(1, 7)).unwrap_err();
        assert!(matches!(
            err,
            TldagError::OutOfOrderAppend {
                expected: 3,
                got: 7
            }
        ));
        fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn sync_is_deduplicated_per_batch() {
        let dir = temp_dir("dedup");
        let mut log = ShardLog::open(dir.join("shard.log"), 1 << 20).unwrap();
        log.append(block(0, 0)).unwrap();
        log.append(block(2, 0)).unwrap();
        log.sync().unwrap();
        log.sync().unwrap(); // second member of the same slot: no-op
        log.sync().unwrap();
        assert_eq!(log.fsync_count(), 1, "one fsync per batch");
        assert_eq!(log.durable_len_of(NodeId(0)), 1);
        assert_eq!(log.durable_len_of(NodeId(2)), 1);
        log.append(block(0, 1)).unwrap();
        assert_eq!(log.durable_len_of(NodeId(0)), 1, "staged, not durable");
        log.sync().unwrap();
        assert_eq!(log.fsync_count(), 2);
        assert_eq!(log.durable_len_of(NodeId(0)), 2);
        fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn reopen_recovers_synced_records_only() {
        let dir = temp_dir("recover");
        let path = dir.join("shard.log");
        {
            // Large flush buffer: unsynced records stay in process memory,
            // so dropping the log models a crash that loses them.
            let mut log = ShardLog::open(&path, 1 << 20).unwrap();
            log.append(block(0, 0)).unwrap();
            log.append(block(2, 0)).unwrap();
            log.sync().unwrap();
            log.append(block(0, 1)).unwrap(); // never synced
        }
        let log = ShardLog::open(&path, 1 << 20).unwrap();
        assert_eq!(log.len_of(NodeId(0)), 1, "unsynced append lost");
        assert_eq!(log.len_of(NodeId(2)), 1);
        assert_eq!(log.durable_len_of(NodeId(0)), 1);
        fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn torn_tail_is_truncated() {
        let dir = temp_dir("torn");
        let path = dir.join("shard.log");
        {
            let mut log = ShardLog::open(&path, 1).unwrap();
            log.append(block(0, 0)).unwrap();
            log.append(block(0, 1)).unwrap();
            log.sync().unwrap();
        }
        // Tear the last record mid-frame.
        let len = fs::metadata(&path).unwrap().len();
        let file = OpenOptions::new().write(true).open(&path).unwrap();
        file.set_len(len - 3).unwrap();
        drop(file);
        let log = ShardLog::open(&path, 1).unwrap();
        assert_eq!(log.len_of(NodeId(0)), 1, "torn record discarded");
        assert!(
            fs::metadata(&path).unwrap().len() < len - 3,
            "file truncated"
        );
        fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn factory_routes_nodes_to_shards() {
        let dir = temp_dir("factory");
        let mut factory = ShardedDiskFactory::new(&dir, 2, 4);
        let mut stores: Vec<Box<dyn BlockBackend>> =
            (0..4).map(|i| factory.create(NodeId(i))).collect();
        for (i, store) in stores.iter_mut().enumerate() {
            store.append(block(i as u32, 0)).unwrap();
        }
        for store in &mut stores {
            store.sync().unwrap();
        }
        // 4 nodes, 2 shards, 1 batch: exactly 2 fsyncs.
        assert_eq!(factory.total_fsyncs(), 2);
        assert_eq!(factory.open_logs().len(), 2);
        assert_eq!(factory.shard_of(NodeId(3)), 1);
        for store in &stores {
            assert_eq!(store.durable_len(), 1);
        }
        fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn fresh_factory_wipes_only_its_own_shard_logs() {
        let dir = temp_dir("wipe");
        fs::create_dir_all(&dir).unwrap();
        fs::write(dir.join("precious.txt"), b"user data").unwrap();
        fs::write(dir.join("shard-0000.log"), b"stale log").unwrap();
        let _factory = ShardedDiskFactory::new(&dir, 2, 4);
        assert!(
            dir.join("precious.txt").exists(),
            "unrelated files must survive"
        );
        assert!(
            !dir.join("shard-0000.log").exists(),
            "stale shard logs are wiped"
        );
        fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn wrong_owner_append_is_refused() {
        let dir = temp_dir("owner");
        let mut factory = ShardedDiskFactory::new(&dir, 1, 4);
        let mut store = factory.create(NodeId(0));
        let err = store.append(block(1, 0)).unwrap_err();
        assert!(err.to_string().contains("owned by"), "{err}");
        fs::remove_dir_all(&dir).unwrap();
    }
}
