//! # tldag-storage — durable, segmented block-log storage for 2LDAG nodes
//!
//! The paper sizes per-node state analytically (`S_i`, `H_i`; Propositions
//! 2–3) but says nothing about where the bits live. The seed reproduction
//! kept every block in memory, so nothing survived a restart and resident
//! memory grew with the run horizon. This crate supplies the missing layer:
//! a crash-safe, append-only **segmented block log** behind the
//! [`tldag_core::store::BlockBackend`] trait, so any experiment can run with
//! `S_i` on disk and a bounded in-memory footprint.
//!
//! * [`record`] — CRC-32-framed records around the canonical
//!   `tldag_core::codec` block encoding; torn writes are detectable.
//! * [`segment`] — the shared segmented-log core ([`SegmentSet`]): segment
//!   files, rolls, streaming replay with torn-tail truncation, retention
//!   accounting, and the single-writer directory lock. Both engines are
//!   built on it.
//! * [`index`] — the digest → (segment, offset) index rebuilt on open, plus
//!   its checksummed snapshot form.
//! * [`engine`] — [`DurableStore`] (the backend) and [`DiskFactory`] (one
//!   store per node for `TldagNetwork::with_factory`).
//! * [`group`] — the group-commit layer: [`ShardLog`] multiplexes every
//!   node of a shard into one segmented log so a slot-boundary sync costs
//!   **one** fsync per shard per slot ([`ShardedDiskFactory`] provisions
//!   it); under a retention budget it rolls and compacts like the per-node
//!   engine, respecting every member band's chain head.
//!
//! ## Example
//!
//! ```
//! use tldag_core::store::BlockBackend;
//! use tldag_core::config::ProtocolConfig;
//! use tldag_core::{BlockBody, BlockId, DataBlock};
//! use tldag_crypto::schnorr::KeyPair;
//! use tldag_sim::NodeId;
//! use tldag_storage::{DurableStore, StorageOptions};
//!
//! let dir = std::env::temp_dir().join("tldag-storage-doc");
//! let _ = std::fs::remove_dir_all(&dir);
//! let cfg = ProtocolConfig::test_default();
//! let kp = KeyPair::from_seed(1);
//!
//! let mut store = DurableStore::open(&dir, StorageOptions::default()).unwrap();
//! let block = DataBlock::create(
//!     &cfg,
//!     BlockId::new(NodeId(1), 0),
//!     0,
//!     vec![],
//!     BlockBody::new(vec![1, 2, 3], cfg.body_bits),
//!     &kp,
//! );
//! store.append(block.clone()).unwrap();
//! store.sync().unwrap();
//! drop(store);
//!
//! // Reopen: the chain survived the "restart".
//! let reopened = DurableStore::open(&dir, StorageOptions::default()).unwrap();
//! assert_eq!(reopened.len(), 1);
//! assert_eq!(reopened.get(0), Some(block));
//! # std::fs::remove_dir_all(&dir).unwrap();
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod crc32;
pub mod engine;
pub mod group;
pub mod index;
pub mod record;
pub mod segment;

pub use engine::{DiskFactory, DurableStore};
pub use group::{ShardLog, ShardedDiskFactory, ShardedNodeStore};
pub use segment::{SegmentSet, StorageOptions};
pub use tldag_core::store::SyncPolicy;
