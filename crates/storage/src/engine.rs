//! The durable block-log engine: segmented append-only files + in-memory
//! index + snapshot/tail-replay recovery + segment-aware compaction.
//!
//! ## Layout
//!
//! A store owns one directory:
//!
//! ```text
//! node-7/
//!   seg-000000.log     sealed segment (never written again)
//!   seg-000001.log     …
//!   seg-000002.log     tail segment (appends go here)
//!   index.snap         checksummed index snapshot + covered log position
//! ```
//!
//! Records are CRC-framed codec-encoded blocks ([`crate::record`]); a record
//! never spans segments. Appends accumulate in a write buffer that is written
//! to the tail file when it exceeds [`StorageOptions::flush_buffer_bytes`];
//! [`DurableStore::sync`] flushes, `fsync`s, and advances the durability
//! watermark. A crash (dropping the store without sync) loses at most the
//! buffered tail — exactly the contract [`BlockBackend::durable_len`]
//! advertises.
//!
//! ## Recovery
//!
//! `open` loads `index.snap` if present and valid, then replays only the log
//! records after the snapshot's covered position; without a usable snapshot
//! it scans every segment. A torn record in the **final** segment truncates
//! the file to the last valid boundary (a torn tail write is an expected
//! crash artifact); anything invalid in an earlier segment is reported as
//! corruption.
//!
//! ## Compaction
//!
//! [`DurableStore::compact_to_budget`] drops whole sealed segments oldest
//! first until disk usage fits the budget, pruning the index with them. The
//! budget is naturally expressed through the paper's storage-overhead model
//! (Eq. 2): pick a block-count horizon, multiply by `cfg.block_bits`, and the
//! engine keeps disk usage within it while `len()` keeps counting the full
//! chain so sequence numbers never regress.

use crate::index::{BlockIndex, RecordLocation};
use crate::record::{self, RecordRead};
use std::collections::{BTreeMap, HashMap, VecDeque};
use std::fs::{self, File, OpenOptions};
use std::os::unix::fs::FileExt;
use std::path::{Path, PathBuf};
use std::sync::Mutex;
use tldag_core::config::ProtocolConfig;
use tldag_core::error::TldagError;
use tldag_core::store::{BackendFactory, BlockBackend};
use tldag_core::{BlockId, DataBlock};
use tldag_crypto::Digest;
use tldag_sim::{Bits, NodeId};

/// Tuning knobs for the durable engine.
#[derive(Clone, Debug)]
pub struct StorageOptions {
    /// Target maximum bytes per segment file (records never span segments).
    pub segment_bytes: u64,
    /// Appends between automatic index snapshots (taken at sync points).
    pub snapshot_every: u32,
    /// Decoded blocks kept in the read cache.
    pub cache_blocks: usize,
    /// Write-buffer size that triggers a (non-fsync) flush to the tail file.
    pub flush_buffer_bytes: usize,
    /// Optional disk budget in bytes; exceeding it triggers compaction at
    /// segment rolls (oldest sealed segments are dropped first).
    pub retain_disk_bytes: Option<u64>,
}

impl Default for StorageOptions {
    fn default() -> Self {
        StorageOptions {
            segment_bytes: 4 * 1024 * 1024,
            snapshot_every: 1024,
            cache_blocks: 32,
            flush_buffer_bytes: 256 * 1024,
            retain_disk_bytes: None,
        }
    }
}

impl StorageOptions {
    /// Small segments / frequent snapshots, for tests that exercise rolls
    /// and recovery paths quickly.
    pub fn compact_test() -> Self {
        StorageOptions {
            segment_bytes: 4 * 1024,
            snapshot_every: 8,
            cache_blocks: 4,
            flush_buffer_bytes: 512,
            retain_disk_bytes: None,
        }
    }
}

/// Bounded FIFO cache of decoded blocks.
#[derive(Debug, Default)]
struct BlockCache {
    capacity: usize,
    order: VecDeque<u32>,
    blocks: HashMap<u32, DataBlock>,
}

impl BlockCache {
    fn new(capacity: usize) -> Self {
        BlockCache {
            capacity,
            order: VecDeque::with_capacity(capacity),
            blocks: HashMap::with_capacity(capacity),
        }
    }

    fn get(&self, seq: u32) -> Option<DataBlock> {
        self.blocks.get(&seq).cloned()
    }

    fn insert(&mut self, seq: u32, block: DataBlock) {
        if self.capacity == 0 || self.blocks.contains_key(&seq) {
            return;
        }
        while self.blocks.len() >= self.capacity {
            let Some(evict) = self.order.pop_front() else {
                break;
            };
            self.blocks.remove(&evict);
        }
        self.order.push_back(seq);
        self.blocks.insert(seq, block);
    }

    fn evict_below(&mut self, seq: u32) {
        self.order.retain(|&s| s >= seq);
        self.blocks.retain(|&s, _| s >= seq);
    }

    fn resident_bytes(&self) -> usize {
        self.blocks
            .values()
            .map(|b| 256 + b.header.digests.len() * 36 + b.body.payload.len())
            .sum()
    }
}

fn segment_path(dir: &Path, id: u32) -> PathBuf {
    dir.join(format!("seg-{id:06}.log"))
}

fn snapshot_path(dir: &Path) -> PathBuf {
    dir.join("index.snap")
}

/// The durable, segmented block-log storage engine.
///
/// Implements [`BlockBackend`], so a [`tldag_core::LedgerNode`] can run on it
/// interchangeably with the in-memory store — but with a bounded resident
/// footprint (index + write buffer + read cache) and a chain that survives
/// process restarts.
#[derive(Debug)]
pub struct DurableStore {
    dir: PathBuf,
    opts: StorageOptions,
    index: BlockIndex,
    /// Read handles, one per live segment (including the tail).
    readers: BTreeMap<u32, File>,
    /// Tail segment id.
    tail_id: u32,
    /// Bytes of the tail segment already written to the file.
    tail_flushed: u64,
    /// Records appended but not yet written to the file.
    buffer: Vec<u8>,
    /// Blocks guaranteed on stable storage (advanced by [`Self::sync`]).
    durable_seq: u32,
    appends_since_snapshot: u32,
    cache: Mutex<BlockCache>,
    /// Physical fsync calls issued so far (`sync_data` on any file).
    fsyncs: u64,
}

impl DurableStore {
    /// Opens (or creates) the store in `dir`, running crash recovery:
    /// snapshot load, tail replay, and torn-tail truncation.
    ///
    /// # Errors
    ///
    /// [`TldagError::Storage`] on I/O failure, [`TldagError::Corrupt`] when
    /// a **sealed** segment fails validation (a corrupt snapshot alone is
    /// not fatal — it falls back to a full scan).
    pub fn open(dir: impl Into<PathBuf>, opts: StorageOptions) -> Result<Self, TldagError> {
        let dir = dir.into();
        fs::create_dir_all(&dir).map_err(|e| TldagError::io("create storage dir", &e))?;

        let mut segment_ids = Self::list_segments(&dir)?;
        if segment_ids.is_empty() {
            File::create(segment_path(&dir, 0))
                .map_err(|e| TldagError::io("create first segment", &e))?;
            segment_ids.push(0);
        }

        // Snapshot load is best-effort: any inconsistency downgrades to a
        // full log scan starting at the oldest live segment.
        let snapshot = fs::read(snapshot_path(&dir))
            .ok()
            .and_then(|blob| BlockIndex::decode_snapshot(&blob).ok())
            .filter(|(_, seg, _)| segment_ids.contains(seg));
        let (mut index, mut replay_segment, mut replay_offset) = match snapshot {
            Some((index, seg, off)) => (index, seg, off),
            None => (BlockIndex::new(), segment_ids[0], 0),
        };

        let mut readers = BTreeMap::new();
        for &id in &segment_ids {
            let file = OpenOptions::new()
                .read(true)
                .write(true)
                .open(segment_path(&dir, id))
                .map_err(|e| TldagError::io("open segment", &e))?;
            readers.insert(id, file);
        }

        // If the snapshot claims coverage beyond the tail file (it was taken
        // right before a crash that also tore the tail), rescan from scratch.
        let covered_len = readers[&replay_segment]
            .metadata()
            .map_err(|e| TldagError::io("stat segment", &e))?
            .len();
        if replay_offset > covered_len {
            index = BlockIndex::new();
            replay_segment = segment_ids[0];
            replay_offset = 0;
        }

        let tail_id = *segment_ids.last().expect("at least one segment");
        let mut tail_flushed = 0u64;
        for &id in segment_ids.iter().filter(|&&id| id >= replay_segment) {
            let start = if id == replay_segment {
                replay_offset
            } else {
                0
            };
            let valid_len =
                Self::replay_segment(&readers[&id], id, start, &mut index, id == tail_id)?;
            if id == tail_id {
                tail_flushed = valid_len;
            }
        }
        // A full scan must land on a contiguous chain; sanity-check against
        // the recovered base (the first record of the oldest segment).
        let durable_seq = index.next_seq();

        Ok(DurableStore {
            cache: Mutex::new(BlockCache::new(opts.cache_blocks)),
            fsyncs: 0,
            dir,
            opts,
            index,
            readers,
            tail_id,
            tail_flushed,
            buffer: Vec::new(),
            durable_seq,
            appends_since_snapshot: 0,
        })
    }

    fn list_segments(dir: &Path) -> Result<Vec<u32>, TldagError> {
        let mut ids = Vec::new();
        let entries = fs::read_dir(dir);
        let Ok(entries) = entries else {
            return Ok(ids); // directory does not exist yet
        };
        for entry in entries {
            let entry = entry.map_err(|e| TldagError::io("read storage dir", &e))?;
            let name = entry.file_name();
            let Some(name) = name.to_str() else { continue };
            if let Some(id) = name
                .strip_prefix("seg-")
                .and_then(|rest| rest.strip_suffix(".log"))
                .and_then(|digits| digits.parse::<u32>().ok())
            {
                ids.push(id);
            }
        }
        ids.sort_unstable();
        Ok(ids)
    }

    /// Replays one segment from `start`, appending records to `index`.
    /// Returns the length of the valid prefix. Invalid bytes truncate the
    /// file when `is_tail`, and are fatal otherwise.
    fn replay_segment(
        file: &File,
        id: u32,
        start: u64,
        index: &mut BlockIndex,
        is_tail: bool,
    ) -> Result<u64, TldagError> {
        let file_len = file
            .metadata()
            .map_err(|e| TldagError::io("stat segment", &e))?
            .len();
        let mut bytes = vec![0u8; (file_len - start.min(file_len)) as usize];
        file.read_exact_at(&mut bytes, start)
            .map_err(|e| TldagError::io("read segment", &e))?;

        let mut pos = 0usize;
        loop {
            if pos == bytes.len() {
                return Ok(start + pos as u64);
            }
            match record::read_record(&bytes[pos..]) {
                RecordRead::Complete { block, consumed } => {
                    let fresh = index.retained() == 0 && index.base_seq() == 0;
                    if fresh && block.id.seq != 0 {
                        // Full scan after compaction: the first surviving
                        // record defines the chain base.
                        index.start_at(block.id.seq);
                    }
                    let expected = index.next_seq();
                    if block.id.seq != expected {
                        return Err(TldagError::Corrupt(format!(
                            "segment {id}: expected seq {expected}, found {}",
                            block.id.seq
                        )));
                    }
                    let location = RecordLocation {
                        segment: id,
                        offset: start + pos as u64,
                        len: consumed as u32,
                    };
                    index.push(&block, location);
                    pos += consumed;
                }
                RecordRead::Torn => {
                    return Self::handle_invalid(file, id, start + pos as u64, is_tail, "torn");
                }
                RecordRead::Corrupt(msg) => {
                    return Self::handle_invalid(file, id, start + pos as u64, is_tail, &msg);
                }
            }
        }
    }

    fn handle_invalid(
        file: &File,
        id: u32,
        valid_len: u64,
        is_tail: bool,
        reason: &str,
    ) -> Result<u64, TldagError> {
        if is_tail {
            // Expected crash artifact: discard the invalid tail.
            file.set_len(valid_len)
                .map_err(|e| TldagError::io("truncate torn tail", &e))?;
            Ok(valid_len)
        } else {
            Err(TldagError::Corrupt(format!(
                "sealed segment {id} invalid at offset {valid_len}: {reason}"
            )))
        }
    }

    /// Writes the buffered tail records to the file (no fsync).
    fn flush_buffer(&mut self) -> Result<(), TldagError> {
        if self.buffer.is_empty() {
            return Ok(());
        }
        let file = self.readers.get(&self.tail_id).expect("tail reader");
        file.write_all_at(&self.buffer, self.tail_flushed)
            .map_err(|e| TldagError::io("flush tail buffer", &e))?;
        self.tail_flushed += self.buffer.len() as u64;
        self.buffer.clear();
        Ok(())
    }

    /// Seals the tail segment and starts a new one.
    fn roll_segment(&mut self) -> Result<(), TldagError> {
        self.flush_buffer()?;
        self.readers[&self.tail_id]
            .sync_data()
            .map_err(|e| TldagError::io("sync sealed segment", &e))?;
        self.fsyncs += 1;
        let next = self.tail_id + 1;
        let file = OpenOptions::new()
            .read(true)
            .write(true)
            .create(true)
            .truncate(true)
            .open(segment_path(&self.dir, next))
            .map_err(|e| TldagError::io("create segment", &e))?;
        self.readers.insert(next, file);
        self.tail_id = next;
        self.tail_flushed = 0;
        if let Some(budget) = self.opts.retain_disk_bytes {
            self.compact_to_budget(budget)?;
        }
        Ok(())
    }

    /// Total bytes on disk (flushed) plus the pending write buffer.
    pub fn disk_usage_bytes(&self) -> u64 {
        let sealed: u64 = self
            .readers
            .iter()
            .filter(|(&id, _)| id != self.tail_id)
            .filter_map(|(_, f)| f.metadata().ok())
            .map(|m| m.len())
            .sum();
        sealed + self.tail_flushed + self.buffer.len() as u64
    }

    /// Drops whole sealed segments, oldest first, until disk usage is within
    /// `max_bytes` (the tail is never dropped). Returns the number of blocks
    /// pruned; they are no longer retrievable from this store.
    ///
    /// The chain length ([`BlockBackend::len`]) is unaffected — sequence
    /// numbers keep counting — which is what lets a node honour the paper's
    /// storage budget (Eq. 2 × retention horizon) without forking its chain.
    ///
    /// # Errors
    ///
    /// [`TldagError::Storage`] on I/O failure.
    pub fn compact_to_budget(&mut self, max_bytes: u64) -> Result<usize, TldagError> {
        let mut pruned_total = 0usize;
        let mut removed: Vec<u32> = Vec::new();
        while self.disk_usage_bytes() > max_bytes {
            let Some((&oldest, _)) = self.readers.iter().next() else {
                break;
            };
            if oldest == self.tail_id {
                break; // never drop the tail
            }
            // The first seq stored past the dropped segment becomes the base.
            let next_seq_after = (self.index.base_seq()..self.index.next_seq())
                .find(|&seq| {
                    self.index
                        .entry(seq)
                        .is_some_and(|e| e.location.segment > oldest)
                })
                .unwrap_or(self.index.next_seq());
            if next_seq_after >= self.index.next_seq() {
                // This segment holds the chain head (the tail is empty right
                // after a roll). Dropping it would lose `latest()` and break
                // the node's own prev-digest linkage — keep it, budget or no.
                break;
            }
            pruned_total += self.index.prune_below(next_seq_after);
            self.cache
                .lock()
                .expect("cache lock")
                .evict_below(next_seq_after);
            self.readers.remove(&oldest);
            removed.push(oldest);
        }
        if pruned_total > 0 {
            // Publish the pruned index BEFORE deleting the files: a crash
            // between the two leaves harmless orphan segments (skipped on
            // replay, re-collected by the next compaction) instead of a
            // snapshot whose entries point at segments that no longer exist.
            self.write_snapshot()?;
        }
        for id in removed {
            fs::remove_file(segment_path(&self.dir, id))
                .map_err(|e| TldagError::io("remove compacted segment", &e))?;
        }
        Ok(pruned_total)
    }

    /// Flushes, fsyncs, and writes a fresh snapshot covering the whole log.
    fn write_snapshot(&mut self) -> Result<(), TldagError> {
        self.flush_buffer()?;
        self.readers[&self.tail_id]
            .sync_data()
            .map_err(|e| TldagError::io("sync before snapshot", &e))?;
        self.fsyncs += 1;
        let blob = self.index.encode_snapshot(self.tail_id, self.tail_flushed);
        let tmp = self.dir.join("index.snap.tmp");
        fs::write(&tmp, &blob).map_err(|e| TldagError::io("write snapshot", &e))?;
        fs::rename(&tmp, snapshot_path(&self.dir))
            .map_err(|e| TldagError::io("publish snapshot", &e))?;
        self.appends_since_snapshot = 0;
        Ok(())
    }

    /// The directory this store lives in.
    pub fn dir(&self) -> &Path {
        &self.dir
    }

    /// First sequence number still retained (> 0 after compaction).
    pub fn base_seq(&self) -> u32 {
        self.index.base_seq()
    }

    fn read_location(&self, location: RecordLocation) -> Result<DataBlock, TldagError> {
        let mut frame = vec![0u8; location.len as usize];
        if location.segment == self.tail_id && location.offset >= self.tail_flushed {
            // Records are appended and flushed whole, so a buffered record
            // lies entirely within the buffer.
            let start = (location.offset - self.tail_flushed) as usize;
            let end = start + location.len as usize;
            frame.copy_from_slice(&self.buffer[start..end]);
        } else {
            let file = self
                .readers
                .get(&location.segment)
                .ok_or_else(|| TldagError::Corrupt("index references dropped segment".into()))?;
            file.read_exact_at(&mut frame, location.offset)
                .map_err(|e| TldagError::io("read record", &e))?;
        }
        record::decode_indexed(&frame)
    }

    fn get_inner(&self, seq: u32) -> Option<DataBlock> {
        let entry = self.index.entry(seq)?;
        if let Some(block) = self.cache.lock().expect("cache lock").get(seq) {
            return Some(block);
        }
        // Index and log are maintained together; a read failure here is
        // storage corruption, which the simulator treats as fatal.
        let block = self
            .read_location(entry.location)
            .expect("indexed record must decode");
        self.cache
            .lock()
            .expect("cache lock")
            .insert(seq, block.clone());
        Some(block)
    }
}

impl BlockBackend for DurableStore {
    fn append(&mut self, block: DataBlock) -> Result<(), TldagError> {
        let expected = self.index.next_seq();
        if block.id.seq != expected {
            return Err(TldagError::OutOfOrderAppend {
                expected,
                got: block.id.seq,
            });
        }
        let rec = record::encode_record(&block);
        let tail_size = self.tail_flushed + self.buffer.len() as u64;
        if tail_size > 0 && tail_size + rec.len() as u64 > self.opts.segment_bytes {
            self.roll_segment()?;
        }
        let location = RecordLocation {
            segment: self.tail_id,
            offset: self.tail_flushed + self.buffer.len() as u64,
            len: rec.len() as u32,
        };
        self.buffer.extend_from_slice(&rec);
        self.index.push(&block, location);
        self.cache
            .lock()
            .expect("cache lock")
            .insert(block.id.seq, block);
        self.appends_since_snapshot += 1;
        if self.buffer.len() >= self.opts.flush_buffer_bytes {
            self.flush_buffer()?;
        }
        Ok(())
    }

    fn len(&self) -> usize {
        self.index.next_seq() as usize
    }

    fn get(&self, seq: u32) -> Option<DataBlock> {
        self.get_inner(seq)
    }

    fn by_header_digest(&self, digest: &Digest) -> Option<DataBlock> {
        self.get_inner(self.index.seq_of_digest(digest)?)
    }

    fn oldest_child_of(&self, target: &Digest) -> Option<DataBlock> {
        self.get_inner(self.index.oldest_child_of(target)?)
    }

    fn children_of(&self, target: &Digest) -> Vec<DataBlock> {
        self.index
            .children_of(target)
            .into_iter()
            .filter_map(|seq| self.get_inner(seq))
            .collect()
    }

    fn iter(&self) -> Box<dyn Iterator<Item = DataBlock> + '_> {
        Box::new(
            (self.index.base_seq()..self.index.next_seq()).filter_map(|seq| self.get_inner(seq)),
        )
    }

    fn iter_meta(&self) -> Box<dyn Iterator<Item = (BlockId, u64)> + '_> {
        let Some(owner) = self.index.owner() else {
            return Box::new(std::iter::empty());
        };
        Box::new(
            (self.index.base_seq()..self.index.next_seq()).filter_map(move |seq| {
                self.index
                    .entry(seq)
                    .map(|e| (BlockId::new(NodeId(owner), seq), e.time))
            }),
        )
    }

    fn logical_bits(&self, cfg: &ProtocolConfig) -> Bits {
        self.index.logical_bits(cfg)
    }

    fn resident_bytes(&self) -> usize {
        self.index.resident_bytes()
            + self.buffer.len()
            + self.cache.lock().expect("cache lock").resident_bytes()
    }

    fn sync(&mut self) -> Result<(), TldagError> {
        self.flush_buffer()?;
        self.readers[&self.tail_id]
            .sync_data()
            .map_err(|e| TldagError::io("fsync tail", &e))?;
        self.fsyncs += 1;
        self.durable_seq = self.index.next_seq();
        if self.appends_since_snapshot >= self.opts.snapshot_every {
            self.write_snapshot()?;
        }
        Ok(())
    }

    fn durable_len(&self) -> usize {
        self.durable_seq as usize
    }

    fn fsync_count(&self) -> u64 {
        self.fsyncs
    }
}

/// Provisions one [`DurableStore`] per node under a root directory
/// (`root/node-<id>/`), implementing [`BackendFactory`] so
/// `TldagNetwork::with_factory` can run any experiment disk-backed.
#[derive(Debug)]
pub struct DiskFactory {
    root: PathBuf,
    opts: StorageOptions,
}

impl DiskFactory {
    /// A factory rooted at `root` with the given engine options.
    pub fn new(root: impl Into<PathBuf>, opts: StorageOptions) -> Self {
        DiskFactory {
            root: root.into(),
            opts,
        }
    }

    /// The per-node storage directory.
    pub fn node_dir(&self, node: NodeId) -> PathBuf {
        self.root.join(format!("node-{}", node.0))
    }
}

impl BackendFactory for DiskFactory {
    /// Creates a **fresh** store for `node`, wiping any leftovers from a
    /// previous run of the same experiment.
    ///
    /// # Panics
    ///
    /// Panics when the directory cannot be created — a simulation cannot
    /// proceed without its storage root.
    fn create(&mut self, node: NodeId) -> Box<dyn BlockBackend> {
        let dir = self.node_dir(node);
        let _ = fs::remove_dir_all(&dir);
        Box::new(
            DurableStore::open(&dir, self.opts.clone())
                .unwrap_or_else(|e| panic!("cannot create store in {}: {e}", dir.display())),
        )
    }

    /// Reopens `node`'s directory, recovering the durable chain prefix.
    fn reopen(&mut self, node: NodeId) -> Result<Box<dyn BlockBackend>, TldagError> {
        Ok(Box::new(DurableStore::open(
            self.node_dir(node),
            self.opts.clone(),
        )?))
    }
}
