//! The durable block-log engine: the shared segmented-log core
//! ([`crate::segment::SegmentSet`]) plus an in-memory index, snapshot/
//! tail-replay recovery, and segment-aware compaction.
//!
//! ## Layout
//!
//! A store owns one directory:
//!
//! ```text
//! node-7/
//!   seg-000000.log     sealed segment (never written again)
//!   seg-000001.log     …
//!   seg-000002.log     tail segment (appends go here)
//!   index.snap         checksummed index snapshot + covered log position
//!   LOCK               single-writer guard (holder PID)
//! ```
//!
//! Records are CRC-framed codec-encoded blocks ([`crate::record`]); a record
//! never spans segments. Appends accumulate in the core's write buffer and
//! [`DurableStore::sync`] flushes, `fsync`s, and advances the durability
//! watermark. A crash (dropping the store without sync) loses at most the
//! buffered tail — exactly the contract [`BlockBackend::durable_len`]
//! advertises.
//!
//! ## Recovery
//!
//! `open` loads `index.snap` if present and valid, then replays only the log
//! records after the snapshot's covered position; without a usable snapshot
//! it scans every segment. The core handles torn-tail truncation (a torn
//! write in the final segment is an expected crash artifact) and reports
//! damage in earlier segments as corruption.
//!
//! ## Compaction
//!
//! [`DurableStore::compact_to_budget`] drops whole sealed segments oldest
//! first until disk usage fits the budget, pruning the index with them. The
//! budget is naturally expressed through the paper's storage-overhead model
//! (Eq. 2): pick a block-count horizon, multiply by `cfg.block_bits`, and the
//! engine keeps disk usage within it while `len()` keeps counting the full
//! chain so sequence numbers never regress. The first still-retained
//! sequence number is the **pruned floor** surfaced through
//! [`BlockBackend::pruned_floor`] — the responder side of PoP uses it to
//! answer requests for compacted blocks gracefully.

use crate::index::BlockIndex;
use crate::record;
use crate::segment::{SegmentSet, StorageOptions};
use std::collections::{HashMap, VecDeque};
use std::fs;
use std::path::{Path, PathBuf};
use std::sync::Mutex;
use tldag_core::config::ProtocolConfig;
use tldag_core::error::TldagError;
use tldag_core::store::{BackendFactory, BlockBackend, TrustCache};
use tldag_core::{codec, BlockId, DataBlock};
use tldag_crypto::Digest;
use tldag_sim::{Bits, NodeId};

/// Bounded FIFO cache of decoded blocks.
#[derive(Debug, Default)]
struct BlockCache {
    capacity: usize,
    order: VecDeque<u32>,
    blocks: HashMap<u32, DataBlock>,
}

impl BlockCache {
    fn new(capacity: usize) -> Self {
        BlockCache {
            capacity,
            order: VecDeque::with_capacity(capacity),
            blocks: HashMap::with_capacity(capacity),
        }
    }

    fn get(&self, seq: u32) -> Option<DataBlock> {
        self.blocks.get(&seq).cloned()
    }

    fn insert(&mut self, seq: u32, block: DataBlock) {
        if self.capacity == 0 || self.blocks.contains_key(&seq) {
            return;
        }
        while self.blocks.len() >= self.capacity {
            let Some(evict) = self.order.pop_front() else {
                break;
            };
            self.blocks.remove(&evict);
        }
        self.order.push_back(seq);
        self.blocks.insert(seq, block);
    }

    fn evict_below(&mut self, seq: u32) {
        self.order.retain(|&s| s >= seq);
        self.blocks.retain(|&s, _| s >= seq);
    }

    fn resident_bytes(&self) -> usize {
        self.blocks
            .values()
            .map(|b| 256 + b.header.digests.len() * 36 + b.body.payload.len())
            .sum()
    }
}

fn snapshot_path(dir: &Path) -> PathBuf {
    dir.join("index.snap")
}

/// The durable, segmented block-log storage engine.
///
/// Implements [`BlockBackend`], so a [`tldag_core::LedgerNode`] can run on it
/// interchangeably with the in-memory store — but with a bounded resident
/// footprint (index + write buffer + read cache) and a chain that survives
/// process restarts.
#[derive(Debug)]
pub struct DurableStore {
    set: SegmentSet,
    opts: StorageOptions,
    index: BlockIndex,
    /// Blocks guaranteed on stable storage (advanced by [`Self::sync`]).
    durable_seq: u32,
    appends_since_snapshot: u32,
    cache: Mutex<BlockCache>,
}

impl DurableStore {
    /// Opens (or creates) the store in `dir`, running crash recovery:
    /// snapshot load, tail replay, and torn-tail truncation.
    ///
    /// # Errors
    ///
    /// [`TldagError::Locked`] when another live handle owns the directory,
    /// [`TldagError::Storage`] on I/O failure, [`TldagError::Corrupt`] when
    /// a **sealed** segment fails validation (a corrupt snapshot alone is
    /// not fatal — it falls back to a full scan).
    pub fn open(dir: impl Into<PathBuf>, opts: StorageOptions) -> Result<Self, TldagError> {
        let dir = dir.into();
        let mut set = SegmentSet::open(&dir, "seg", opts.segment_bytes, opts.flush_buffer_bytes)?;
        let segment_ids = set.segment_ids();

        // Snapshot load is best-effort: any inconsistency downgrades to a
        // full log scan starting at the oldest live segment.
        let snapshot = fs::read(snapshot_path(&dir))
            .ok()
            .and_then(|blob| BlockIndex::decode_snapshot(&blob).ok())
            .filter(|(_, seg, _)| segment_ids.contains(seg))
            // If the snapshot claims coverage beyond its segment's file (it
            // was taken right before a crash that also tore the tail),
            // rescan from scratch.
            .filter(|&(_, seg, off)| set.segment_len(seg).is_ok_and(|len| off <= len));
        let (mut index, replay_start) = match snapshot {
            Some((index, seg, off)) => (index, Some((seg, off))),
            None => (BlockIndex::new(), None),
        };

        set.replay(replay_start, &mut |block, location| {
            let fresh = index.retained() == 0 && index.base_seq() == 0;
            if fresh && block.id.seq != 0 {
                // Full scan after compaction: the first surviving record
                // defines the chain base.
                index.start_at(block.id.seq);
            }
            let expected = index.next_seq();
            if block.id.seq != expected {
                return Err(TldagError::Corrupt(format!(
                    "segment {}: expected seq {expected}, found {}",
                    location.segment, block.id.seq
                )));
            }
            index.push(&block, location);
            Ok(())
        })?;
        let durable_seq = index.next_seq();

        Ok(DurableStore {
            cache: Mutex::new(BlockCache::new(opts.cache_blocks)),
            set,
            opts,
            index,
            durable_seq,
            appends_since_snapshot: 0,
        })
    }

    /// Total bytes on disk (flushed) plus the pending write buffer.
    pub fn disk_usage_bytes(&self) -> u64 {
        self.set.disk_usage_bytes()
    }

    /// Drops whole sealed segments, oldest first, until disk usage is within
    /// `max_bytes` (the tail is never dropped). Returns the number of blocks
    /// pruned; they are no longer retrievable from this store.
    ///
    /// The chain length ([`BlockBackend::len`]) is unaffected — sequence
    /// numbers keep counting — which is what lets a node honour the paper's
    /// storage budget (Eq. 2 × retention horizon) without forking its chain.
    ///
    /// # Errors
    ///
    /// [`TldagError::Storage`] on I/O failure.
    pub fn compact_to_budget(&mut self, max_bytes: u64) -> Result<usize, TldagError> {
        let mut pruned_total = 0usize;
        let mut removed: Vec<u32> = Vec::new();
        while self.set.disk_usage_bytes() > max_bytes {
            let Some(oldest) = self.set.oldest_sealed() else {
                break; // only the tail is left
            };
            // The first seq stored past the dropped segment becomes the base.
            let next_seq_after = (self.index.base_seq()..self.index.next_seq())
                .find(|&seq| {
                    self.index
                        .entry(seq)
                        .is_some_and(|e| e.location.segment > oldest)
                })
                .unwrap_or(self.index.next_seq());
            if next_seq_after >= self.index.next_seq() {
                // This segment holds the chain head (the tail is empty right
                // after a roll). Dropping it would lose `latest()` and break
                // the node's own prev-digest linkage — keep it, budget or no.
                break;
            }
            pruned_total += self.index.prune_below(next_seq_after);
            self.cache
                .lock()
                .expect("cache lock")
                .evict_below(next_seq_after);
            self.set.retire_segment(oldest);
            removed.push(oldest);
        }
        if pruned_total > 0 {
            // Publish the pruned index BEFORE deleting the files: a crash
            // between the two leaves harmless orphan segments (skipped on
            // replay, re-collected by the next compaction) instead of a
            // snapshot whose entries point at segments that no longer exist.
            self.write_snapshot()?;
        }
        for id in removed {
            self.set.delete_segment_file(id)?;
        }
        Ok(pruned_total)
    }

    /// Flushes, fsyncs, and writes a fresh snapshot covering the whole log.
    fn write_snapshot(&mut self) -> Result<(), TldagError> {
        self.set.sync()?;
        let blob = self.index.encode_snapshot(
            self.set.tail_id(),
            self.set.segment_len(self.set.tail_id())?,
        );
        let tmp = self.set.dir().join("index.snap.tmp");
        fs::write(&tmp, &blob).map_err(|e| TldagError::io("write snapshot", &e))?;
        fs::rename(&tmp, snapshot_path(self.set.dir()))
            .map_err(|e| TldagError::io("publish snapshot", &e))?;
        self.appends_since_snapshot = 0;
        Ok(())
    }

    /// The directory this store lives in.
    pub fn dir(&self) -> &Path {
        self.set.dir()
    }

    /// First sequence number still retained (> 0 after compaction).
    pub fn base_seq(&self) -> u32 {
        self.index.base_seq()
    }

    fn get_inner(&self, seq: u32) -> Option<DataBlock> {
        let entry = self.index.entry(seq)?;
        if let Some(block) = self.cache.lock().expect("cache lock").get(seq) {
            return Some(block);
        }
        // Index and log are maintained together; a read failure here is
        // storage corruption, which the simulator treats as fatal.
        let block = self
            .set
            .read(entry.location)
            .expect("indexed record must decode");
        self.cache
            .lock()
            .expect("cache lock")
            .insert(seq, block.clone());
        Some(block)
    }
}

impl BlockBackend for DurableStore {
    fn append(&mut self, block: DataBlock) -> Result<(), TldagError> {
        let expected = self.index.next_seq();
        if block.id.seq != expected {
            return Err(TldagError::OutOfOrderAppend {
                expected,
                got: block.id.seq,
            });
        }
        let rec = record::encode_record(&block);
        let outcome = self.set.append_record(&rec)?;
        // Index BEFORE any compaction: a roll-triggered compaction writes a
        // snapshot covering the tail — including the record just staged —
        // so the record's index entry must already exist or a reopen from
        // that snapshot would replay past an unindexed block and fail with
        // a bogus sequence-gap corruption error.
        self.index.push(&block, outcome.location);
        self.cache
            .lock()
            .expect("cache lock")
            .insert(block.id.seq, block);
        self.appends_since_snapshot += 1;
        if outcome.rolled {
            if let Some(budget) = self.opts.retain_disk_bytes {
                self.compact_to_budget(budget)?;
            }
        }
        Ok(())
    }

    fn len(&self) -> usize {
        self.index.next_seq() as usize
    }

    fn get(&self, seq: u32) -> Option<DataBlock> {
        self.get_inner(seq)
    }

    fn by_header_digest(&self, digest: &Digest) -> Option<DataBlock> {
        self.get_inner(self.index.seq_of_digest(digest)?)
    }

    fn oldest_child_of(&self, target: &Digest) -> Option<DataBlock> {
        self.get_inner(self.index.oldest_child_of(target)?)
    }

    fn children_of(&self, target: &Digest) -> Vec<DataBlock> {
        self.index
            .children_of(target)
            .into_iter()
            .filter_map(|seq| self.get_inner(seq))
            .collect()
    }

    fn iter(&self) -> Box<dyn Iterator<Item = DataBlock> + '_> {
        Box::new(
            (self.index.base_seq()..self.index.next_seq()).filter_map(|seq| self.get_inner(seq)),
        )
    }

    fn iter_meta(&self) -> Box<dyn Iterator<Item = (BlockId, u64)> + '_> {
        let Some(owner) = self.index.owner() else {
            return Box::new(std::iter::empty());
        };
        Box::new(
            (self.index.base_seq()..self.index.next_seq()).filter_map(move |seq| {
                self.index
                    .entry(seq)
                    .map(|e| (BlockId::new(NodeId(owner), seq), e.time))
            }),
        )
    }

    fn logical_bits(&self, cfg: &ProtocolConfig) -> Bits {
        self.index.logical_bits(cfg)
    }

    fn resident_bytes(&self) -> usize {
        self.index.resident_bytes()
            + self.set.buffered_bytes()
            + self.cache.lock().expect("cache lock").resident_bytes()
    }

    fn sync(&mut self) -> Result<(), TldagError> {
        self.set.sync()?;
        self.durable_seq = self.index.next_seq();
        if self.appends_since_snapshot >= self.opts.snapshot_every {
            self.write_snapshot()?;
        }
        Ok(())
    }

    fn durable_len(&self) -> usize {
        self.durable_seq as usize
    }

    fn pruned_floor(&self) -> u32 {
        self.index.base_seq()
    }

    fn fsync_count(&self) -> u64 {
        self.set.fsync_count()
    }

    fn segment_count(&self) -> u64 {
        self.set.segment_count()
    }
}

/// Provisions one [`DurableStore`] per node under a root directory
/// (`root/node-<id>/`), implementing [`BackendFactory`] so
/// `TldagNetwork::with_factory` can run any experiment disk-backed. Also
/// persists each node's trusted-header cache `H_i` (`trust.cache` in the
/// node directory) when the network opts in.
#[derive(Debug)]
pub struct DiskFactory {
    root: PathBuf,
    opts: StorageOptions,
}

impl DiskFactory {
    /// A factory rooted at `root` with the given engine options.
    pub fn new(root: impl Into<PathBuf>, opts: StorageOptions) -> Self {
        DiskFactory {
            root: root.into(),
            opts,
        }
    }

    /// The per-node storage directory.
    pub fn node_dir(&self, node: NodeId) -> PathBuf {
        self.root.join(format!("node-{}", node.0))
    }

    fn trust_path(&self, node: NodeId) -> PathBuf {
        self.node_dir(node).join("trust.cache")
    }
}

impl BackendFactory for DiskFactory {
    /// Creates a **fresh** store for `node`, wiping any leftovers from a
    /// previous run of the same experiment.
    ///
    /// # Panics
    ///
    /// Panics when the directory cannot be created — a simulation cannot
    /// proceed without its storage root.
    fn create(&mut self, node: NodeId) -> Box<dyn BlockBackend> {
        let dir = self.node_dir(node);
        let _ = fs::remove_dir_all(&dir);
        Box::new(
            DurableStore::open(&dir, self.opts.clone())
                .unwrap_or_else(|e| panic!("cannot create store in {}: {e}", dir.display())),
        )
    }

    /// Reopens `node`'s directory, recovering the durable chain prefix.
    fn reopen(&mut self, node: NodeId) -> Result<Box<dyn BlockBackend>, TldagError> {
        Ok(Box::new(DurableStore::open(
            self.node_dir(node),
            self.opts.clone(),
        )?))
    }

    fn save_trust_cache(&mut self, node: NodeId, cache: &TrustCache) -> Result<(), TldagError> {
        write_trust_cache(&self.trust_path(node), cache)
    }

    fn load_trust_cache(&mut self, node: NodeId) -> Result<Option<TrustCache>, TldagError> {
        Ok(read_trust_cache(&self.trust_path(node)))
    }
}

/// Atomically persists `H_i` (tmp + rename over the previous file).
pub(crate) fn write_trust_cache(path: &Path, cache: &TrustCache) -> Result<(), TldagError> {
    if let Some(parent) = path.parent() {
        fs::create_dir_all(parent).map_err(|e| TldagError::io("create trust-cache dir", &e))?;
    }
    let blob = codec::encode_trust_cache(cache);
    let tmp = path.with_extension("cache.tmp");
    fs::write(&tmp, &blob).map_err(|e| TldagError::io("write trust cache", &e))?;
    fs::rename(&tmp, path).map_err(|e| TldagError::io("publish trust cache", &e))
}

/// Loads a persisted `H_i`; a missing or undecodable file yields `None`
/// (the node simply restarts cold — `H_i` is a cache, not ledger state).
pub(crate) fn read_trust_cache(path: &Path) -> Option<TrustCache> {
    let blob = fs::read(path).ok()?;
    codec::decode_trust_cache(&blob).ok()
}
