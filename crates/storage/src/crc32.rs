//! CRC-32 (IEEE 802.3, reflected polynomial `0xEDB88320`) for record and
//! snapshot framing. Table-driven, one table baked at first use.

use std::sync::OnceLock;

static TABLE: OnceLock<[u32; 256]> = OnceLock::new();

fn table() -> &'static [u32; 256] {
    TABLE.get_or_init(|| {
        let mut table = [0u32; 256];
        for (i, slot) in table.iter_mut().enumerate() {
            let mut crc = i as u32;
            for _ in 0..8 {
                crc = if crc & 1 == 1 {
                    (crc >> 1) ^ 0xEDB8_8320
                } else {
                    crc >> 1
                };
            }
            *slot = crc;
        }
        table
    })
}

/// CRC-32 of `data`.
pub fn crc32(data: &[u8]) -> u32 {
    let table = table();
    let mut crc = !0u32;
    for &byte in data {
        crc = (crc >> 8) ^ table[((crc ^ u32::from(byte)) & 0xff) as usize];
    }
    !crc
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn known_vectors() {
        // Standard check value for "123456789".
        assert_eq!(crc32(b"123456789"), 0xCBF4_3926);
        assert_eq!(crc32(b""), 0);
    }

    #[test]
    fn sensitive_to_any_flip() {
        let base = crc32(b"hello world");
        let mut tampered = b"hello world".to_vec();
        tampered[4] ^= 0x01;
        assert_ne!(crc32(&tampered), base);
    }
}
