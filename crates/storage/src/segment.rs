//! The shared segmented-log core: the file-level machinery both storage
//! engines are built on.
//!
//! A [`SegmentSet`] owns one directory of numbered append-only segment files
//! (`<prefix>-000000.log`, `<prefix>-000001.log`, …) plus a `LOCK` file, and
//! provides exactly the mechanics the engines share:
//!
//! * **Rolling** — appends go to the tail segment; when a record would push
//!   the tail past [`StorageOptions::segment_bytes`] the tail is flushed,
//!   `fsync`ed (sealed), and a fresh segment becomes the tail. Records never
//!   span segments.
//! * **Streaming replay** — [`SegmentSet::replay`] walks every live segment
//!   in chunks, decoding CRC-framed records ([`crate::record`]) and handing
//!   each to a caller-supplied visitor. Resident memory stays
//!   `O(chunk + largest record)` no matter how big the log is.
//! * **Torn-tail truncation** — an invalid frame in the **tail** segment is
//!   an expected crash artifact: the file is truncated to the last valid
//!   record boundary. Anything invalid in a sealed segment is reported as
//!   [`TldagError::Corrupt`].
//! * **Retention accounting** — [`SegmentSet::disk_usage_bytes`] and the
//!   retire/delete primitives let the engines implement compaction policies
//!   (which entries survive is *policy* and stays with the engines; which
//!   bytes exist on disk is *mechanism* and lives here).
//! * **Single-writer locking** — opening a directory acquires a `LOCK` file
//!   carrying the holder's PID. A second live handle on the same directory
//!   (same process, or another live process) gets a clear
//!   [`TldagError::Locked`] instead of silently corrupting the log; stale
//!   locks left by dead processes are reclaimed.
//!
//! The per-node [`crate::engine::DurableStore`] layers an indexed chain,
//! snapshots, and an Eq. 2 retention budget on top; the group-commit
//! [`crate::group::ShardLog`] layers per-owner demultiplexed indexes and the
//! one-fsync-per-batch durability contract. Both share every byte of the
//! file handling below.

use crate::record::{self, RecordRead};
use std::collections::BTreeMap;
use std::fs::{self, File, OpenOptions};
use std::io::ErrorKind;
use std::os::unix::fs::FileExt;
use std::path::{Path, PathBuf};
use tldag_core::error::TldagError;
use tldag_core::DataBlock;

pub use crate::index::RecordLocation;

/// Tuning knobs shared by the segmented-log engines.
///
/// `snapshot_every` and `cache_blocks` only apply to the per-node
/// [`crate::engine::DurableStore`] (the group-commit shard log keeps no
/// decoded-block cache and recovers by full scan); the remaining fields
/// drive the shared [`SegmentSet`] core.
#[derive(Clone, Debug)]
pub struct StorageOptions {
    /// Target maximum bytes per segment file (records never span segments).
    pub segment_bytes: u64,
    /// Appends between automatic index snapshots (taken at sync points).
    pub snapshot_every: u32,
    /// Decoded blocks kept in the read cache.
    pub cache_blocks: usize,
    /// Write-buffer size that triggers a (non-fsync) flush to the tail file.
    pub flush_buffer_bytes: usize,
    /// Optional disk budget in bytes; exceeding it triggers compaction at
    /// segment rolls (oldest sealed segments are dropped first).
    pub retain_disk_bytes: Option<u64>,
}

impl Default for StorageOptions {
    fn default() -> Self {
        StorageOptions {
            segment_bytes: 4 * 1024 * 1024,
            snapshot_every: 1024,
            cache_blocks: 32,
            flush_buffer_bytes: 256 * 1024,
            retain_disk_bytes: None,
        }
    }
}

impl StorageOptions {
    /// Small segments / frequent snapshots, for tests that exercise rolls
    /// and recovery paths quickly.
    pub fn compact_test() -> Self {
        StorageOptions {
            segment_bytes: 4 * 1024,
            snapshot_every: 8,
            cache_blocks: 4,
            flush_buffer_bytes: 512,
            retain_disk_bytes: None,
        }
    }

    /// Sets the retention budget (`None` disables compaction).
    pub fn with_retain_disk_bytes(mut self, budget: Option<u64>) -> Self {
        self.retain_disk_bytes = budget;
        self
    }
}

/// Exclusive directory lock, held for the lifetime of a [`SegmentSet`].
///
/// The lock is a `LOCK` file containing the holder's PID, created with
/// `O_EXCL`. A lock whose recorded PID no longer names a live process is
/// stale (the holder crashed) and is silently reclaimed.
#[derive(Debug)]
struct DirLock {
    path: PathBuf,
}

impl DirLock {
    fn acquire(dir: &Path) -> Result<DirLock, TldagError> {
        let path = dir.join("LOCK");
        loop {
            match OpenOptions::new().write(true).create_new(true).open(&path) {
                Ok(file) => {
                    let pid = std::process::id().to_string();
                    file.write_all_at(pid.as_bytes(), 0)
                        .map_err(|e| TldagError::io("write lock file", &e))?;
                    return Ok(DirLock { path });
                }
                Err(e) if e.kind() == ErrorKind::AlreadyExists => {
                    let holder = fs::read_to_string(&path)
                        .ok()
                        .and_then(|s| s.trim().parse::<u32>().ok());
                    if holder.is_some_and(pid_is_live) {
                        return Err(TldagError::Locked {
                            dir: dir.display().to_string(),
                            holder_pid: holder.unwrap_or(0),
                        });
                    }
                    // Stale lock from a crashed process: reclaim and retry.
                    // A racing remove by another reclaimer is fine — the
                    // loop re-runs the O_EXCL create.
                    match fs::remove_file(&path) {
                        Ok(()) => {}
                        Err(e) if e.kind() == ErrorKind::NotFound => {}
                        Err(e) => return Err(TldagError::io("reclaim stale lock", &e)),
                    }
                }
                Err(e) => return Err(TldagError::io("create lock file", &e)),
            }
        }
    }
}

impl Drop for DirLock {
    fn drop(&mut self) {
        let _ = fs::remove_file(&self.path);
    }
}

/// Whether `pid` names a live process. Our own PID is always live (the lock
/// is held by another handle in this very process); otherwise `/proc/<pid>`
/// decides. On a system without procfs every foreign lock is treated as
/// stale — single-writer protection then only covers the same process.
fn pid_is_live(pid: u32) -> bool {
    if pid == std::process::id() {
        return true;
    }
    Path::new("/proc").is_dir() && Path::new(&format!("/proc/{pid}")).exists()
}

/// Outcome of [`SegmentSet::append_record`].
#[derive(Clone, Copy, Debug)]
pub struct SegmentAppend {
    /// Where the record landed.
    pub location: RecordLocation,
    /// Whether the append sealed the previous tail and started a new
    /// segment — the engines hook their compaction policies here.
    pub rolled: bool,
}

/// A directory of numbered segment files with a write-buffered tail.
///
/// This is the *mechanism* half of both storage engines; see the module docs
/// for the contract. Callers must run [`SegmentSet::replay`] exactly once
/// after [`SegmentSet::open`] (it establishes the valid tail length) before
/// appending.
#[derive(Debug)]
pub struct SegmentSet {
    dir: PathBuf,
    prefix: &'static str,
    segment_bytes: u64,
    flush_buffer_bytes: usize,
    /// Read/write handles, one per live segment (including the tail).
    readers: BTreeMap<u32, File>,
    tail_id: u32,
    /// Bytes of the tail segment already written to the file.
    tail_flushed: u64,
    /// Records appended but not yet written to the file.
    buffer: Vec<u8>,
    /// Physical fsync calls issued so far (`sync_data` on any file).
    fsyncs: u64,
    /// Held for the set's lifetime; dropping releases the directory.
    _lock: DirLock,
}

impl SegmentSet {
    /// Opens (or creates) the segment set in `dir`, acquiring the directory
    /// lock and creating the first segment if none exists. Replay has not
    /// happened yet: call [`SegmentSet::replay`] before appending.
    ///
    /// # Errors
    ///
    /// [`TldagError::Locked`] when another live handle owns the directory,
    /// [`TldagError::Storage`] on I/O failure.
    pub fn open(
        dir: impl Into<PathBuf>,
        prefix: &'static str,
        segment_bytes: u64,
        flush_buffer_bytes: usize,
    ) -> Result<Self, TldagError> {
        let dir = dir.into();
        fs::create_dir_all(&dir).map_err(|e| TldagError::io("create storage dir", &e))?;
        let lock = DirLock::acquire(&dir)?;

        let mut ids = Self::list_segments(&dir, prefix)?;
        if ids.is_empty() {
            File::create(Self::path_of(&dir, prefix, 0))
                .map_err(|e| TldagError::io("create first segment", &e))?;
            ids.push(0);
        }
        let mut readers = BTreeMap::new();
        for &id in &ids {
            let file = OpenOptions::new()
                .read(true)
                .write(true)
                .open(Self::path_of(&dir, prefix, id))
                .map_err(|e| TldagError::io("open segment", &e))?;
            readers.insert(id, file);
        }
        let tail_id = *ids.last().expect("at least one segment");
        Ok(SegmentSet {
            dir,
            prefix,
            segment_bytes,
            flush_buffer_bytes: flush_buffer_bytes.max(1),
            readers,
            tail_id,
            tail_flushed: 0,
            buffer: Vec::new(),
            fsyncs: 0,
            _lock: lock,
        })
    }

    fn path_of(dir: &Path, prefix: &str, id: u32) -> PathBuf {
        dir.join(format!("{prefix}-{id:06}.log"))
    }

    fn list_segments(dir: &Path, prefix: &str) -> Result<Vec<u32>, TldagError> {
        let mut ids = Vec::new();
        let Ok(entries) = fs::read_dir(dir) else {
            return Ok(ids); // directory does not exist yet
        };
        for entry in entries {
            let entry = entry.map_err(|e| TldagError::io("read storage dir", &e))?;
            let name = entry.file_name();
            let Some(name) = name.to_str() else { continue };
            if let Some(id) = name
                .strip_prefix(prefix)
                .and_then(|rest| rest.strip_prefix('-'))
                .and_then(|rest| rest.strip_suffix(".log"))
                .and_then(|digits| digits.parse::<u32>().ok())
            {
                ids.push(id);
            }
        }
        ids.sort_unstable();
        Ok(ids)
    }

    /// The directory this set lives in.
    pub fn dir(&self) -> &Path {
        &self.dir
    }

    /// Live segment ids, ascending (the last one is the tail).
    pub fn segment_ids(&self) -> Vec<u32> {
        self.readers.keys().copied().collect()
    }

    /// The tail segment id.
    pub fn tail_id(&self) -> u32 {
        self.tail_id
    }

    /// The oldest **sealed** segment (never the tail), if any.
    pub fn oldest_sealed(&self) -> Option<u32> {
        self.readers
            .keys()
            .next()
            .copied()
            .filter(|&id| id != self.tail_id)
    }

    /// Current length of segment `id`'s file on disk.
    ///
    /// # Errors
    ///
    /// [`TldagError::Storage`] when the segment is unknown or cannot be
    /// stat-ed.
    pub fn segment_len(&self, id: u32) -> Result<u64, TldagError> {
        let file = self
            .readers
            .get(&id)
            .ok_or_else(|| TldagError::Storage(format!("unknown segment {id}")))?;
        Ok(file
            .metadata()
            .map_err(|e| TldagError::io("stat segment", &e))?
            .len())
    }

    /// Physical fsync calls issued so far.
    pub fn fsync_count(&self) -> u64 {
        self.fsyncs
    }

    /// Number of live segment files (the tail included).
    pub fn segment_count(&self) -> u64 {
        self.readers.len() as u64
    }

    /// Bytes currently staged in the write buffer.
    pub fn buffered_bytes(&self) -> usize {
        self.buffer.len()
    }

    /// Total bytes on disk (flushed) plus the pending write buffer.
    pub fn disk_usage_bytes(&self) -> u64 {
        let sealed: u64 = self
            .readers
            .iter()
            .filter(|(&id, _)| id != self.tail_id)
            .filter_map(|(_, f)| f.metadata().ok())
            .map(|m| m.len())
            .sum();
        sealed + self.tail_flushed + self.buffer.len() as u64
    }

    /// Replays the live segments from `start` (a `(segment, offset)` pair;
    /// `None` means the oldest segment from offset 0), handing every valid
    /// record to `visit` in log order. An invalid frame in the tail segment
    /// truncates the file to the last valid boundary; in a sealed segment it
    /// is fatal. Establishes the tail write position — run exactly once
    /// after [`SegmentSet::open`], before any append.
    ///
    /// # Errors
    ///
    /// [`TldagError::Corrupt`] for sealed-segment damage or when `visit`
    /// rejects a record (e.g. an out-of-order sequence number, which no torn
    /// write can produce); [`TldagError::Storage`] on I/O failure. Errors
    /// from `visit` propagate unchanged.
    pub fn replay(
        &mut self,
        start: Option<(u32, u64)>,
        visit: &mut dyn FnMut(DataBlock, RecordLocation) -> Result<(), TldagError>,
    ) -> Result<(), TldagError> {
        let ids = self.segment_ids();
        let (start_segment, start_offset) = start.unwrap_or((ids[0], 0));
        for &id in ids.iter().filter(|&&id| id >= start_segment) {
            let offset = if id == start_segment { start_offset } else { 0 };
            let valid_len = self.replay_segment(id, offset, visit)?;
            if id == self.tail_id {
                self.tail_flushed = valid_len;
            }
        }
        Ok(())
    }

    /// Replays one segment from `offset` in chunks, returning the length of
    /// the valid prefix (truncating the file to it when this is the tail).
    fn replay_segment(
        &mut self,
        id: u32,
        offset: u64,
        visit: &mut dyn FnMut(DataBlock, RecordLocation) -> Result<(), TldagError>,
    ) -> Result<u64, TldagError> {
        const REPLAY_CHUNK: usize = 4 * 1024 * 1024;
        let is_tail = id == self.tail_id;
        let file = self.readers.get(&id).expect("replayed segment exists");
        let file_len = file
            .metadata()
            .map_err(|e| TldagError::io("stat segment", &e))?
            .len();
        let mut window: Vec<u8> = Vec::new();
        let mut window_start = offset.min(file_len); // file offset of window[0]
        let mut parsed = 0usize; // bytes of the window already consumed
        let mut read_to = window_start; // file offset up to which we have read
        loop {
            match record::read_record(&window[parsed..]) {
                RecordRead::Complete { block, consumed } => {
                    let location = RecordLocation {
                        segment: id,
                        offset: window_start + parsed as u64,
                        len: consumed as u32,
                    };
                    visit(block, location)?;
                    parsed += consumed;
                }
                RecordRead::Torn if read_to < file_len => {
                    // The window ends mid-record but the file has more:
                    // drop the parsed prefix and pull in the next chunk.
                    window.drain(..parsed);
                    window_start += parsed as u64;
                    parsed = 0;
                    let take = REPLAY_CHUNK.min((file_len - read_to) as usize);
                    let old_len = window.len();
                    window.resize(old_len + take, 0);
                    file.read_exact_at(&mut window[old_len..], read_to)
                        .map_err(|e| TldagError::io("read segment", &e))?;
                    read_to += take as u64;
                }
                RecordRead::Torn => {
                    // Clean end of the valid prefix (possibly the file end).
                    let valid = window_start + parsed as u64;
                    return self.finish_segment(id, valid, file_len, is_tail, "torn");
                }
                RecordRead::Corrupt(msg) => {
                    let valid = window_start + parsed as u64;
                    return self.finish_segment(id, valid, file_len, is_tail, &msg);
                }
            }
        }
    }

    fn finish_segment(
        &self,
        id: u32,
        valid_len: u64,
        file_len: u64,
        is_tail: bool,
        reason: &str,
    ) -> Result<u64, TldagError> {
        if valid_len == file_len {
            return Ok(valid_len); // clean end of segment, nothing invalid
        }
        if is_tail {
            // Expected crash artifact: discard the invalid tail.
            self.readers[&id]
                .set_len(valid_len)
                .map_err(|e| TldagError::io("truncate torn tail", &e))?;
            Ok(valid_len)
        } else {
            Err(TldagError::Corrupt(format!(
                "sealed segment {id} invalid at offset {valid_len}: {reason}"
            )))
        }
    }

    /// Appends one already-framed record, rolling the tail segment first
    /// when the record would not fit. Returns where the record landed and
    /// whether a roll happened (the compaction-policy hook).
    ///
    /// # Errors
    ///
    /// [`TldagError::Storage`] when the medium fails.
    pub fn append_record(&mut self, rec: &[u8]) -> Result<SegmentAppend, TldagError> {
        let tail_size = self.tail_flushed + self.buffer.len() as u64;
        let mut rolled = false;
        if tail_size > 0 && tail_size + rec.len() as u64 > self.segment_bytes {
            self.roll_segment()?;
            rolled = true;
        }
        let location = RecordLocation {
            segment: self.tail_id,
            offset: self.tail_flushed + self.buffer.len() as u64,
            len: rec.len() as u32,
        };
        self.buffer.extend_from_slice(rec);
        if self.buffer.len() >= self.flush_buffer_bytes {
            self.flush()?;
        }
        Ok(SegmentAppend { location, rolled })
    }

    /// Seals the tail segment (flush + fsync) and starts a new one.
    fn roll_segment(&mut self) -> Result<(), TldagError> {
        self.flush()?;
        self.readers[&self.tail_id]
            .sync_data()
            .map_err(|e| TldagError::io("sync sealed segment", &e))?;
        self.fsyncs += 1;
        let next = self.tail_id + 1;
        let file = OpenOptions::new()
            .read(true)
            .write(true)
            .create(true)
            .truncate(true)
            .open(Self::path_of(&self.dir, self.prefix, next))
            .map_err(|e| TldagError::io("create segment", &e))?;
        self.readers.insert(next, file);
        self.tail_id = next;
        self.tail_flushed = 0;
        Ok(())
    }

    /// Writes the buffered tail records to the file (no fsync).
    ///
    /// # Errors
    ///
    /// [`TldagError::Storage`] when the medium fails.
    pub fn flush(&mut self) -> Result<(), TldagError> {
        if self.buffer.is_empty() {
            return Ok(());
        }
        let file = self.readers.get(&self.tail_id).expect("tail reader");
        file.write_all_at(&self.buffer, self.tail_flushed)
            .map_err(|e| TldagError::io("flush tail buffer", &e))?;
        self.tail_flushed += self.buffer.len() as u64;
        self.buffer.clear();
        Ok(())
    }

    /// Flushes and fsyncs the tail segment.
    ///
    /// # Errors
    ///
    /// [`TldagError::Storage`] when the medium fails.
    pub fn sync(&mut self) -> Result<(), TldagError> {
        self.flush()?;
        self.readers[&self.tail_id]
            .sync_data()
            .map_err(|e| TldagError::io("fsync tail", &e))?;
        self.fsyncs += 1;
        Ok(())
    }

    /// Reads the record at `location`, serving it from the staging buffer
    /// when it has not been written out yet. Records are appended and
    /// flushed whole, so a buffered record lies entirely in the buffer.
    ///
    /// # Errors
    ///
    /// [`TldagError::Corrupt`] when the location references a retired
    /// segment or the stored bytes fail the checksum/decode (an indexed
    /// record was valid when written, so any mismatch is real corruption);
    /// [`TldagError::Storage`] on I/O failure.
    pub fn read(&self, location: RecordLocation) -> Result<DataBlock, TldagError> {
        let mut frame = vec![0u8; location.len as usize];
        if location.segment == self.tail_id && location.offset >= self.tail_flushed {
            let start = (location.offset - self.tail_flushed) as usize;
            let end = start + location.len as usize;
            frame.copy_from_slice(&self.buffer[start..end]);
        } else {
            let file = self
                .readers
                .get(&location.segment)
                .ok_or_else(|| TldagError::Corrupt("index references dropped segment".into()))?;
            file.read_exact_at(&mut frame, location.offset)
                .map_err(|e| TldagError::io("read record", &e))?;
        }
        record::decode_indexed(&frame)
    }

    /// Forgets a sealed segment (drops its reader) **without** deleting the
    /// file — callers that must publish metadata first (e.g. an index
    /// snapshot) delete afterwards via [`SegmentSet::delete_segment_file`].
    ///
    /// # Panics
    ///
    /// Panics when asked to retire the tail segment — compaction policies
    /// must never drop the tail.
    pub fn retire_segment(&mut self, id: u32) {
        assert_ne!(id, self.tail_id, "the tail segment cannot be retired");
        self.readers.remove(&id);
    }

    /// Deletes a retired segment's file.
    ///
    /// # Errors
    ///
    /// [`TldagError::Storage`] when the file cannot be removed.
    pub fn delete_segment_file(&self, id: u32) -> Result<(), TldagError> {
        fs::remove_file(Self::path_of(&self.dir, self.prefix, id))
            .map_err(|e| TldagError::io("remove compacted segment", &e))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use tldag_core::config::ProtocolConfig;
    use tldag_core::{BlockBody, BlockId};
    use tldag_crypto::schnorr::KeyPair;
    use tldag_sim::NodeId;

    fn block(seq: u32) -> DataBlock {
        let cfg = ProtocolConfig::test_default();
        DataBlock::create(
            &cfg,
            BlockId::new(NodeId(1), seq),
            u64::from(seq),
            vec![],
            BlockBody::new(vec![seq as u8; 32], cfg.body_bits),
            &KeyPair::from_seed(1),
        )
    }

    fn temp_dir(tag: &str) -> PathBuf {
        let dir = std::env::temp_dir().join(format!("tldag-segment-{tag}-{}", std::process::id()));
        let _ = fs::remove_dir_all(&dir);
        dir
    }

    #[test]
    fn append_roll_replay_round_trip() {
        let dir = temp_dir("roundtrip");
        let records: Vec<Vec<u8>> = (0..20).map(|s| record::encode_record(&block(s))).collect();
        let mut rolled_any = false;
        {
            let mut set = SegmentSet::open(&dir, "seg", 256, 64).unwrap();
            set.replay(None, &mut |_, _| Ok(())).unwrap();
            for rec in &records {
                rolled_any |= set.append_record(rec).unwrap().rolled;
            }
            set.sync().unwrap();
            assert!(set.fsync_count() > 0);
        }
        assert!(rolled_any, "small segments must roll");
        let mut set = SegmentSet::open(&dir, "seg", 256, 64).unwrap();
        let mut seqs = Vec::new();
        set.replay(None, &mut |b, loc| {
            assert!(loc.len > 0);
            seqs.push(b.id.seq);
            Ok(())
        })
        .unwrap();
        assert_eq!(seqs, (0..20).collect::<Vec<_>>());
        drop(set);
        fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn second_live_handle_is_locked_out() {
        let dir = temp_dir("lock");
        let first = SegmentSet::open(&dir, "seg", 1 << 20, 64).unwrap();
        let err = SegmentSet::open(&dir, "seg", 1 << 20, 64).unwrap_err();
        assert!(
            matches!(err, TldagError::Locked { .. }),
            "expected Locked, got {err}"
        );
        drop(first);
        // Releasing the first handle frees the directory.
        let third = SegmentSet::open(&dir, "seg", 1 << 20, 64).unwrap();
        drop(third);
        fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn stale_lock_is_reclaimed() {
        let dir = temp_dir("stale");
        fs::create_dir_all(&dir).unwrap();
        // PID 0 never names a live userspace process.
        fs::write(dir.join("LOCK"), b"0").unwrap();
        let set = SegmentSet::open(&dir, "seg", 1 << 20, 64).unwrap();
        drop(set);
        fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn torn_tail_is_truncated_but_sealed_damage_is_fatal() {
        let dir = temp_dir("torn");
        {
            let mut set = SegmentSet::open(&dir, "seg", 1 << 20, 1).unwrap();
            set.replay(None, &mut |_, _| Ok(())).unwrap();
            for s in 0..3 {
                set.append_record(&record::encode_record(&block(s)))
                    .unwrap();
            }
            set.sync().unwrap();
        }
        // Tear the tail mid-record: recovery truncates.
        let seg = dir.join("seg-000000.log");
        let len = fs::metadata(&seg).unwrap().len();
        let file = OpenOptions::new().write(true).open(&seg).unwrap();
        file.set_len(len - 5).unwrap();
        drop(file);
        let mut set = SegmentSet::open(&dir, "seg", 1 << 20, 1).unwrap();
        let mut count = 0;
        set.replay(None, &mut |_, _| {
            count += 1;
            Ok(())
        })
        .unwrap();
        assert_eq!(count, 2, "torn record discarded");
        assert!(
            fs::metadata(&seg).unwrap().len() < len - 5,
            "file truncated"
        );
        drop(set);

        // The same damage in a sealed segment is fatal.
        let mut bytes = fs::read(&seg).unwrap();
        let mid = bytes.len() / 2;
        bytes[mid] ^= 0xff;
        fs::write(&seg, &bytes).unwrap();
        fs::write(dir.join("seg-000001.log"), b"").unwrap();
        let mut set = SegmentSet::open(&dir, "seg", 1 << 20, 1).unwrap();
        let err = set.replay(None, &mut |_, _| Ok(())).unwrap_err();
        assert!(matches!(err, TldagError::Corrupt(_)), "{err}");
        drop(set);
        fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn retire_and_delete_shrink_disk_usage() {
        let dir = temp_dir("retire");
        let mut set = SegmentSet::open(&dir, "seg", 128, 1).unwrap();
        set.replay(None, &mut |_, _| Ok(())).unwrap();
        for s in 0..12 {
            set.append_record(&record::encode_record(&block(s)))
                .unwrap();
        }
        set.sync().unwrap();
        let before = set.disk_usage_bytes();
        let oldest = set.oldest_sealed().expect("rolls happened");
        set.retire_segment(oldest);
        set.delete_segment_file(oldest).unwrap();
        assert!(set.disk_usage_bytes() < before);
        assert!(set
            .read(RecordLocation {
                segment: oldest,
                offset: 0,
                len: 8
            })
            .is_err());
        drop(set);
        fs::remove_dir_all(&dir).unwrap();
    }
}
