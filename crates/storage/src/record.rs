//! The on-disk record frame: `[len: u32 BE][crc32(payload): u32 BE][payload]`,
//! where the payload is a block in the canonical `tldag_core::codec` wire
//! encoding. The frame is what makes torn writes detectable: a record whose
//! bytes end early or whose checksum mismatches marks the end of the valid
//! log prefix.

use crate::crc32::crc32;
use tldag_core::codec;
use tldag_core::error::TldagError;
use tldag_core::DataBlock;

/// Frame header size: length + checksum.
pub const FRAME_BYTES: usize = 8;

/// Sanity bound on one record's payload (a block with thousands of digest
/// entries and the codec's maximum payload stays far below this).
pub const MAX_RECORD_BYTES: usize = 32 * 1024 * 1024;

/// Encodes `block` into a framed record.
pub fn encode_record(block: &DataBlock) -> Vec<u8> {
    let payload = codec::encode_block(block);
    let mut out = Vec::with_capacity(FRAME_BYTES + payload.len());
    out.extend_from_slice(&(payload.len() as u32).to_be_bytes());
    out.extend_from_slice(&crc32(&payload).to_be_bytes());
    out.extend_from_slice(&payload);
    out
}

/// Outcome of reading one record from a byte window.
#[derive(Debug)]
pub enum RecordRead {
    /// A complete, checksummed record; `consumed` bytes of the window.
    Complete {
        /// The decoded block.
        block: DataBlock,
        /// Total frame + payload bytes consumed.
        consumed: usize,
    },
    /// The window ends mid-record (torn tail write) — everything from the
    /// window start onwards must be discarded.
    Torn,
    /// The bytes are structurally invalid in a way a torn write cannot
    /// produce mid-stream (checksum mismatch with full length available, or
    /// an absurd length field).
    Corrupt(String),
}

/// Reads the record starting at `window[0]`.
///
/// An empty window is reported as `Torn` with zero loss — callers treat "no
/// more bytes" and "half a record" uniformly as the end of the valid prefix.
pub fn read_record(window: &[u8]) -> RecordRead {
    if window.len() < FRAME_BYTES {
        return RecordRead::Torn;
    }
    let len = u32::from_be_bytes(window[0..4].try_into().expect("4 bytes")) as usize;
    if len > MAX_RECORD_BYTES {
        return RecordRead::Corrupt(format!("record length {len} exceeds sanity bound"));
    }
    let expected_crc = u32::from_be_bytes(window[4..8].try_into().expect("4 bytes"));
    let Some(payload) = window.get(FRAME_BYTES..FRAME_BYTES + len) else {
        return RecordRead::Torn;
    };
    if crc32(payload) != expected_crc {
        // A torn write can also land here (half-written payload followed by
        // stale file contents); the caller decides whether this position is
        // the tail (truncate) or the middle of the log (corruption).
        return RecordRead::Corrupt("record checksum mismatch".into());
    }
    match codec::decode_block(payload) {
        Ok(block) => RecordRead::Complete {
            block,
            consumed: FRAME_BYTES + len,
        },
        Err(e) => RecordRead::Corrupt(format!("checksummed record failed to decode: {e}")),
    }
}

/// Decodes the payload of an already-located record (index-driven reads).
///
/// # Errors
///
/// [`TldagError::Corrupt`] when the checksum or decode fails — an indexed
/// record was valid when written, so any mismatch is real corruption.
pub fn decode_indexed(frame: &[u8]) -> Result<DataBlock, TldagError> {
    match read_record(frame) {
        RecordRead::Complete { block, .. } => Ok(block),
        RecordRead::Torn => Err(TldagError::Corrupt(
            "indexed record shorter than its frame".into(),
        )),
        RecordRead::Corrupt(msg) => Err(TldagError::Corrupt(msg)),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use tldag_core::config::ProtocolConfig;
    use tldag_core::{BlockBody, BlockId};
    use tldag_crypto::schnorr::KeyPair;
    use tldag_sim::NodeId;

    fn block() -> DataBlock {
        let cfg = ProtocolConfig::test_default();
        DataBlock::create(
            &cfg,
            BlockId::new(NodeId(1), 0),
            3,
            vec![],
            BlockBody::new(vec![5u8; 40], cfg.body_bits),
            &KeyPair::from_seed(1),
        )
    }

    #[test]
    fn round_trip() {
        let b = block();
        let rec = encode_record(&b);
        match read_record(&rec) {
            RecordRead::Complete { block, consumed } => {
                assert_eq!(block, b);
                assert_eq!(consumed, rec.len());
            }
            other => panic!("expected complete record, got {other:?}"),
        }
    }

    #[test]
    fn every_truncation_is_torn_or_detected() {
        let rec = encode_record(&block());
        for cut in 0..rec.len() {
            match read_record(&rec[..cut]) {
                RecordRead::Complete { .. } => panic!("truncated record decoded at {cut}"),
                RecordRead::Torn | RecordRead::Corrupt(_) => {}
            }
        }
    }

    #[test]
    fn bitflip_detected() {
        let mut rec = encode_record(&block());
        let idx = rec.len() / 2;
        rec[idx] ^= 0x40;
        assert!(matches!(read_record(&rec), RecordRead::Corrupt(_)));
    }

    #[test]
    fn absurd_length_is_corrupt() {
        let mut rec = encode_record(&block());
        rec[0..4].copy_from_slice(&u32::MAX.to_be_bytes());
        assert!(matches!(read_record(&rec), RecordRead::Corrupt(_)));
    }
}
