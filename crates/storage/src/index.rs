//! The in-memory digest → (segment, offset) index over the block log,
//! plus its checksummed snapshot encoding.
//!
//! The index holds **no block bodies** — per retained block it keeps the
//! 32-byte header digest, the record's location, and the two numbers the
//! overhead model needs (digest-entry count, logical body bits). That is what
//! bounds a durable node's resident memory: `O(index) + O(tail buffer) +
//! O(cache)` instead of `O(chain)`.

use crate::crc32::crc32;
use std::collections::HashMap;
use tldag_core::config::ProtocolConfig;
use tldag_core::error::TldagError;
use tldag_core::DataBlock;
use tldag_crypto::Digest;
use tldag_sim::Bits;

/// Where one block's record lives.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct RecordLocation {
    /// Segment file id.
    pub segment: u32,
    /// Byte offset of the record frame within the segment.
    pub offset: u64,
    /// Total frame length in bytes.
    pub len: u32,
}

/// Per-block index entry.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct IndexEntry {
    /// Header digest `H(b^h)`.
    pub digest: Digest,
    /// Record location.
    pub location: RecordLocation,
    /// Generation slot from the block header (`f_t`), kept in the index so
    /// candidate scans never decode bodies.
    pub time: u64,
    /// Number of digest entries in the header (for Eq. 2 sizing).
    pub digest_entries: u32,
    /// Logical body bits `C` (for Eq. 2 sizing).
    pub body_bits: u64,
    /// Digests contained in the header's Digests field (for the responder's
    /// `C_{j'}(b_v)` lookup and for snapshot-time children rebuilding).
    pub contained: Vec<Digest>,
}

/// The full index over a (possibly pruned) chain prefix.
#[derive(Clone, Debug, Default)]
pub struct BlockIndex {
    /// Owner of the chain (set by the first push; `None` while empty).
    owner: Option<u32>,
    /// Sequence number of the first retained entry (> 0 after compaction).
    base_seq: u32,
    /// Entries for seqs `base_seq ..`.
    entries: Vec<IndexEntry>,
    /// Header digest → seq.
    by_digest: HashMap<Digest, u32>,
    /// Contained digest → seqs of retained blocks containing it.
    children: HashMap<Digest, Vec<u32>>,
}

impl BlockIndex {
    /// Empty index starting at seq 0.
    pub fn new() -> Self {
        Self::default()
    }

    /// Total chain length (next sequence number to append).
    pub fn next_seq(&self) -> u32 {
        self.base_seq + self.entries.len() as u32
    }

    /// First retained sequence number.
    pub fn base_seq(&self) -> u32 {
        self.base_seq
    }

    /// Owner id of the chain, once at least one block has been indexed.
    pub fn owner(&self) -> Option<u32> {
        self.owner
    }

    /// Number of retained entries.
    pub fn retained(&self) -> usize {
        self.entries.len()
    }

    /// Looks up a retained entry by sequence number.
    pub fn entry(&self, seq: u32) -> Option<&IndexEntry> {
        let idx = seq.checked_sub(self.base_seq)? as usize;
        self.entries.get(idx)
    }

    /// Seq of the block with header digest `digest`.
    pub fn seq_of_digest(&self, digest: &Digest) -> Option<u32> {
        self.by_digest.get(digest).copied()
    }

    /// Retained seqs (ascending) of blocks whose header contains `target`.
    pub fn children_of(&self, target: &Digest) -> Vec<u32> {
        let mut seqs = self.children.get(target).cloned().unwrap_or_default();
        seqs.sort_unstable();
        seqs
    }

    /// Oldest retained seq of a block whose header contains `target`.
    pub fn oldest_child_of(&self, target: &Digest) -> Option<u32> {
        self.children.get(target)?.iter().min().copied()
    }

    /// Sets the chain base of an **empty** index (full-scan recovery of a
    /// compacted log, where the oldest surviving record defines the base).
    ///
    /// # Panics
    ///
    /// Panics if the index already has entries or a non-zero base.
    pub fn start_at(&mut self, seq: u32) {
        assert!(
            self.entries.is_empty() && self.base_seq == 0,
            "start_at requires a pristine index"
        );
        self.base_seq = seq;
    }

    /// Registers the next block of the chain.
    pub fn push(&mut self, block: &DataBlock, location: RecordLocation) {
        debug_assert_eq!(block.id.seq, self.next_seq(), "index append out of order");
        let digest = block.header_digest();
        let seq = block.id.seq;
        let contained: Vec<Digest> = block.header.digests.iter().map(|e| e.digest).collect();
        debug_assert!(
            self.owner.is_none_or(|o| o == block.id.owner.0),
            "one chain, one owner"
        );
        self.owner = Some(block.id.owner.0);
        self.by_digest.insert(digest, seq);
        for d in &contained {
            self.children.entry(*d).or_default().push(seq);
        }
        self.entries.push(IndexEntry {
            digest,
            location,
            time: block.header.time,
            digest_entries: block.header.digests.len() as u32,
            body_bits: block.body.logical_bits,
            contained,
        });
    }

    /// Drops every entry below `new_base` (compaction). Returns the number
    /// of entries removed.
    pub fn prune_below(&mut self, new_base: u32) -> usize {
        let new_base = new_base.clamp(self.base_seq, self.next_seq());
        let drop = (new_base - self.base_seq) as usize;
        for entry in self.entries.drain(..drop) {
            self.by_digest.remove(&entry.digest);
            for d in &entry.contained {
                if let Some(seqs) = self.children.get_mut(d) {
                    seqs.retain(|&s| s >= new_base);
                    if seqs.is_empty() {
                        self.children.remove(d);
                    }
                }
            }
        }
        self.base_seq = new_base;
        drop
    }

    /// Logical bits of the retained chain (Eq. 2 summed over blocks).
    pub fn logical_bits(&self, cfg: &ProtocolConfig) -> Bits {
        self.entries
            .iter()
            .map(|e| cfg.header_bits(e.digest_entries as usize) + Bits::from_bits(e.body_bits))
            .sum()
    }

    /// Rough resident-memory estimate in bytes.
    pub fn resident_bytes(&self) -> usize {
        let per_entry = std::mem::size_of::<IndexEntry>();
        let contained: usize = self.entries.iter().map(|e| e.contained.len() * 32).sum();
        self.entries.len() * per_entry
            + contained
            + self.by_digest.len() * (32 + 4)
            + self.children.len() * (32 + 16)
    }

    /// Serializes the index (with the log position it covers) into a
    /// checksummed snapshot blob.
    pub fn encode_snapshot(&self, covered_segment: u32, covered_offset: u64) -> Vec<u8> {
        let mut body = Vec::with_capacity(64 + self.entries.len() * 96);
        body.extend_from_slice(&self.owner.unwrap_or(u32::MAX).to_be_bytes());
        body.extend_from_slice(&self.base_seq.to_be_bytes());
        body.extend_from_slice(&(self.entries.len() as u32).to_be_bytes());
        body.extend_from_slice(&covered_segment.to_be_bytes());
        body.extend_from_slice(&covered_offset.to_be_bytes());
        for e in &self.entries {
            body.extend_from_slice(e.digest.as_bytes());
            body.extend_from_slice(&e.location.segment.to_be_bytes());
            body.extend_from_slice(&e.location.offset.to_be_bytes());
            body.extend_from_slice(&e.location.len.to_be_bytes());
            body.extend_from_slice(&e.time.to_be_bytes());
            body.extend_from_slice(&e.digest_entries.to_be_bytes());
            body.extend_from_slice(&e.body_bits.to_be_bytes());
            body.extend_from_slice(&(e.contained.len() as u32).to_be_bytes());
            for d in &e.contained {
                body.extend_from_slice(d.as_bytes());
            }
        }
        let mut out = Vec::with_capacity(16 + body.len());
        out.extend_from_slice(SNAPSHOT_MAGIC);
        out.extend_from_slice(&SNAPSHOT_VERSION.to_be_bytes());
        out.extend_from_slice(&crc32(&body).to_be_bytes());
        out.extend_from_slice(&body);
        out
    }

    /// Restores an index from a snapshot blob, returning it together with
    /// the `(segment, offset)` position up to which the log is covered.
    ///
    /// # Errors
    ///
    /// [`TldagError::Corrupt`] on any framing, checksum, or structure
    /// violation — the caller falls back to a full log scan.
    pub fn decode_snapshot(data: &[u8]) -> Result<(Self, u32, u64), TldagError> {
        let corrupt = |msg: &str| TldagError::Corrupt(format!("snapshot: {msg}"));
        if data.len() < 16 || &data[0..8] != SNAPSHOT_MAGIC {
            return Err(corrupt("missing magic"));
        }
        let version = u32::from_be_bytes(data[8..12].try_into().expect("4 bytes"));
        if version != SNAPSHOT_VERSION {
            return Err(corrupt("unknown version"));
        }
        let expect_crc = u32::from_be_bytes(data[12..16].try_into().expect("4 bytes"));
        let body = &data[16..];
        if crc32(body) != expect_crc {
            return Err(corrupt("checksum mismatch"));
        }

        let mut pos = 0usize;
        let mut take = |n: usize| -> Result<&[u8], TldagError> {
            let slice = body
                .get(pos..pos + n)
                .ok_or_else(|| TldagError::Corrupt("snapshot: truncated body".into()))?;
            pos += n;
            Ok(slice)
        };
        let owner_raw = u32::from_be_bytes(take(4)?.try_into().expect("4 bytes"));
        let base_seq = u32::from_be_bytes(take(4)?.try_into().expect("4 bytes"));
        let count = u32::from_be_bytes(take(4)?.try_into().expect("4 bytes")) as usize;
        let covered_segment = u32::from_be_bytes(take(4)?.try_into().expect("4 bytes"));
        let covered_offset = u64::from_be_bytes(take(8)?.try_into().expect("8 bytes"));

        let mut index = BlockIndex {
            owner: (owner_raw != u32::MAX).then_some(owner_raw),
            base_seq,
            entries: Vec::with_capacity(count),
            by_digest: HashMap::with_capacity(count),
            children: HashMap::new(),
        };
        for i in 0..count {
            let seq = base_seq + i as u32;
            let digest = Digest::from_bytes(take(32)?.try_into().expect("32 bytes"));
            let segment = u32::from_be_bytes(take(4)?.try_into().expect("4 bytes"));
            let offset = u64::from_be_bytes(take(8)?.try_into().expect("8 bytes"));
            let len = u32::from_be_bytes(take(4)?.try_into().expect("4 bytes"));
            let time = u64::from_be_bytes(take(8)?.try_into().expect("8 bytes"));
            let digest_entries = u32::from_be_bytes(take(4)?.try_into().expect("4 bytes"));
            let body_bits = u64::from_be_bytes(take(8)?.try_into().expect("8 bytes"));
            let contained_count =
                u32::from_be_bytes(take(4)?.try_into().expect("4 bytes")) as usize;
            if contained_count > 1 << 20 {
                return Err(corrupt("absurd contained-digest count"));
            }
            let mut contained = Vec::with_capacity(contained_count);
            for _ in 0..contained_count {
                contained.push(Digest::from_bytes(take(32)?.try_into().expect("32 bytes")));
            }
            index.by_digest.insert(digest, seq);
            for d in &contained {
                index.children.entry(*d).or_default().push(seq);
            }
            index.entries.push(IndexEntry {
                digest,
                location: RecordLocation {
                    segment,
                    offset,
                    len,
                },
                time,
                digest_entries,
                body_bits,
                contained,
            });
        }
        if pos != body.len() {
            return Err(corrupt("trailing bytes"));
        }
        Ok((index, covered_segment, covered_offset))
    }
}

const SNAPSHOT_MAGIC: &[u8; 8] = b"TLDAGSNP";
const SNAPSHOT_VERSION: u32 = 1;

#[cfg(test)]
mod tests {
    use super::*;
    use tldag_core::config::ProtocolConfig;
    use tldag_core::{BlockBody, BlockId, DataBlock, DigestEntry};
    use tldag_crypto::schnorr::KeyPair;
    use tldag_sim::NodeId;

    fn block(seq: u32, contained: Vec<Digest>) -> DataBlock {
        let cfg = ProtocolConfig::test_default();
        let digests = contained
            .into_iter()
            .map(|digest| DigestEntry {
                origin: NodeId(9),
                digest,
            })
            .collect();
        DataBlock::create(
            &cfg,
            BlockId::new(NodeId(1), seq),
            u64::from(seq),
            digests,
            BlockBody::new(vec![seq as u8; 8], cfg.body_bits),
            &KeyPair::from_seed(1),
        )
    }

    fn loc(seq: u32) -> RecordLocation {
        RecordLocation {
            segment: seq / 4,
            offset: u64::from(seq % 4) * 100,
            len: 100,
        }
    }

    #[test]
    fn push_and_lookup() {
        let mut index = BlockIndex::new();
        let parent = Digest::from_bytes([7; 32]);
        let b0 = block(0, vec![]);
        let b1 = block(1, vec![parent]);
        let b2 = block(2, vec![parent]);
        for b in [&b0, &b1, &b2] {
            index.push(b, loc(b.id.seq));
        }
        assert_eq!(index.next_seq(), 3);
        assert_eq!(index.seq_of_digest(&b1.header_digest()), Some(1));
        assert_eq!(index.oldest_child_of(&parent), Some(1));
        assert_eq!(index.children_of(&parent), vec![1, 2]);
    }

    #[test]
    fn snapshot_round_trip() {
        let mut index = BlockIndex::new();
        let parent = Digest::from_bytes([3; 32]);
        for seq in 0..5 {
            let contained = if seq > 0 { vec![parent] } else { vec![] };
            index.push(&block(seq, contained), loc(seq));
        }
        let blob = index.encode_snapshot(1, 777);
        let (restored, seg, off) = BlockIndex::decode_snapshot(&blob).unwrap();
        assert_eq!(seg, 1);
        assert_eq!(off, 777);
        assert_eq!(restored.next_seq(), 5);
        assert_eq!(restored.entries, index.entries);
        assert_eq!(restored.children_of(&parent), index.children_of(&parent));
    }

    #[test]
    fn snapshot_corruption_rejected() {
        let mut index = BlockIndex::new();
        index.push(&block(0, vec![]), loc(0));
        let blob = index.encode_snapshot(0, 10);
        for cut in [0, 8, 15, blob.len() - 1] {
            assert!(BlockIndex::decode_snapshot(&blob[..cut]).is_err());
        }
        let mut flipped = blob.clone();
        let idx = flipped.len() - 5;
        flipped[idx] ^= 1;
        assert!(BlockIndex::decode_snapshot(&flipped).is_err());
    }

    #[test]
    fn prune_below_rewrites_base_and_children() {
        let mut index = BlockIndex::new();
        let parent = Digest::from_bytes([3; 32]);
        let blocks: Vec<DataBlock> = (0..6)
            .map(|seq| block(seq, if seq % 2 == 1 { vec![parent] } else { vec![] }))
            .collect();
        for b in &blocks {
            index.push(b, loc(b.id.seq));
        }
        assert_eq!(index.prune_below(3), 3);
        assert_eq!(index.base_seq(), 3);
        assert_eq!(index.next_seq(), 6);
        assert_eq!(index.retained(), 3);
        assert!(index.entry(2).is_none());
        assert!(index.entry(3).is_some());
        assert_eq!(index.seq_of_digest(&blocks[1].header_digest()), None);
        // Children below the new base (seq 1) are gone; 3 and 5 survive.
        assert_eq!(index.children_of(&parent), vec![3, 5]);
        // Appending continues at the chain seq, not the retained count.
        index.push(&block(6, vec![]), loc(6));
        assert_eq!(index.next_seq(), 7);
    }

    #[test]
    fn logical_bits_match_blocks() {
        let cfg = ProtocolConfig::test_default();
        let mut index = BlockIndex::new();
        let b = block(0, vec![Digest::from_bytes([1; 32])]);
        index.push(&b, loc(0));
        assert_eq!(index.logical_bits(&cfg), b.logical_bits(&cfg));
    }
}
