//! Wire-deployment acceptance: a multi-process localhost UDP cluster
//! reproduces the in-memory engine's `network_digest` on a shared seed —
//! the codec ↔ transport ↔ storage stack is protocol-equivalent to the
//! simulator, over real sockets.

use std::path::PathBuf;
use std::time::Duration;
use tldag::net::{run_cluster, ClusterConfig};

fn tldag_exe() -> PathBuf {
    PathBuf::from(env!("CARGO_BIN_EXE_tldag"))
}

fn base_config(nodes: usize, slots: u64, seed: u64) -> ClusterConfig {
    let mut config = ClusterConfig::new(tldag_exe(), nodes, slots, seed);
    config.report_timeout = Duration::from_secs(120);
    config
}

#[test]
fn three_process_cluster_matches_in_memory_digest() {
    let outcome = run_cluster(&base_config(3, 5, 20260726)).expect("cluster run");
    assert!(!outcome.degraded(), "no barrier may time out on loopback");
    assert_eq!(
        outcome.wire_digest, outcome.reference_digest,
        "UDP cluster must reproduce the in-memory network digest"
    );
    for report in &outcome.reports {
        assert_eq!(report.chain_len, 5, "every node generates once per slot");
    }
}

#[test]
fn cluster_with_pop_over_the_wire_matches_engine_counters() {
    // slots > nodes so the paper's min-age workload has qualifying targets;
    // PoP then actually runs over the socket path on every node.
    let mut config = base_config(4, 9, 7);
    config.pop = true;
    let outcome = run_cluster(&config).expect("cluster run");
    assert!(!outcome.degraded());
    assert_eq!(outcome.wire_digest, outcome.reference_digest);
    assert!(
        outcome.wire_pop.0 > 0,
        "the verification workload must trigger over the wire"
    );
    assert_eq!(
        outcome.wire_pop, outcome.reference_pop,
        "wire PoP attempts/successes must match the engine's"
    );
}

#[test]
fn churn_cluster_matches_engine_through_join_and_leave() {
    // The dynamic-membership acceptance bar: a 4-founder cluster where
    // node 4 joins at slot 3 (spawned with nothing but a bootstrap
    // address — the join handshake transfers the roster) and node 1
    // leaves gracefully at slot 6 must reach network_digest parity with
    // the in-memory engine driving the same node_joins/node_leaves
    // schedule.
    let mut config = base_config(4, 8, 20260726);
    config.churn = tldag::net::parse_churn_spec("join:4@3,leave:1@6").expect("spec");
    let outcome = run_cluster(&config).expect("cluster run");
    assert!(!outcome.degraded(), "no barrier may time out on loopback");
    assert_eq!(
        outcome.wire_digest, outcome.reference_digest,
        "the churned UDP cluster must reproduce the engine's network digest"
    );
    assert_eq!(outcome.reports.len(), 5, "founders plus the joiner report");
    assert_eq!(
        outcome.reports[4].chain_len, 5,
        "the joiner generates from slot 3 through 7"
    );
    assert_eq!(
        outcome.reports[1].chain_len, 6,
        "the leaver generates slots 0 through 5"
    );
    assert!(
        outcome.reports[4].catch_up_ms > 0,
        "the joiner's catch-up latency is measured"
    );
}

#[test]
fn churn_cluster_with_pop_matches_engine_counters() {
    // Same membership schedule with the verification workload on: the
    // joiner and the survivors all run PoP over the wire, and the
    // attempt/success counters must match the engine exactly (the
    // candidate enumeration is membership-aware on both sides).
    let mut config = base_config(4, 10, 7);
    config.pop = true;
    config.churn = tldag::net::parse_churn_spec("join:4@3,leave:1@8").expect("spec");
    let outcome = run_cluster(&config).expect("cluster run");
    assert!(!outcome.degraded());
    assert_eq!(outcome.wire_digest, outcome.reference_digest);
    assert!(outcome.wire_pop.0 > 0, "the workload must trigger");
    assert_eq!(
        outcome.wire_pop, outcome.reference_pop,
        "wire PoP counters must match the engine's through churn"
    );
}

#[test]
fn pipelined_cluster_matches_lockstep_and_engine_exactly() {
    // The epoch-window acceptance bar: with generation running up to 4
    // slots ahead of verification, horizon-capped child requests must
    // keep every PoP exchange — and therefore every chain digest and
    // attempt/success counter — byte-identical to the engine (and hence
    // to the W=1 lockstep run, which is engine-equivalent by the test
    // above).
    let mut config = base_config(4, 9, 7);
    config.pop = true;
    config.window = 4;
    let outcome = run_cluster(&config).expect("cluster run");
    assert!(
        !outcome.degraded(),
        "the pipeline must not stall on loopback"
    );
    assert_eq!(
        outcome.wire_digest, outcome.reference_digest,
        "the pipelined cluster must reproduce the engine's network digest"
    );
    assert!(outcome.wire_pop.0 > 0, "the workload must trigger");
    assert_eq!(
        outcome.wire_pop, outcome.reference_pop,
        "pipelined PoP counters must match the engine's"
    );
}

#[test]
fn lossy_cluster_heals_to_parity() {
    // 10% of every node's datagrams are dropped deterministically; the
    // retry/backoff budget and pull-based digest recovery must heal the
    // run to exact parity (the chance of any request exhausting its
    // 6-retry budget at this rate is ~1e-5 per exchange).
    let mut config = base_config(3, 6, 20260808);
    config.pop = true;
    config.drop = 0.1;
    let outcome = run_cluster(&config).expect("cluster run");
    assert!(
        !outcome.degraded(),
        "loss must be healed by retries, not barriers timing out"
    );
    assert_eq!(
        outcome.wire_digest, outcome.reference_digest,
        "a lossy cluster must still converge to the engine's digest"
    );
    assert_eq!(outcome.wire_pop, outcome.reference_pop);
}

#[test]
fn disk_backed_cluster_keeps_parity() {
    let dir = std::env::temp_dir().join(format!("tldag-wire-test-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    let mut config = base_config(3, 4, 99);
    config.storage_root = Some(dir.clone());
    let outcome = run_cluster(&config).expect("cluster run");
    assert_eq!(outcome.wire_digest, outcome.reference_digest);
    // The chains actually live on disk: every node directory has a log.
    for i in 0..3 {
        let node_dir = dir.join(format!("node-{i}"));
        assert!(node_dir.is_dir(), "{} missing", node_dir.display());
        assert!(
            std::fs::read_dir(&node_dir).expect("readable").count() > 0,
            "node {i} wrote nothing"
        );
    }
    let _ = std::fs::remove_dir_all(&dir);
}
