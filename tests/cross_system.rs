//! Cross-system comparisons through the `LedgerSim` trait: the workspace's
//! three ledgers measured under identical topologies and workloads.

use tldag::baselines::iota::{IotaNetwork, TipSelection};
use tldag::baselines::ledger::LedgerSim;
use tldag::baselines::pbft::{BlockMeta, PbftCluster, PbftNetwork};
use tldag::baselines::BaselineConfig;
use tldag::core::config::ProtocolConfig;
use tldag::core::network::TldagNetwork;
use tldag::core::workload::VerificationWorkload;
use tldag::crypto::Digest;
use tldag::sim::bus::TrafficClass;
use tldag::sim::engine::GenerationSchedule;
use tldag::sim::topology::{Topology, TopologyConfig};
use tldag::sim::{Bits, DetRng, NodeId};

fn topology(seed: u64, nodes: usize) -> Topology {
    Topology::random_connected(
        &TopologyConfig {
            nodes,
            side_m: 300.0,
            ..TopologyConfig::paper_default()
        },
        &mut DetRng::seed_from(seed),
    )
}

fn three_ledgers(seed: u64, nodes: usize, body_bits: u64) -> Vec<Box<dyn LedgerSim>> {
    let topo = topology(seed, nodes);
    let mut tldag = TldagNetwork::new(
        ProtocolConfig::test_default()
            .with_body_bits(body_bits)
            .with_gamma(3),
        topo.clone(),
        GenerationSchedule::uniform(nodes),
        seed,
    );
    tldag.set_verification_workload(VerificationWorkload::RandomPast {
        min_age_slots: nodes as u64,
    });
    let base = BaselineConfig::test_default().with_body_bits(body_bits);
    vec![
        Box::new(tldag),
        Box::new(PbftNetwork::new(base, topo.clone(), seed)),
        Box::new(IotaNetwork::new(base, topo, seed)),
    ]
}

#[test]
fn storage_advantage_grows_with_body_size() {
    // With tiny bodies, header overhead (and 2LDAG's trust cache) dominates
    // and the gap narrows; at realistic payloads the replicated ledgers pay
    // ~|V|× 2LDAG's storage. The ratio must be monotone in C.
    let ratio_at = |body_bits: u64| {
        let mut ledgers = three_ledgers(1, 10, body_bits);
        for ledger in &mut ledgers {
            ledger.run_slots(20);
        }
        let tldag = ledgers[0].mean_storage_mb();
        (
            ledgers[1].mean_storage_mb() / tldag,
            ledgers[2].mean_storage_mb() / tldag,
        )
    };
    let (pbft_small, iota_small) = ratio_at(Bits::from_bytes(64).bits());
    let (pbft_large, iota_large) = ratio_at(Bits::from_kilobytes(8).bits());
    assert!(
        pbft_small > 1.0 && iota_small > 1.0,
        "replication always costs more"
    );
    assert!(
        pbft_large > 5.0 && iota_large > 5.0,
        "at 8 kB bodies the gap approaches |V|: PBFT {pbft_large}, IOTA {iota_large}"
    );
    assert!(pbft_large > pbft_small && iota_large > iota_small);
}

#[test]
fn per_node_storage_uniformity_differs_by_design() {
    // PBFT/IOTA replicate: identical storage at every node. 2LDAG nodes
    // differ (own chain + own cache), but only within header/cache slack.
    let mut ledgers = three_ledgers(2, 10, Bits::from_bytes(256).bits());
    for ledger in &mut ledgers {
        ledger.run_slots(16);
    }
    for replicated in &ledgers[1..] {
        let per_node = replicated.storage_bits_per_node();
        assert!(
            per_node.iter().all(|&b| b == per_node[0]),
            "{} must replicate identically",
            replicated.name()
        );
    }
    let tldag_nodes = ledgers[0].storage_bits_per_node();
    let min = tldag_nodes.iter().min().unwrap().bits() as f64;
    let max = tldag_nodes.iter().max().unwrap().bits() as f64;
    assert!(
        max / min < 2.0,
        "2LDAG node storage within 2x: {min}..{max}"
    );
}

#[test]
fn slot_counts_stay_aligned_across_systems() {
    let mut ledgers = three_ledgers(3, 8, 512);
    for ledger in &mut ledgers {
        ledger.run_slots(9);
        assert_eq!(ledger.slot(), 9, "{}", ledger.name());
    }
}

#[test]
fn pbft_message_cluster_agrees_with_aggregate_model_at_several_sizes() {
    for n in [4usize, 7, 10, 13] {
        let cfg = BaselineConfig::test_default();
        let block = BlockMeta {
            proposer: NodeId(1),
            slot: 0,
            digest: Digest::from_bytes([n as u8; 32]),
            bits: cfg.block_bits(),
        };
        let mut cluster = PbftCluster::new(cfg, n);
        assert!(cluster.submit(NodeId(1), block));
        let mut aggregate = PbftNetwork::new(cfg, topology(9, n), 9);
        aggregate.commit_block_for_test(block);
        for i in 0..n as u32 {
            let id = NodeId(i);
            assert_eq!(
                cluster.accounting().tx(id, TrafficClass::Pbft),
                aggregate.accounting().tx(id, TrafficClass::Pbft),
                "n={n} node {id} tx"
            );
            assert_eq!(
                cluster.accounting().rx(id, TrafficClass::Pbft),
                aggregate.accounting().rx(id, TrafficClass::Pbft),
                "n={n} node {id} rx"
            );
        }
    }
}

#[test]
fn iota_tip_strategies_preserve_tangle_invariants() {
    for strategy in [
        TipSelection::UniformRandom,
        TipSelection::WeightedWalk { alpha: 0.2 },
    ] {
        let mut net = IotaNetwork::new(BaselineConfig::test_default(), topology(4, 8), 4);
        net.set_tip_selection(strategy);
        net.run_slots(8);
        assert_eq!(net.tangle().len(), 1 + 8 * 8);
        assert!(net.tangle().all_reach_genesis());
    }
}

#[test]
fn comm_per_byte_of_payload_favors_tldag_more_as_bodies_grow() {
    // 2LDAG transmits digests/headers regardless of C; baselines ship bodies.
    // Growing C should widen the communication ratio.
    let ratio_at = |body_bits: u64| {
        let mut ledgers = three_ledgers(5, 10, body_bits);
        for ledger in &mut ledgers {
            ledger.run_slots(20);
        }
        let t = ledgers[0]
            .accounting()
            .mean_node_tx(TrafficClass::DagConstruction)
            .bits() as f64
            + ledgers[0]
                .accounting()
                .mean_node_tx(TrafficClass::Consensus)
                .bits() as f64;
        let p = ledgers[1]
            .accounting()
            .mean_node_tx(TrafficClass::Pbft)
            .bits() as f64;
        p / t.max(1.0)
    };
    let small = ratio_at(Bits::from_bytes(64).bits());
    let large = ratio_at(Bits::from_kilobytes(16).bits());
    assert!(
        large > small * 5.0,
        "ratio should grow with C: small {small:.1}, large {large:.1}"
    );
}
