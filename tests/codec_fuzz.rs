//! Wire-codec robustness: round trips for arbitrary structures, and decode
//! must never panic or accept malformed input silently.

use proptest::prelude::*;
use tldag::core::block::{BlockBody, BlockId, DataBlock, DigestEntry};
use tldag::core::codec;
use tldag::core::config::ProtocolConfig;
use tldag::crypto::schnorr::KeyPair;
use tldag::crypto::Digest;
use tldag::sim::NodeId;

fn block_from(
    owner: u32,
    seq: u32,
    time: u64,
    payload: Vec<u8>,
    entries: Vec<(u32, [u8; 32])>,
) -> DataBlock {
    let cfg = ProtocolConfig::test_default();
    let kp = KeyPair::from_seed(u64::from(owner));
    let digests = entries
        .into_iter()
        .map(|(origin, bytes)| DigestEntry {
            origin: NodeId(origin),
            digest: Digest::from_bytes(bytes),
        })
        .collect();
    DataBlock::create(
        &cfg,
        BlockId::new(NodeId(owner), seq),
        time,
        digests,
        BlockBody::new(payload, cfg.body_bits),
        &kp,
    )
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(32))]

    /// Arbitrary blocks round-trip bit-exactly through the wire codec.
    #[test]
    fn block_round_trip(
        owner in 0u32..100,
        seq in 0u32..100,
        time in 0u64..10_000,
        payload in proptest::collection::vec(any::<u8>(), 0..256),
        entries in proptest::collection::vec((0u32..64, any::<[u8; 32]>()), 0..12),
    ) {
        let block = block_from(owner, seq, time, payload, entries);
        let decoded = codec::decode_block(&codec::encode_block(&block)).unwrap();
        prop_assert_eq!(&decoded, &block);
        prop_assert_eq!(decoded.header_digest(), block.header_digest());
    }

    /// Decoding arbitrary bytes never panics; it either errors or yields a
    /// structure that re-encodes canonically.
    #[test]
    fn decode_never_panics(data in proptest::collection::vec(any::<u8>(), 0..512)) {
        if let Ok(msg) = codec::decode_message(&data) {
            // Canonical: re-encoding reproduces the accepted input.
            prop_assert_eq!(codec::encode_message(&msg), data.clone());
        }
        let _ = codec::decode_header(&data);
        let _ = codec::decode_block(&data);
    }

    /// Single-bit corruption of an encoded header either fails to decode or
    /// changes the header digest (so the tampering is always detectable).
    #[test]
    fn bitflips_always_detectable(
        payload in proptest::collection::vec(any::<u8>(), 1..64),
        byte_idx in 0usize..2048,
        bit in 0u8..8,
    ) {
        let block = block_from(1, 0, 7, payload, vec![(2, [9; 32])]);
        let mut encoded = codec::encode_header(&block.header);
        let idx = byte_idx % encoded.len();
        encoded[idx] ^= 1 << bit;
        match codec::decode_header(&encoded) {
            Err(_) => {}
            Ok(decoded) => {
                prop_assert_ne!(decoded.digest(), block.header_digest());
            }
        }
    }
}
