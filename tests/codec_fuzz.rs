//! Wire-codec robustness: round trips for arbitrary structures, and decode
//! must never panic or accept malformed input silently — for the message
//! codec *and* for the datagram envelopes that carry it.

use proptest::prelude::*;
use tldag::core::block::{BlockBody, BlockId, DataBlock, DigestEntry};
use tldag::core::codec;
use tldag::core::codec::CodecError;
use tldag::core::config::ProtocolConfig;
use tldag::crypto::schnorr::KeyPair;
use tldag::crypto::Digest;
use tldag::net::envelope;
use tldag::sim::NodeId;

fn block_from(
    owner: u32,
    seq: u32,
    time: u64,
    payload: Vec<u8>,
    entries: Vec<(u32, [u8; 32])>,
) -> DataBlock {
    let cfg = ProtocolConfig::test_default();
    let kp = KeyPair::from_seed(u64::from(owner));
    let digests = entries
        .into_iter()
        .map(|(origin, bytes)| DigestEntry {
            origin: NodeId(origin),
            digest: Digest::from_bytes(bytes),
        })
        .collect();
    DataBlock::create(
        &cfg,
        BlockId::new(NodeId(owner), seq),
        time,
        digests,
        BlockBody::new(payload, cfg.body_bits),
        &kp,
    )
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(32))]

    /// Arbitrary blocks round-trip bit-exactly through the wire codec.
    #[test]
    fn block_round_trip(
        owner in 0u32..100,
        seq in 0u32..100,
        time in 0u64..10_000,
        payload in proptest::collection::vec(any::<u8>(), 0..256),
        entries in proptest::collection::vec((0u32..64, any::<[u8; 32]>()), 0..12),
    ) {
        let block = block_from(owner, seq, time, payload, entries);
        let decoded = codec::decode_block(&codec::encode_block(&block)).unwrap();
        prop_assert_eq!(&decoded, &block);
        prop_assert_eq!(decoded.header_digest(), block.header_digest());
    }

    /// Decoding arbitrary bytes never panics; it either errors or yields a
    /// structure that re-encodes canonically.
    #[test]
    fn decode_never_panics(data in proptest::collection::vec(any::<u8>(), 0..512)) {
        if let Ok(msg) = codec::decode_message(&data) {
            // Canonical: re-encoding reproduces the accepted input.
            prop_assert_eq!(codec::encode_message(&msg), data.clone());
        }
        let _ = codec::decode_header(&data);
        let _ = codec::decode_block(&data);
    }

    /// Single-bit corruption of an encoded header either fails to decode or
    /// changes the header digest (so the tampering is always detectable).
    #[test]
    fn bitflips_always_detectable(
        payload in proptest::collection::vec(any::<u8>(), 1..64),
        byte_idx in 0usize..2048,
        bit in 0u8..8,
    ) {
        let block = block_from(1, 0, 7, payload, vec![(2, [9; 32])]);
        let mut encoded = codec::encode_header(&block.header);
        let idx = byte_idx % encoded.len();
        encoded[idx] ^= 1 << bit;
        match codec::decode_header(&encoded) {
            Err(_) => {}
            Ok(decoded) => {
                prop_assert_ne!(decoded.digest(), block.header_digest());
            }
        }
    }

    /// Any tag outside the known message set is the dedicated
    /// `UnknownTag` error — the version-skew signal transports count —
    /// regardless of what follows the tag byte.
    #[test]
    fn unknown_message_tags_are_distinguished(
        tag in 0x08u8..0xffu8,
        rest in proptest::collection::vec(any::<u8>(), 0..64),
    ) {
        let mut data = vec![tag];
        data.extend_from_slice(&rest);
        prop_assert_eq!(codec::decode_message(&data), Err(CodecError::UnknownTag(tag)));
    }

    /// Envelope round trip: arbitrary payloads fragment under arbitrary
    /// (valid) MTUs and every fragment decodes back to its envelope.
    #[test]
    fn envelope_round_trip(
        sender in any::<u32>(),
        seq in any::<u64>(),
        req_id in any::<u64>(),
        payload in proptest::collection::vec(any::<u8>(), 0..4096),
        mtu in 64usize..2048,
    ) {
        let frames = envelope::encode_message(
            envelope::Kind::Wire, NodeId(sender), seq, req_id, &payload, mtu,
        ).unwrap();
        let mut rebuilt = Vec::new();
        for (i, frame) in frames.iter().enumerate() {
            prop_assert!(frame.len() <= mtu);
            let (env, chunk) = envelope::decode_datagram(frame).unwrap();
            prop_assert_eq!(env.sender, NodeId(sender));
            prop_assert_eq!(env.msg_seq, seq);
            prop_assert_eq!(env.req_id, req_id);
            prop_assert_eq!(env.frag_index as usize, i);
            prop_assert_eq!(env.frag_count as usize, frames.len());
            rebuilt.extend_from_slice(chunk);
        }
        prop_assert_eq!(rebuilt, payload);
    }

    /// Decoding arbitrary bytes as a datagram envelope never panics: it
    /// either errors cleanly or yields a self-consistent envelope.
    #[test]
    fn envelope_decode_never_panics(data in proptest::collection::vec(any::<u8>(), 0..512)) {
        if let Ok((env, chunk)) = envelope::decode_datagram(&data) {
            prop_assert!(env.frag_index < env.frag_count);
            prop_assert_eq!(chunk.len(), data.len() - envelope::OVERHEAD);
        }
    }

    /// A truncated datagram envelope never decodes.
    #[test]
    fn truncated_envelopes_rejected(
        payload in proptest::collection::vec(any::<u8>(), 0..600),
        cut in 0usize..1024,
    ) {
        let frame = envelope::encode_message(
            envelope::Kind::Wire, NodeId(1), 9, 0, &payload, envelope::DEFAULT_MTU,
        ).unwrap().remove(0);
        let cut = cut % frame.len();
        prop_assert!(envelope::decode_datagram(&frame[..cut]).is_err());
    }

    /// A bit-flipped datagram envelope never decodes — the CRC catches
    /// every single-bit corruption, anywhere in header, payload, or
    /// trailer.
    #[test]
    fn bitflipped_envelopes_rejected(
        payload in proptest::collection::vec(any::<u8>(), 0..600),
        byte_idx in 0usize..2048,
        bit in 0u8..8,
    ) {
        let mut frame = envelope::encode_message(
            envelope::Kind::Control, NodeId(3), 5, 1, &payload, envelope::DEFAULT_MTU,
        ).unwrap().remove(0);
        let idx = byte_idx % frame.len();
        frame[idx] ^= 1 << bit;
        prop_assert!(envelope::decode_datagram(&frame).is_err());
    }

    /// Two valid envelopes concatenated into one datagram (a duplicated /
    /// coalesced read) decode to a clean error, never a panic or a silent
    /// partial accept.
    #[test]
    fn duplicated_envelopes_rejected(payload in proptest::collection::vec(any::<u8>(), 0..300)) {
        let frame = envelope::encode_message(
            envelope::Kind::Wire, NodeId(2), 7, 0, &payload, envelope::DEFAULT_MTU,
        ).unwrap().remove(0);
        let mut doubled = frame.clone();
        doubled.extend_from_slice(&frame);
        prop_assert!(envelope::decode_datagram(&doubled).is_err());
    }
}
