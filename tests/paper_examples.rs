//! Reproductions of the paper's worked examples as executable tests.
//!
//! * Fig. 3 (DAG construction) is covered in `tldag-core::dag` unit tests.
//! * Fig. 4 (WPS weights) is covered in `tldag-core::pop::wps` unit tests.
//! * Fig. 5 (routing around malicious nodes) and Fig. 6 (micro-loops from
//!   heterogeneous rates) are reproduced here end to end.

use tldag::core::analysis;
use tldag::core::attack::Behavior;
use tldag::core::config::ProtocolConfig;
use tldag::core::network::TldagNetwork;
use tldag::core::workload::VerificationWorkload;
use tldag::sim::engine::GenerationSchedule;
use tldag::sim::topology::Topology;
use tldag::sim::NodeId;

/// Fig. 6: node B generates much faster than node C. Verifying an early
/// B-block forces the proof path through a micro-loop — revisiting A and B
/// repeatedly — before C's next block finally picks up a B digest and adds a
/// third distinct node.
#[test]
fn fig6_micro_loop_traversal() {
    // A(0) — B(1) — C(2); A and B generate every slot, C every 6 slots.
    let topology = Topology::from_edges(3, &[(0, 1), (1, 2)]);
    let schedule = GenerationSchedule::from_periods(vec![1, 1, 6]);
    let cfg = ProtocolConfig::test_default().with_gamma(2); // threshold 3
    let mut net = TldagNetwork::new(cfg, topology, schedule, 6);
    net.set_verification_workload(VerificationWorkload::Disabled);
    net.run_slots(14);

    // Verify B's slot-1 block from validator A.
    let target = net.node(NodeId(1)).store().get(1).unwrap().id;
    let report = net.run_pop(NodeId(0), target, false);
    assert!(report.is_success(), "{:?}", report.outcome);

    // The path revisits nodes: its length strictly exceeds the number of
    // distinct owners (the definition of a micro-loop).
    assert_eq!(report.distinct_nodes, 3);
    assert!(
        report.path.len() > report.distinct_nodes,
        "expected a micro-loop: path {} vs distinct {}",
        report.path.len(),
        report.distinct_nodes
    );

    // The loop alternates through the fast nodes only.
    let loop_owners: Vec<NodeId> = report.path[..report.path.len() - 1]
        .iter()
        .map(|s| s.owner)
        .collect();
    assert!(loop_owners.iter().all(|&o| o != NodeId(2)));
    // ...and terminates at C, the slow node.
    assert_eq!(report.path.last().unwrap().owner, NodeId(2));

    // Proposition 5 bounds the blocks inside the micro-loop: the loop
    // traverses M = {A, B}, and the slowest node outside M is C.
    let schedule = GenerationSchedule::from_periods(vec![1, 1, 6]);
    let bound = analysis::prop5_microloop_bound(&schedule, &[NodeId(0), NodeId(1)], 3);
    let micro_loop_blocks = report.path.len() as u64 - report.distinct_nodes as u64;
    assert!(
        micro_loop_blocks <= bound,
        "micro-loop {micro_loop_blocks} blocks vs Prop. 5 bound {bound}"
    );
}

/// Fig. 5: the validator's first path attempt dead-ends at malicious nodes;
/// rollback constructs an alternative route through honest nodes only.
#[test]
fn fig5_path_construction_around_malicious_nodes() {
    // Two parallel corridors from the verifier K to the rest of the network:
    //
    //          M1(2) — M2(3)          (malicious corridor)
    //        /                \
    //   K(1)                   T(6) — T2(7)
    //        \                /
    //          H1(4) — H2(5)          (honest corridor)
    //
    // plus the validator V(0) attached at T2.
    let topology = Topology::from_edges(
        8,
        &[
            (1, 2),
            (2, 3),
            (3, 6),
            (1, 4),
            (4, 5),
            (5, 6),
            (6, 7),
            (7, 0),
        ],
    );
    let cfg = ProtocolConfig::test_default().with_gamma(3); // threshold 4
    let mut net = TldagNetwork::new(cfg, topology, GenerationSchedule::uniform(8), 5);
    net.set_verification_workload(VerificationWorkload::Disabled);
    net.run_slots(16);

    // The malicious corridor goes silent.
    net.set_behavior(NodeId(2), Behavior::Unresponsive);
    net.set_behavior(NodeId(3), Behavior::Unresponsive);

    let target = net.node(NodeId(1)).store().get(0).unwrap().id;
    let report = net.run_pop(NodeId(0), target, false);
    assert!(
        report.is_success(),
        "an honest corridor exists: {:?}",
        report.outcome
    );
    for step in &report.path {
        assert!(
            step.owner != NodeId(2) && step.owner != NodeId(3),
            "malicious node {} on the proof path",
            step.owner
        );
    }
    // The honest corridor must appear on the path.
    let owners: Vec<NodeId> = report.path.iter().map(|s| s.owner).collect();
    assert!(owners.contains(&NodeId(4)) || owners.contains(&NodeId(5)));
}

/// The same corridor scenario, but with *every* corridor malicious: the
/// validator exhausts all paths and reports failure honestly (it can be
/// denied, never deceived).
#[test]
fn fig5_exhaustion_when_no_honest_corridor_remains() {
    let topology = Topology::from_edges(
        8,
        &[
            (1, 2),
            (2, 3),
            (3, 6),
            (1, 4),
            (4, 5),
            (5, 6),
            (6, 7),
            (7, 0),
        ],
    );
    let cfg = ProtocolConfig::test_default().with_gamma(3);
    let mut net = TldagNetwork::new(cfg, topology, GenerationSchedule::uniform(8), 5);
    net.set_verification_workload(VerificationWorkload::Disabled);
    net.run_slots(16);
    for id in [2u32, 3, 4, 5] {
        net.set_behavior(NodeId(id), Behavior::Unresponsive);
    }
    let target = net.node(NodeId(1)).store().get(0).unwrap().id;
    let report = net.run_pop(NodeId(0), target, false);
    assert!(!report.is_success());
    assert!(
        report.metrics.rollbacks > 0,
        "rollback must have been tried"
    );
}

/// Prop. 4 exactness on the paper's workload: a cold-cache validator needs
/// exactly 2(γ+1) messages when every hop succeeds on the first try.
#[test]
fn prop4_exact_on_a_clean_line() {
    // Line 0-1-2-3-4-5: verifying n1's block from n0 with γ=2 walks
    // 1 → 2 → 3 with no retries: 1 fetch + 3 REQ on the wire... except the
    // validator is n1's neighbor, so its own store serves one hop for free.
    // Use a validator far from the target to keep every hop remote.
    let topology = Topology::from_edges(6, &[(0, 1), (1, 2), (2, 3), (3, 4), (4, 5)]);
    let cfg = ProtocolConfig::test_default().with_gamma(2);
    let mut net = TldagNetwork::new(cfg, topology, GenerationSchedule::uniform(6), 11);
    net.set_verification_workload(VerificationWorkload::Disabled);
    net.run_slots(10);

    let target = net.node(NodeId(1)).store().get(0).unwrap().id;
    let report = net.run_pop(NodeId(5), target, false);
    assert!(report.is_success());
    assert_eq!(
        report.metrics.total_messages(),
        analysis::prop4_message_lower_bound(2),
        "clean path hits the Prop. 4 lower bound exactly"
    );
}
