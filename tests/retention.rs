//! Retention and trust-cache persistence acceptance: fixed-seed runs stay
//! byte-identical across every storage backend with retention **off**; with
//! retention **on**, PoP requests for pruned blocks come back as graceful
//! counted misses (never a panic); and a node restarted with a persisted
//! `H_i` resumes TPS warm while a cold restart starts from scratch.

use tldag::core::block::BlockId;
use tldag::core::config::ProtocolConfig;
use tldag::core::error::PopError;
use tldag::core::network::TldagNetwork;
use tldag::core::workload::VerificationWorkload;
use tldag::crypto::Digest;
use tldag::sim::engine::{GenerationSchedule, Sharding};
use tldag::sim::topology::{Topology, TopologyConfig};
use tldag::sim::{DetRng, NodeId};
use tldag::storage::{DiskFactory, ShardedDiskFactory, StorageOptions};

const NODES: usize = 16;
const SLOTS: u64 = 20;
const SEED: u64 = 9_1842;

fn scratch(tag: &str) -> std::path::PathBuf {
    let dir = std::env::temp_dir().join(format!("tldag-retention-{tag}-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    dir
}

fn build(factory: Option<Box<dyn tldag::core::store::BackendFactory>>) -> TldagNetwork {
    let mut rng = DetRng::seed_from(SEED);
    let topo = Topology::random_connected(&TopologyConfig::small(NODES), &mut rng);
    let cfg = ProtocolConfig::test_default().with_gamma(2);
    let schedule = GenerationSchedule::uniform(topo.len());
    let mut net = match factory {
        None => TldagNetwork::new(cfg, topo, schedule, SEED),
        Some(f) => TldagNetwork::with_factory(cfg, topo, schedule, SEED, f),
    };
    net.set_verification_workload(VerificationWorkload::RandomPast { min_age_slots: 4 });
    net
}

fn digests(net: &TldagNetwork) -> Vec<Digest> {
    net.topology()
        .node_ids()
        .map(|id| net.chain_digest(id))
        .collect()
}

/// Acceptance: with retention off, `memory`, `disk`, and `disk-sharded`
/// backends produce byte-identical chains and PoP counters for a fixed
/// seed, across thread counts.
#[test]
fn backends_and_threads_agree_with_retention_off() {
    let mut reference = build(None);
    reference.run_slots(SLOTS);
    let expected = (digests(&reference), reference.pop_counters());
    assert!(expected.1 .0 > 0, "PoP workload must trigger");

    let disk_dir = scratch("det-disk");
    let mut disk = build(Some(Box::new(DiskFactory::new(
        &disk_dir,
        StorageOptions::default(),
    ))));
    disk.run_slots(SLOTS);
    assert_eq!(
        (digests(&disk), disk.pop_counters()),
        expected,
        "disk backend diverged"
    );
    drop(disk);
    let _ = std::fs::remove_dir_all(&disk_dir);

    for threads in [1usize, 3] {
        let shard_dir = scratch(&format!("det-shard-{threads}"));
        let mut sharded = build(Some(Box::new(ShardedDiskFactory::new(
            &shard_dir, threads, NODES,
        ))));
        sharded.set_sharding(Sharding::threads(threads));
        sharded.run_slots(SLOTS);
        assert_eq!(
            (digests(&sharded), sharded.pop_counters()),
            expected,
            "disk-sharded backend diverged at {threads} thread(s)"
        );
        drop(sharded);
        let _ = std::fs::remove_dir_all(&shard_dir);
    }
}

/// Acceptance: a PoP request targeting a pruned block returns a graceful
/// miss — counted in the metrics, no panic — on both disk backends.
#[test]
fn pruned_targets_miss_gracefully_on_both_disk_backends() {
    let tight = StorageOptions {
        segment_bytes: 2 * 1024,
        flush_buffer_bytes: 512,
        retain_disk_bytes: Some(4 * 1024),
        ..StorageOptions::default()
    };

    let per_node_dir = scratch("prune-disk");
    let per_node: Box<dyn tldag::core::store::BackendFactory> =
        Box::new(DiskFactory::new(&per_node_dir, tight.clone()));
    let sharded_dir = scratch("prune-shard");
    let sharded: Box<dyn tldag::core::store::BackendFactory> = Box::new(
        ShardedDiskFactory::new(&sharded_dir, 2, NODES).with_options(StorageOptions {
            // Shard logs hold a whole band of chains: scale the budget so
            // each member still ends up pruned.
            retain_disk_bytes: Some(24 * 1024),
            ..tight.clone()
        }),
    );

    for (label, factory, dir) in [
        ("disk", per_node, per_node_dir),
        ("disk-sharded", sharded, sharded_dir),
    ] {
        let mut net = build(Some(factory));
        net.set_verification_workload(VerificationWorkload::Disabled);
        net.run_slots(40);
        net.sync_storage().unwrap();

        let owner = NodeId(1);
        let floor = net.node(owner).pruned_floor();
        assert!(floor > 0, "{label}: the budget must prune node 1's prefix");

        // Target a pruned block: graceful TargetPruned, counted, no panic.
        let report = net.run_pop(NodeId(0), BlockId::new(owner, 0), false);
        assert!(!report.is_success());
        match report.outcome {
            Err(PopError::TargetPruned {
                owner: o,
                retained_from,
            }) => {
                assert_eq!(o, owner, "{label}");
                assert_eq!(retained_from, floor, "{label}");
            }
            ref other => panic!("{label}: expected TargetPruned, got {other:?}"),
        }
        assert_eq!(
            report.metrics.pruned_misses, 1,
            "{label}: the miss is counted in the metrics"
        );

        // A retained block above every floor still verifies, even though
        // responders may answer some REQ_CHILDs with pruned misses.
        let max_floor = net
            .topology()
            .node_ids()
            .map(|id| net.node(id).pruned_floor())
            .max()
            .unwrap();
        let target = BlockId::new(owner, max_floor + 2);
        let report = net.run_pop(NodeId(0), target, false);
        assert!(
            report.is_success(),
            "{label}: retained blocks stay verifiable: {:?}",
            report.outcome
        );
        drop(net);
        let _ = std::fs::remove_dir_all(&dir);
    }
}

/// Acceptance: a restarted node with a persisted `H_i` resumes TPS warm —
/// the restored cache serves path extensions a cold restart pays
/// `REQ_CHILD` traffic for.
#[test]
fn persisted_trust_cache_survives_restart_and_warms_tps() {
    let mut results = Vec::new();
    for persist in [false, true] {
        let dir = scratch(&format!("warm-{persist}"));
        let mut net = build(Some(Box::new(DiskFactory::new(
            &dir,
            StorageOptions::default(),
        ))));
        net.set_verification_workload(VerificationWorkload::Disabled);
        net.set_persist_trust_cache(persist);
        assert_eq!(net.persists_trust_cache(), persist);
        net.run_slots(12);

        // The victim verifies a fixed target set, filling H_i.
        let victim = NodeId(2);
        let targets: Vec<BlockId> = (0..4)
            .map(|i| BlockId::new(NodeId((4 + i) % NODES as u32), 3 + i))
            .collect();
        for &t in &targets {
            assert!(net.run_pop(victim, t, true).is_success());
        }
        let cached_before = net.node(victim).trust_cache().len();
        assert!(cached_before > 0);
        net.sync_storage().unwrap(); // commit point: persists H_i when on

        net.crash_node(victim);
        net.run_slots(3);
        net.restart_node(victim).unwrap();

        let restored = net.node(victim).trust_cache().len();
        if persist {
            assert_eq!(restored, cached_before, "warm restart restores H_i");
        } else {
            assert_eq!(restored, 0, "cold restart loses H_i");
        }

        let mut tps = 0u64;
        let mut req_child = 0u64;
        for &t in &targets {
            let report = net.run_pop(victim, t, false);
            assert!(report.is_success());
            tps += report.metrics.tps_extensions;
            req_child += report.metrics.req_child_sent;
        }
        results.push((persist, tps, req_child));
        drop(net);
        let _ = std::fs::remove_dir_all(&dir);
    }

    let (_, cold_tps, cold_req) = results[0];
    let (_, warm_tps, warm_req) = results[1];
    assert_eq!(cold_tps, 0, "a cold cache cannot extend paths");
    assert!(warm_tps > 0, "the restored cache must serve extensions");
    assert!(
        warm_req < cold_req,
        "warm TPS must save REQ_CHILD traffic ({warm_req} vs {cold_req})"
    );
}
