//! Attack-scenario integration tests covering Sec. IV-D end to end.

use tldag::core::attack::Behavior;
use tldag::core::config::ProtocolConfig;
use tldag::core::error::PopError;
use tldag::core::network::TldagNetwork;
use tldag::core::workload::VerificationWorkload;
use tldag::sim::engine::GenerationSchedule;
use tldag::sim::fault::{FaultPlan, MaliciousPlacement};
use tldag::sim::topology::{Topology, TopologyConfig};
use tldag::sim::{DetRng, NodeId};

fn network(seed: u64, nodes: usize, gamma: usize) -> TldagNetwork {
    let mut rng = DetRng::seed_from(seed);
    let topology = Topology::random_connected(
        &TopologyConfig {
            nodes,
            side_m: 250.0,
            ..TopologyConfig::paper_default()
        },
        &mut rng,
    );
    let cfg = ProtocolConfig::test_default().with_gamma(gamma);
    let mut net = TldagNetwork::new(cfg, topology, GenerationSchedule::uniform(nodes), seed);
    net.set_verification_workload(VerificationWorkload::Disabled);
    net
}

#[test]
fn consensus_survives_a_third_of_nodes_silent() {
    let mut net = network(1, 15, 3);
    net.run_slots(30);
    let plan = FaultPlan::select(
        &net.topology().clone(),
        5,
        MaliciousPlacement::Uniform,
        &mut DetRng::seed_from(42),
    );
    net.apply_fault_plan(&plan, Behavior::Unresponsive);
    let honest = plan.honest_ids();
    let validator = honest[0];
    let mut successes = 0;
    let mut checked = 0;
    for &owner in honest.iter().skip(1).take(6) {
        let target = net.node(owner).store().get(0).unwrap().id;
        checked += 1;
        if net.run_pop(validator, target, false).is_success() {
            successes += 1;
        }
    }
    assert!(
        successes >= checked - 1,
        "most honest blocks verifiable under 33% silence: {successes}/{checked}"
    );
}

#[test]
fn sybil_identities_never_enter_the_proof_set() {
    let mut net = network(2, 12, 3);
    net.run_slots(20);
    let sybil = NodeId(4);
    net.set_behavior(sybil, Behavior::SybilImpersonator { claimed: 9 });
    for owner in [1u32, 2, 6] {
        let target = net.node(NodeId(owner)).store().get(0).unwrap().id;
        let report = net.run_pop(NodeId(0), target, false);
        assert!(report.is_success(), "owner {owner}");
        assert!(
            report.path.iter().all(|s| s.owner != sybil),
            "sybil vouched for {owner}"
        );
    }
}

#[test]
fn corrupt_reply_is_detected_and_routed_around() {
    // Crafted topology where WPS deterministically contacts the corrupt
    // node first (lowest Eq.-7 weight), then routes around it:
    //
    //   V(0) — 6 — 5 — H(3) — T(1) — C(2) — {X(4), Y(7)}
    //
    // Verifying T's block with γ = 2: T's candidates are {C, H}; C's closed
    // neighborhood is larger (weight 1/4 < 1/3), so it is asked first, its
    // forged reply is rejected, and the path proceeds T → H → 5.
    let topology =
        Topology::from_edges(8, &[(1, 2), (1, 3), (2, 4), (2, 7), (3, 5), (5, 6), (6, 0)]);
    let cfg = ProtocolConfig::test_default().with_gamma(2);
    let mut net = TldagNetwork::new(cfg, topology, GenerationSchedule::uniform(8), 3);
    net.set_verification_workload(VerificationWorkload::Disabled);
    net.run_slots(12);
    let corrupt = NodeId(2);
    net.set_behavior(corrupt, Behavior::CorruptReply);

    let target = net.node(NodeId(1)).store().get(0).unwrap().id;
    let report = net.run_pop(NodeId(0), target, false);
    assert!(report.is_success(), "{:?}", report.outcome);
    assert!(report.path.iter().all(|s| s.owner != corrupt));
    assert!(
        report.metrics.invalid_replies >= 1,
        "the forged reply must have been seen and rejected"
    );
}

#[test]
fn tampered_block_yields_invalid_block_error() {
    let mut net = network(4, 10, 2);
    net.run_slots(10);
    net.set_behavior(NodeId(3), Behavior::CorruptStore);
    let target = net.node(NodeId(3)).store().get(0).unwrap().id;
    let report = net.run_pop(NodeId(0), target, false);
    assert!(matches!(
        report.outcome,
        Err(PopError::InvalidBlock { owner, .. }) if owner == NodeId(3)
    ));
}

#[test]
fn flooder_banned_then_paroled_after_service() {
    let mut net = network(5, 10, 2);
    let flooder = NodeId(2);
    net.set_behavior(flooder, Behavior::Flooder { rate_multiplier: 8 });
    net.run_slots(2);
    let victim = net.topology().neighbors(flooder)[0];
    assert!(
        net.node(victim).blacklist().is_banned(flooder),
        "flooding must trigger a ban"
    );
    // Reform the flooder; honest digests count as service toward parole.
    net.set_behavior(flooder, Behavior::Honest);
    net.run_slots(40);
    assert!(
        !net.node(victim).blacklist().is_banned(flooder),
        "reformed flooder is paroled after forwarding blocks"
    );
}

#[test]
fn selfish_nodes_data_becomes_unverifiable_but_network_functions() {
    let mut net = network(6, 12, 2);
    net.run_slots(20);
    let selfish = NodeId(7);
    net.set_behavior(selfish, Behavior::Selfish);

    let own = net.node(selfish).store().get(0).unwrap().id;
    assert!(matches!(
        net.run_pop(NodeId(0), own, false).outcome,
        Err(PopError::BlockUnavailable { .. })
    ));

    let other = net.node(NodeId(3)).store().get(0).unwrap().id;
    assert!(net.run_pop(NodeId(0), other, false).is_success());
}

#[test]
fn hub_targeted_adversaries_hurt_more_than_random() {
    // The paper observes that a few forwarding-heavy nodes are the natural
    // attack targets (Sec. VI-B). Degree-targeted silencing should cost at
    // least as much traffic (or failures) as uniform silencing.
    let run = |placement: MaliciousPlacement| {
        let mut net = network(7, 16, 3);
        net.run_slots(24);
        let plan = FaultPlan::select(
            &net.topology().clone(),
            4,
            placement,
            &mut DetRng::seed_from(3),
        );
        net.apply_fault_plan(&plan, Behavior::Unresponsive);
        let honest = plan.honest_ids();
        let mut failures = 0;
        let mut requests = 0u64;
        for k in 0..8 {
            let validator = honest[k % honest.len()];
            let owner = honest[(k + 3) % honest.len()];
            if validator == owner {
                continue;
            }
            let target = net.node(owner).store().get(0).unwrap().id;
            let report = net.run_pop(validator, target, false);
            requests += report.metrics.req_child_sent;
            if !report.is_success() {
                failures += 1;
            }
        }
        (failures, requests)
    };
    let (uniform_fail, uniform_req) = run(MaliciousPlacement::Uniform);
    let (hub_fail, hub_req) = run(MaliciousPlacement::HighestDegree);
    assert!(
        hub_fail > uniform_fail || hub_req >= uniform_req,
        "hub attack (fail {hub_fail}, req {hub_req}) should be at least as damaging \
         as uniform (fail {uniform_fail}, req {uniform_req})"
    );
}

#[test]
fn unresponsive_majority_blocks_but_never_forges() {
    // Even when consensus cannot be reached, no PoP run may return success
    // on a tampered block — integrity beats availability.
    let mut net = network(8, 12, 4);
    net.run_slots(24);
    let plan = FaultPlan::select(
        &net.topology().clone(),
        8,
        MaliciousPlacement::Uniform,
        &mut DetRng::seed_from(4),
    );
    net.apply_fault_plan(&plan, Behavior::Unresponsive);
    // Also tamper one of the remaining honest-ish nodes.
    let honest = plan.honest_ids();
    let tampered = honest[0];
    net.set_behavior(tampered, Behavior::CorruptStore);
    let target = net.node(tampered).store().get(0).unwrap().id;
    let report = net.run_pop(honest[1], target, false);
    assert!(!report.is_success(), "tampered block must never verify");
}
