//! Determinism and durability guarantees of the sharded slot engine:
//! a fixed seed must produce byte-identical chains for every thread count,
//! across storage backends, and `SyncPolicy::PerSlot` must never lose a
//! committed block across a whole-process crash/restart.

use tldag::core::config::ProtocolConfig;
use tldag::core::network::TldagNetwork;
use tldag::core::store::SyncPolicy;
use tldag::core::workload::VerificationWorkload;
use tldag::crypto::Digest;
use tldag::sim::bus::TrafficClass;
use tldag::sim::engine::{GenerationSchedule, Sharding};
use tldag::sim::fault::LinkFaults;
use tldag::sim::topology::{Topology, TopologyConfig};
use tldag::sim::{DetRng, NodeId};
use tldag::storage::ShardedDiskFactory;

const NODES: usize = 32;
const SLOTS: u64 = 12;
const SEED: u64 = 4242;

fn build_network(threads: usize, factory: Option<ShardedDiskFactory>) -> TldagNetwork {
    let mut rng = DetRng::seed_from(SEED);
    let topo = Topology::random_connected(&TopologyConfig::small(NODES), &mut rng);
    let cfg = ProtocolConfig::test_default().with_gamma(2);
    let schedule = GenerationSchedule::uniform(topo.len());
    let mut net = match factory {
        None => TldagNetwork::new(cfg, topo, schedule, SEED),
        Some(f) => TldagNetwork::with_factory(cfg, topo, schedule, SEED, Box::new(f)),
    };
    net.set_sharding(Sharding::threads(threads));
    // Young-enough targets so the PoP phase actually runs in every slot, and
    // lossy links so the per-validator fault streams are exercised too.
    net.set_verification_workload(VerificationWorkload::RandomPast { min_age_slots: 4 });
    net.set_link_faults(LinkFaults::lossy(0.05, DetRng::seed_from(SEED ^ 0xfa)));
    net
}

/// Everything observable about a finished run.
fn fingerprint(net: &TldagNetwork) -> (Vec<Digest>, u64, u64, (u64, u64), usize) {
    let chains: Vec<Digest> = net
        .topology()
        .node_ids()
        .map(|id| net.chain_digest(id))
        .collect();
    (
        chains,
        net.accounting()
            .network_total(TrafficClass::DagConstruction)
            .bits(),
        net.accounting()
            .network_total(TrafficClass::Consensus)
            .bits(),
        net.pop_counters(),
        net.total_blocks(),
    )
}

#[test]
fn fixed_seed_is_identical_across_thread_counts() {
    let mut reference = build_network(1, None);
    reference.run_slots(SLOTS);
    let expected = fingerprint(&reference);
    assert!(expected.3 .0 > 0, "PoP workload must trigger");

    for threads in [2, 4, 7] {
        let mut net = build_network(threads, None);
        net.run_slots(SLOTS);
        assert_eq!(
            fingerprint(&net),
            expected,
            "threads={threads} diverged from the single-threaded run"
        );
    }
}

#[test]
fn storage_backend_does_not_change_protocol_outcomes() {
    // Memory vs group-committed sharded disk, 4 threads each: the chains,
    // traffic, and PoP counters must match bit for bit.
    let mut memory = build_network(4, None);
    memory.run_slots(SLOTS);

    let dir = std::env::temp_dir().join(format!("tldag-shard-det-{}", std::process::id()));
    let mut disk = build_network(4, Some(ShardedDiskFactory::new(&dir, 4, NODES)));
    disk.run_slots(SLOTS);

    assert_eq!(fingerprint(&memory), fingerprint(&disk));
    drop(disk);
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn per_slot_group_commit_costs_one_fsync_per_shard_per_slot() {
    let dir = std::env::temp_dir().join(format!("tldag-shard-fsync-{}", std::process::id()));
    let shards = 4;
    let factory = ShardedDiskFactory::new(&dir, shards, NODES);
    let logs = {
        let mut net = build_network(shards, Some(factory));
        net.set_sync_policy(SyncPolicy::PerSlot);
        net.run_slots(SLOTS);
        // Read each log's count through the first node of its band (the
        // factory shards by the same contiguous bands as the engine).
        Sharding::threads(shards)
            .chunk_ranges(NODES)
            .iter()
            .map(|band| net.node(NodeId(band.start as u32)).store().fsync_count())
            .collect::<Vec<_>>()
    };
    for (shard, &fsyncs) in logs.iter().enumerate() {
        assert_eq!(
            fsyncs, SLOTS,
            "shard {shard}: expected one fsync per slot, got {fsyncs}"
        );
    }
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn grouped_policy_syncs_every_n_slots() {
    let dir = std::env::temp_dir().join(format!("tldag-shard-grouped-{}", std::process::id()));
    let mut net = build_network(2, Some(ShardedDiskFactory::new(&dir, 2, NODES)));
    net.set_sync_policy(SyncPolicy::Grouped(3));
    net.run_slots(SLOTS); // 12 slots / 3 = 4 sync points
    assert_eq!(net.node(NodeId(0)).store().fsync_count(), SLOTS / 3);
    assert_eq!(
        net.node(NodeId(0)).store().durable_len(),
        SLOTS as usize,
        "last slot (11) is a Grouped(3) sync point, so everything is durable"
    );
    drop(net);
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn grouped_policy_trailing_slots_need_the_shutdown_flush() {
    // 11 slots with Grouped(3): boundaries at slots 2, 5, 8 — slots 9-10 are
    // only staged. A clean shutdown must flush them via sync_storage(), or a
    // cold reattach comes back short.
    let dir = std::env::temp_dir().join(format!("tldag-shard-tail-{}", std::process::id()));
    let factory = ShardedDiskFactory::new(&dir, 2, NODES).with_flush_buffer(1 << 24);
    let mut net = build_network(2, Some(factory));
    net.set_sync_policy(SyncPolicy::Grouped(3));
    net.run_slots(11);
    assert_eq!(
        net.node(NodeId(0)).store().durable_len(),
        9,
        "slots past the last group boundary are staged, not durable"
    );
    net.sync_storage().expect("shutdown flush");
    assert_eq!(net.node(NodeId(0)).store().durable_len(), 11);
    drop(net);

    let mut revived = ShardedDiskFactory::attach(&dir, 2, NODES);
    let store = tldag::core::store::BackendFactory::reopen(&mut revived, NodeId(0))
        .expect("shard log reopens");
    assert_eq!(store.len(), 11, "flushed tail survives the cold reattach");
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn per_slot_policy_loses_no_committed_block_across_process_crash() {
    let dir = std::env::temp_dir().join(format!("tldag-shard-crash-{}", std::process::id()));
    let shards = 4;
    // Huge flush buffer: unsynced records live in process memory only, so
    // dropping the network + factory models a whole-process crash.
    let factory = ShardedDiskFactory::new(&dir, shards, NODES).with_flush_buffer(1 << 24);
    let mut net = build_network(shards, Some(factory));
    net.set_sync_policy(SyncPolicy::PerSlot);
    net.run_slots(SLOTS);
    let committed: Vec<usize> = net
        .topology()
        .node_ids()
        .map(|id| net.node(id).store().durable_len())
        .collect();
    assert!(committed.iter().all(|&len| len == SLOTS as usize));
    drop(net); // the whole process dies; every handle and log goes away

    // Cold restart: a fresh factory replays the shard logs from disk.
    let mut revived = ShardedDiskFactory::attach(&dir, shards, NODES);
    for (idx, &expect) in committed.iter().enumerate() {
        let store = tldag::core::store::BackendFactory::reopen(&mut revived, NodeId(idx as u32))
            .expect("shard log reopens");
        assert_eq!(
            store.len(),
            expect,
            "node {idx}: committed blocks must survive the crash"
        );
    }
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn crash_and_restart_of_one_node_recovers_its_group_committed_chain() {
    let dir = std::env::temp_dir().join(format!("tldag-shard-restart-{}", std::process::id()));
    let mut net = build_network(2, Some(ShardedDiskFactory::new(&dir, 2, NODES)));
    net.set_sync_policy(SyncPolicy::PerSlot);
    net.run_slots(6);
    let victim = NodeId(3);
    let chain_before = net.node(victim).chain_len();
    net.crash_node(victim);
    net.run_slots(3);
    let recovered = net.restart_node(victim).expect("restart from shard log");
    assert_eq!(recovered, chain_before, "full chain recovered");
    net.run_slots(3);
    assert_eq!(
        net.node(victim).chain_len(),
        chain_before + 3,
        "victim resumes generating after revival"
    );
    drop(net);
    let _ = std::fs::remove_dir_all(&dir);
}
