//! Tracing acceptance: a multi-process UDP cluster run with `--trace`
//! yields cross-node stitched block timelines via each node's `/trace`
//! endpoint, and enabling tracing never changes a single protocol byte —
//! digests and PoP counters are identical with the span store on or off.

use std::collections::{HashMap, HashSet};
use std::path::PathBuf;
use std::time::Duration;
use tldag::net::{run_cluster, timelines_for_slot, ClusterConfig};

/// Every `"node":N` span attribution inside one timeline's JSON.
fn span_nodes(timeline: &str) -> Vec<u32> {
    timeline
        .match_indices("\"node\":")
        .filter_map(|(i, m)| {
            let digits: String = timeline[i + m.len()..]
                .chars()
                .take_while(char::is_ascii_digit)
                .collect();
            digits.parse().ok()
        })
        .collect()
}

fn tldag_exe() -> PathBuf {
    PathBuf::from(env!("CARGO_BIN_EXE_tldag"))
}

fn base_config(nodes: usize, slots: u64, seed: u64) -> ClusterConfig {
    let mut config = ClusterConfig::new(tldag_exe(), nodes, slots, seed);
    config.report_timeout = Duration::from_secs(120);
    config
}

#[test]
fn traced_cluster_stitches_timelines_across_all_nodes() {
    let mut config = base_config(3, 6, 20260808);
    config.pop = true;
    config.metrics = true;
    config.trace = true;
    let outcome = run_cluster(&config).expect("cluster run");
    assert!(!outcome.degraded(), "no barrier may time out on loopback");
    assert_eq!(
        outcome.wire_digest, outcome.reference_digest,
        "the traced cluster must reproduce the engine's network digest"
    );

    assert_eq!(
        outcome.trace_snapshots.len(),
        3,
        "every node's /trace endpoint must be scraped"
    );
    for (i, snapshot) in outcome.trace_snapshots.iter().enumerate() {
        assert!(
            snapshot.contains("\"timelines\":["),
            "node {i} returned no timeline array: {snapshot:.120}"
        );
        assert!(
            snapshot.contains("\"kind\":\"cmt\""),
            "node {i} recorded no commit spans"
        );
    }
    // The envelope's trace-context extension carries the origin's
    // gossip-out instant, so every receiver's local timeline spans both
    // ends of the wire.
    for (i, snapshot) in outcome.trace_snapshots.iter().enumerate() {
        assert!(
            snapshot.contains("\"nodes\":2"),
            "node {i} has no timeline spanning origin and receiver"
        );
    }
    // Merge the three scrapes the way a trace viewer would: at least one
    // block identity must accumulate spans from all three nodes.
    let mut nodes_by_block: HashMap<String, HashSet<u32>> = HashMap::new();
    for snapshot in &outcome.trace_snapshots {
        for slot in 0..6 {
            for timeline in timelines_for_slot(snapshot, slot) {
                // Everything before the node count — `"slot":…,"origin":…,
                // "prefix":"…"` — identifies the block.
                let key = timeline
                    .split("\"nodes\":")
                    .next()
                    .expect("split yields a head")
                    .to_string();
                nodes_by_block
                    .entry(key)
                    .or_default()
                    .extend(span_nodes(&timeline));
            }
        }
    }
    assert!(
        nodes_by_block.values().any(|nodes| nodes.len() == 3),
        "no block accumulated spans from all three nodes across the scrapes"
    );
}

#[test]
fn tracing_never_perturbs_digests_or_pop_counters() {
    // Two runs of the same seeded cluster, span store off then on: the
    // observable protocol state must be byte-identical. (A tracing
    // side-channel that shifted even one datagram would break the
    // engine-parity invariant every other acceptance test relies on.)
    let mut plain = base_config(3, 6, 7);
    plain.pop = true;
    let baseline = run_cluster(&plain).expect("untraced cluster run");

    let mut traced = base_config(3, 6, 7);
    traced.pop = true;
    traced.metrics = true;
    traced.trace = true;
    let observed = run_cluster(&traced).expect("traced cluster run");

    assert_eq!(
        baseline.wire_digest, baseline.reference_digest,
        "untraced run must be at parity"
    );
    assert_eq!(
        observed.wire_digest, observed.reference_digest,
        "traced run must be at parity"
    );
    assert_eq!(
        baseline.wire_digest, observed.wire_digest,
        "tracing changed the network digest"
    );
    assert_eq!(
        baseline.wire_pop, observed.wire_pop,
        "tracing changed the PoP attempt/success counters"
    );
    assert!(baseline.wire_pop.0 > 0, "the workload must trigger");
    assert!(
        baseline.trace_snapshots.is_empty(),
        "untraced runs must not scrape /trace"
    );
}
