//! Property-based tests over the core invariants: for arbitrary seeds,
//! topologies, rates, and adversary placements, the system-wide guarantees
//! must hold.

use proptest::prelude::*;
use tldag::core::analysis;
use tldag::core::attack::Behavior;
use tldag::core::config::ProtocolConfig;
use tldag::core::dag::LogicalDag;
use tldag::core::network::TldagNetwork;
use tldag::core::workload::VerificationWorkload;
use tldag::crypto::merkle::{merkle_root, MerkleTree};
use tldag::crypto::schnorr::KeyPair;
use tldag::crypto::sha256::{sha256, Sha256};
use tldag::sim::engine::GenerationSchedule;
use tldag::sim::fault::{FaultPlan, MaliciousPlacement};
use tldag::sim::stats::Cdf;
use tldag::sim::topology::{Topology, TopologyConfig};
use tldag::sim::{DetRng, NodeId};

fn build_net(seed: u64, nodes: usize, gamma: usize, mixed_rates: bool) -> TldagNetwork {
    let mut rng = DetRng::seed_from(seed);
    let topology = Topology::random_connected(
        &TopologyConfig {
            nodes,
            side_m: 280.0,
            ..TopologyConfig::paper_default()
        },
        &mut rng,
    );
    let schedule = if mixed_rates {
        GenerationSchedule::random_periods(nodes, &[1, 2], &mut rng)
    } else {
        GenerationSchedule::uniform(nodes)
    };
    let cfg = ProtocolConfig::test_default().with_gamma(gamma);
    let mut net = TldagNetwork::new(cfg, topology, schedule, seed);
    net.set_verification_workload(VerificationWorkload::Disabled);
    net
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(12))]

    /// The logical DAG is acyclic and time-consistent for any seed, size,
    /// and rate mix.
    #[test]
    fn dag_always_acyclic(
        seed in 0u64..500,
        nodes in 6usize..14,
        slots in 4u64..24,
        mixed in any::<bool>(),
    ) {
        let mut net = build_net(seed, nodes, 2, mixed);
        net.run_slots(slots);
        let dag = LogicalDag::build(net.nodes());
        prop_assert!(dag.is_acyclic());
        prop_assert!(dag.edges_respect_time());
        // Proposition 1 is exact for slotted generation.
        let schedule = if mixed {
            // Rebuild the same schedule from the same stream.
            let mut rng = DetRng::seed_from(seed);
            let _ = Topology::random_connected(
                &TopologyConfig { nodes, side_m: 280.0, ..TopologyConfig::paper_default() },
                &mut rng,
            );
            GenerationSchedule::random_periods(nodes, &[1, 2], &mut rng)
        } else {
            GenerationSchedule::uniform(nodes)
        };
        prop_assert_eq!(
            dag.block_count() as u64,
            analysis::prop1_total_blocks(&schedule, slots - 1)
        );
    }

    /// Every successful PoP yields a valid DAG path with at least γ+1
    /// distinct owners whose first element is the target.
    #[test]
    fn pop_success_is_sound(
        seed in 0u64..200,
        nodes in 8usize..14,
        gamma in 2usize..4,
    ) {
        let mut net = build_net(seed, nodes, gamma, false);
        net.run_slots(nodes as u64 + 8);
        let dag = LogicalDag::build(net.nodes());
        let owner = NodeId(1 + (seed % (nodes as u64 - 1)) as u32);
        let target = net.node(owner).store().get(0).unwrap().id;
        let report = net.run_pop(NodeId(0), target, false);
        if report.is_success() {
            prop_assert!(report.distinct_nodes > gamma);
            prop_assert_eq!(report.path[0].block_id, target);
            let digests: Vec<_> = report.path.iter().map(|s| s.digest).collect();
            prop_assert!(dag.is_valid_path(&digests));
            // Distinct owners on the path match the reported count.
            let mut owners: Vec<NodeId> = report.path.iter().map(|s| s.owner).collect();
            owners.sort_unstable();
            owners.dedup();
            prop_assert_eq!(owners.len(), report.distinct_nodes);
            // The proof set is backed by the oracle: every path owner's
            // block indeed descends from the target.
            let oracle = dag.pointing_nodes(&digests[0]);
            for o in owners {
                prop_assert!(oracle.contains(&o), "owner {} not vouching", o);
            }
        }
    }

    /// Storage never exceeds the Proposition 3 bound, with or without
    /// verification workload.
    #[test]
    fn storage_bounded_by_prop3(
        seed in 0u64..200,
        nodes in 6usize..12,
        slots in 6u64..20,
    ) {
        let mut net = build_net(seed, nodes, 2, false);
        net.set_verification_workload(VerificationWorkload::RandomPast {
            min_age_slots: nodes as u64,
        });
        net.run_slots(slots);
        let schedule = GenerationSchedule::uniform(nodes);
        let cfg = *net.config();
        for id in net.topology().node_ids() {
            let bound = analysis::prop3_storage_bound(&cfg, &schedule, id, slots - 1, nodes);
            prop_assert!(net.node(id).storage_bits(&cfg) <= bound);
        }
    }

    /// Tampered blocks never verify, for any placement of the tamperer.
    #[test]
    fn tampering_never_verifies(
        seed in 0u64..200,
        nodes in 8usize..12,
        rogue_idx in 1u32..8,
    ) {
        let mut net = build_net(seed, nodes, 2, false);
        net.run_slots(12);
        let rogue = NodeId(rogue_idx % nodes as u32);
        if rogue == NodeId(0) {
            return Ok(());
        }
        net.set_behavior(rogue, Behavior::CorruptStore);
        let target = net.node(rogue).store().get(0).unwrap().id;
        let report = net.run_pop(NodeId(0), target, false);
        prop_assert!(!report.is_success());
    }

    /// Unresponsive adversaries can only appear on proof paths as the target
    /// itself — they can never vouch.
    #[test]
    fn silent_nodes_never_vouch(
        seed in 0u64..200,
        nodes in 10usize..14,
        malicious in 1usize..4,
    ) {
        let mut net = build_net(seed, nodes, 2, false);
        net.run_slots(16);
        let plan = FaultPlan::select(
            &net.topology().clone(),
            malicious,
            MaliciousPlacement::Uniform,
            &mut DetRng::seed_from(seed ^ 0xff),
        );
        net.apply_fault_plan(&plan, Behavior::Unresponsive);
        let honest = plan.honest_ids();
        let validator = honest[0];
        let owner = honest[1];
        let target = net.node(owner).store().get(0).unwrap().id;
        let report = net.run_pop(validator, target, false);
        for step in &report.path {
            prop_assert!(
                !plan.is_malicious(step.owner),
                "silent node {} on path", step.owner
            );
        }
    }

    /// SHA-256 streaming equals one-shot for arbitrary data and split points.
    #[test]
    fn sha256_streaming_equivalence(
        data in proptest::collection::vec(any::<u8>(), 0..400),
        split in 0usize..400,
    ) {
        let split = split.min(data.len());
        let mut h = Sha256::new();
        h.update(&data[..split]);
        h.update(&data[split..]);
        prop_assert_eq!(h.finalize(), sha256(&data));
    }

    /// Merkle proofs verify for every leaf and fail for any other leaf's
    /// data, for arbitrary leaf sets.
    #[test]
    fn merkle_proofs_sound(
        leaves in proptest::collection::vec(
            proptest::collection::vec(any::<u8>(), 1..32), 1..24),
    ) {
        let tree = MerkleTree::build(leaves.iter());
        prop_assert_eq!(tree.root(), merkle_root(leaves.iter()));
        for (i, leaf) in leaves.iter().enumerate() {
            let proof = tree.proof(i).unwrap();
            prop_assert!(proof.verify(&tree.root(), leaf));
            // A proof must not validate a different leaf's bytes.
            for (j, other) in leaves.iter().enumerate() {
                if other != leaf {
                    prop_assert!(!proof.verify(&tree.root(), other), "{i} vs {j}");
                }
            }
        }
    }

    /// Schnorr signatures verify exactly for the signing key and message.
    #[test]
    fn schnorr_sound(
        seed_a in 0u64..1000,
        seed_b in 0u64..1000,
        msg in proptest::collection::vec(any::<u8>(), 0..64),
        tweak in proptest::collection::vec(any::<u8>(), 1..64),
    ) {
        let alice = KeyPair::from_seed(seed_a);
        let sig = alice.sign(&msg);
        prop_assert!(alice.public().verify(&msg, &sig));
        if tweak != msg {
            prop_assert!(!alice.public().verify(&tweak, &sig));
        }
        if seed_a != seed_b {
            let bob = KeyPair::from_seed(seed_b);
            prop_assert!(!bob.public().verify(&msg, &sig));
        }
    }

    /// Topologies from the paper's placement are connected and in-range for
    /// any seed and size.
    #[test]
    fn topologies_always_connected(seed in 0u64..1000, nodes in 1usize..40) {
        let cfg = TopologyConfig { nodes, ..TopologyConfig::paper_default() };
        let topo = Topology::random_connected(&cfg, &mut DetRng::seed_from(seed));
        prop_assert!(topo.is_connected());
        for a in topo.node_ids() {
            for &b in topo.neighbors(a) {
                prop_assert!(topo.position(a).in_range(&topo.position(b), cfg.range_m));
            }
        }
    }

    /// Empirical CDFs are monotone with range [0, 1] for arbitrary samples.
    #[test]
    fn cdf_monotone(samples in proptest::collection::vec(0.0f64..1e6, 1..100)) {
        let cdf = Cdf::from_samples(samples.clone());
        let mut last = 0.0;
        let (lo, hi) = cdf.range().unwrap();
        for x in [lo - 1.0, lo, (lo + hi) / 2.0, hi, hi + 1.0] {
            let f = cdf.fraction_at_or_below(x);
            prop_assert!((0.0..=1.0).contains(&f));
            prop_assert!(f >= last - 1e-12);
            last = f;
        }
        prop_assert_eq!(cdf.fraction_at_or_below(hi), 1.0);
    }
}
