//! Tests for the Sec. VII future-work extensions: dynamic membership
//! (join/leave) and multi-hop physical-layer accounting for PoP traffic.

use tldag::core::config::ProtocolConfig;
use tldag::core::network::TldagNetwork;
use tldag::core::workload::VerificationWorkload;
use tldag::sim::bus::TrafficClass;
use tldag::sim::engine::GenerationSchedule;
use tldag::sim::geometry::Point;
use tldag::sim::topology::{Topology, TopologyConfig};
use tldag::sim::{DetRng, NodeId};

fn network(seed: u64, nodes: usize, gamma: usize, multihop: bool) -> TldagNetwork {
    let mut rng = DetRng::seed_from(seed);
    let topology = Topology::random_connected(
        &TopologyConfig {
            nodes,
            side_m: 260.0,
            ..TopologyConfig::paper_default()
        },
        &mut rng,
    );
    let mut cfg = ProtocolConfig::test_default().with_gamma(gamma);
    cfg.multihop_accounting = multihop;
    let mut net = TldagNetwork::new(cfg, topology, GenerationSchedule::uniform(nodes), seed);
    net.set_verification_workload(VerificationWorkload::Disabled);
    net
}

#[test]
fn joined_node_integrates_and_becomes_verifiable() {
    let mut net = network(1, 10, 2, false);
    net.run_slots(8);

    // A new sensor appears next to node 0.
    let anchor = net.topology().position(NodeId(0));
    let newcomer = net.node_joins(Point::new(anchor.x + 10.0, anchor.y), 50.0, 1);
    assert!(net.topology().degree(newcomer) >= 1, "wired to the anchor");
    assert!(net.node(NodeId(0)).neighbors().contains(&newcomer));

    // It generates from the next slots and its digests reach neighbors.
    net.run_slots(12);
    assert!(net.node(newcomer).chain_len() >= 10);

    // Its early blocks become verifiable once enough children exist.
    let target = net.node(newcomer).store().get(0).unwrap().id;
    let report = net.run_pop(NodeId(1), target, false);
    assert!(report.is_success(), "{:?}", report.outcome);
}

#[test]
fn departed_node_stops_participating_but_history_survives() {
    let mut net = network(2, 10, 2, false);
    net.run_slots(10);
    let leaver = NodeId(4);
    let chain_before = net.node(leaver).chain_len();
    let total_before = net.total_blocks();
    net.node_leaves(leaver);
    net.run_slots(10);

    // No new blocks from the departed node; everyone else keeps going.
    assert_eq!(net.node(leaver).chain_len(), chain_before);
    assert_eq!(net.total_blocks(), total_before + 9 * 10);
    assert_eq!(net.topology().degree(leaver), 0);
    assert!(net.has_departed(leaver));

    // Its data is gone with it (reactive consensus has nothing to verify)…
    let target = net.node(leaver).store().get(0).unwrap().id;
    assert!(!net.run_pop(NodeId(0), target, false).is_success());

    // …but other nodes' pre-departure blocks still verify, even those whose
    // proof paths used to run through the leaver's neighborhood.
    let other = net.node(NodeId(1)).store().get(0).unwrap().id;
    assert!(net.run_pop(NodeId(0), other, false).is_success());
}

#[test]
fn churn_sequence_keeps_network_functional() {
    let mut net = network(3, 10, 2, false);
    net.run_slots(6);
    let p1 = net.topology().position(NodeId(2));
    let joined_a = net.node_joins(Point::new(p1.x + 5.0, p1.y + 5.0), 50.0, 1);
    net.run_slots(6);
    net.node_leaves(NodeId(7));
    let p2 = net.topology().position(NodeId(5));
    let joined_b = net.node_joins(Point::new(p2.x - 5.0, p2.y), 50.0, 2);
    net.run_slots(12);

    assert!(net.node(joined_a).chain_len() > 10);
    assert!(net.node(joined_b).chain_len() >= 5);
    let target = net.node(joined_a).store().get(2).unwrap().id;
    let report = net.run_pop(joined_b, target, false);
    assert!(report.is_success(), "{:?}", report.outcome);
}

#[test]
fn multihop_accounting_costs_at_least_endpoint_accounting() {
    let run = |multihop: bool| {
        let mut net = network(4, 12, 3, multihop);
        net.set_verification_workload(VerificationWorkload::RandomPast { min_age_slots: 12 });
        net.run_slots(30);
        net.accounting()
            .network_total(TrafficClass::Consensus)
            .bits()
    };
    let endpoint = run(false);
    let multihop = run(true);
    assert!(endpoint > 0);
    assert!(
        multihop >= endpoint,
        "relays add cost: multihop {multihop} vs endpoint {endpoint}"
    );
}

#[test]
fn multihop_matches_endpoint_on_single_hop_exchanges() {
    // On a 2-node network every exchange is single-hop, so the two
    // accounting modes must agree exactly.
    let topo = Topology::from_edges(2, &[(0, 1)]);
    let run = |multihop: bool| {
        let mut cfg = ProtocolConfig::test_default().with_gamma(0);
        cfg.multihop_accounting = multihop;
        let mut net = TldagNetwork::new(cfg, topo.clone(), GenerationSchedule::uniform(2), 9);
        net.set_verification_workload(VerificationWorkload::Disabled);
        net.run_slots(6);
        let target = net.node(NodeId(1)).store().get(0).unwrap().id;
        assert!(net.run_pop(NodeId(0), target, true).is_success());
        net.accounting()
            .network_total(TrafficClass::Consensus)
            .bits()
    };
    assert_eq!(run(false), run(true));
}

#[test]
fn relays_earn_traffic_under_multihop_accounting() {
    // Line topology 0-1-2: traffic between 0 and 2 must transit 1.
    let topo = Topology::from_edges(3, &[(0, 1), (1, 2)]);
    let mut cfg = ProtocolConfig::test_default().with_gamma(1);
    cfg.multihop_accounting = true;
    let mut net = TldagNetwork::new(cfg, topo, GenerationSchedule::uniform(3), 10);
    net.set_verification_workload(VerificationWorkload::Disabled);
    net.run_slots(8);
    let target = net.node(NodeId(2)).store().get(0).unwrap().id;
    let report = net.run_pop(NodeId(0), target, true);
    assert!(report.is_success());
    let relay_traffic = net
        .accounting()
        .node_total(NodeId(1), TrafficClass::Consensus);
    assert!(
        relay_traffic.bits() > 0,
        "the middle node must relay PoP bytes"
    );
}

#[test]
fn trace_captures_protocol_events() {
    use tldag::sim::trace::{Trace, TraceKind};

    let mut net = network(11, 8, 2, false);
    net.set_trace(Trace::bounded(256));
    net.set_verification_workload(VerificationWorkload::RandomPast { min_age_slots: 8 });
    net.run_slots(12);
    let p = net.topology().position(NodeId(0));
    let joined = net.node_joins(Point::new(p.x + 3.0, p.y), 50.0, 1);
    net.node_leaves(NodeId(5));

    let trace = net.trace();
    assert!(!trace.is_empty());
    assert!(!trace.of_kind(TraceKind::Generate).is_empty());
    assert!(!trace.of_kind(TraceKind::Pop).is_empty());
    let membership = trace.of_kind(TraceKind::Membership);
    assert_eq!(membership.len(), 2);
    let rendered = trace.render();
    assert!(rendered.contains(&format!("{joined} joined")));
    assert!(rendered.contains("n5 left"));
}

#[test]
fn lossy_links_degrade_cost_not_integrity() {
    use tldag::sim::fault::LinkFaults;

    // Identical network, perfect vs 15%-lossy links.
    let run = |loss: f64| {
        let mut net = network(12, 12, 2, false);
        if loss > 0.0 {
            net.set_link_faults(LinkFaults::lossy(loss, DetRng::seed_from(1)));
        }
        net.run_slots(20);
        let mut successes = 0;
        let mut timeouts = 0;
        for owner in 1..=6u32 {
            let target = net.node(NodeId(owner)).store().get(0).unwrap().id;
            let report = net.run_pop(NodeId(0), target, false);
            if report.is_success() {
                successes += 1;
            }
            timeouts += report.metrics.timeouts;
        }
        (successes, timeouts)
    };
    let (clean_ok, clean_timeouts) = run(0.0);
    let (lossy_ok, lossy_timeouts) = run(0.15);
    assert_eq!(clean_ok, 6, "perfect links always verify");
    assert_eq!(clean_timeouts, 0);
    assert!(lossy_timeouts > 0, "loss must surface as timeouts");
    // Retrying other responders keeps most verifications alive.
    assert!(
        lossy_ok >= 4,
        "moderate loss should not collapse PoP: {lossy_ok}/6"
    );
}
