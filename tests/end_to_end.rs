//! Cross-crate end-to-end tests: full slotted runs with verification
//! workloads, global DAG invariants, storage/communication accounting, and
//! determinism.

use tldag::core::analysis;
use tldag::core::config::ProtocolConfig;
use tldag::core::dag::LogicalDag;
use tldag::core::network::TldagNetwork;
use tldag::core::workload::VerificationWorkload;
use tldag::sim::bus::TrafficClass;
use tldag::sim::engine::GenerationSchedule;
use tldag::sim::topology::{Topology, TopologyConfig};
use tldag::sim::{DetRng, NodeId};

fn network(seed: u64, nodes: usize, gamma: usize) -> TldagNetwork {
    let mut rng = DetRng::seed_from(seed);
    let topology = Topology::random_connected(
        &TopologyConfig {
            nodes,
            side_m: 300.0,
            ..TopologyConfig::paper_default()
        },
        &mut rng,
    );
    let cfg = ProtocolConfig::test_default().with_gamma(gamma);
    TldagNetwork::new(cfg, topology, GenerationSchedule::uniform(nodes), seed)
}

#[test]
fn long_run_with_workload_keeps_all_invariants() {
    let mut net = network(1, 14, 3);
    net.set_verification_workload(VerificationWorkload::RandomPast { min_age_slots: 14 });
    net.run_slots(40);

    // Every PoP the workload triggered succeeded (honest network).
    let (attempts, successes) = net.pop_counters();
    assert!(attempts > 100, "workload ran ({attempts} attempts)");
    assert_eq!(attempts, successes);

    // Global logical-DAG invariants.
    let dag = LogicalDag::build(net.nodes());
    assert_eq!(dag.block_count(), 14 * 40);
    assert!(dag.is_acyclic());
    assert!(dag.edges_respect_time());

    // Proposition 1 holds exactly.
    let schedule = GenerationSchedule::uniform(14);
    assert_eq!(
        dag.block_count() as u64,
        analysis::prop1_total_blocks(&schedule, 39)
    );
}

#[test]
fn storage_split_matches_store_plus_cache() {
    let mut net = network(2, 10, 2);
    net.set_verification_workload(VerificationWorkload::RandomPast { min_age_slots: 10 });
    net.run_slots(24);
    let cfg = *net.config();
    for id in net.topology().node_ids() {
        let node = net.node(id);
        let expect = node.store().logical_bits(&cfg) + node.trust_cache().logical_bits(&cfg);
        assert_eq!(node.storage_bits(&cfg), expect, "node {id}");
    }
}

#[test]
fn trust_caches_grow_only_through_successful_pops() {
    let mut net = network(3, 10, 2);
    net.set_verification_workload(VerificationWorkload::Disabled);
    net.run_slots(20);
    for id in net.topology().node_ids() {
        assert_eq!(net.node(id).trust_cache().len(), 0, "no PoP, no cache");
    }
    let target = net.node(NodeId(1)).store().get(0).unwrap().id;
    net.run_pop(NodeId(0), target, true);
    assert!(!net.node(NodeId(0)).trust_cache().is_empty());
    assert_eq!(net.node(NodeId(2)).trust_cache().len(), 0);
}

#[test]
fn consensus_traffic_appears_only_after_min_age() {
    let mut net = network(4, 12, 2);
    net.set_verification_workload(VerificationWorkload::RandomPast { min_age_slots: 12 });
    net.run_slots(12);
    // No block is old enough yet: zero consensus traffic (paper: "almost
    // zero in the first |V| time slots").
    assert_eq!(
        net.accounting()
            .network_total(TrafficClass::Consensus)
            .bits(),
        0
    );
    net.run_slots(6);
    assert!(
        net.accounting()
            .network_total(TrafficClass::Consensus)
            .bits()
            > 0
    );
}

#[test]
fn identical_seeds_reproduce_identical_runs() {
    let run = |seed| {
        let mut net = network(seed, 12, 3);
        net.set_verification_workload(VerificationWorkload::RandomPast { min_age_slots: 12 });
        net.run_slots(30);
        let dag = LogicalDag::build(net.nodes());
        (
            net.total_blocks(),
            dag.edge_count(),
            net.pop_counters(),
            net.accounting().network_total(TrafficClass::Consensus),
            net.accounting()
                .network_total(TrafficClass::DagConstruction),
        )
    };
    assert_eq!(run(77), run(77));
    assert_ne!(run(77).3, run(78).3, "different seeds diverge");
}

#[test]
fn message_overhead_within_prop6_bound_for_uniform_rates() {
    let nodes = 12;
    let gamma = 3;
    let mut net = network(6, nodes, gamma);
    net.set_verification_workload(VerificationWorkload::Disabled);
    net.run_slots(30);
    let schedule = GenerationSchedule::uniform(nodes);
    let bound = analysis::prop6_message_upper_bound(&schedule, gamma, nodes);
    for owner in 1..5u32 {
        let target = net.node(NodeId(owner)).store().get(0).unwrap().id;
        let report = net.run_pop(NodeId(0), target, false);
        assert!(report.is_success());
        assert!(
            report.metrics.total_messages() <= bound,
            "{} messages vs bound {bound}",
            report.metrics.total_messages()
        );
    }
}

#[test]
fn pop_report_paths_are_dag_paths_with_distinct_count() {
    let mut net = network(7, 12, 4);
    net.set_verification_workload(VerificationWorkload::Disabled);
    net.run_slots(24);
    let dag = LogicalDag::build(net.nodes());
    for owner in [1u32, 3, 5] {
        let target = net.node(NodeId(owner)).store().get(1).unwrap().id;
        let report = net.run_pop(NodeId(0), target, false);
        assert!(report.is_success(), "owner {owner}");
        let digests: Vec<_> = report.path.iter().map(|s| s.digest).collect();
        assert!(dag.is_valid_path(&digests));
        let mut owners: Vec<NodeId> = report.path.iter().map(|s| s.owner).collect();
        owners.sort_unstable();
        owners.dedup();
        assert_eq!(owners.len(), report.distinct_nodes);
        assert!(report.distinct_nodes >= net.config().consensus_threshold());
    }
}

#[test]
fn mixed_rate_fleet_still_verifies() {
    let nodes = 12;
    let mut rng = DetRng::seed_from(8);
    let topology = Topology::random_connected(
        &TopologyConfig {
            nodes,
            side_m: 300.0,
            ..TopologyConfig::paper_default()
        },
        &mut rng,
    );
    let schedule = GenerationSchedule::random_periods(nodes, &[1, 2], &mut rng);
    let cfg = ProtocolConfig::test_default().with_gamma(3);
    let mut net = TldagNetwork::new(cfg, topology, schedule, 8);
    net.set_verification_workload(VerificationWorkload::RandomPast { min_age_slots: 12 });
    net.run_slots(40);
    let (attempts, successes) = net.pop_counters();
    assert!(attempts > 0);
    // Mixed rates create micro-loops and occasionally orphaned blocks
    // (digests replaced before any neighbor generated); most verifications
    // must still succeed.
    assert!(
        successes as f64 >= attempts as f64 * 0.8,
        "{successes}/{attempts}"
    );
}
