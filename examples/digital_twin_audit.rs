//! Digital-twin audit: the paper's motivating scenario (Sec. I).
//!
//! A factory digital twin consumes telemetry from machine-mounted sensors.
//! Before trusting a historical reading for a maintenance decision, the
//! operator audits it: retrieve the block, check the sample's Merkle
//! inclusion proof against the signed root, and run Proof-of-Path so that
//! γ + 1 independent nodes vouch the block was never rewritten. The second
//! half of the demo shows the audit catching a tampered sensor.
//!
//! Run with: `cargo run --example digital_twin_audit`

use tldag::core::attack::Behavior;
use tldag::core::config::ProtocolConfig;
use tldag::core::network::TldagNetwork;
use tldag::core::workload::VerificationWorkload;
use tldag::crypto::merkle::MerkleTree;
use tldag::sim::engine::GenerationSchedule;
use tldag::sim::topology::{Topology, TopologyConfig};
use tldag::sim::{DetRng, NodeId};

fn main() {
    // A production cell: 20 sensor nodes across the factory floor.
    let mut rng = DetRng::seed_from(7);
    let topology = Topology::random_connected(
        &TopologyConfig {
            nodes: 20,
            side_m: 250.0,
            ..TopologyConfig::paper_default()
        },
        &mut rng,
    );
    let cfg = ProtocolConfig::paper_default()
        .with_body_bits(8 * 256)
        .with_gamma(4)
        .with_difficulty(6);
    let mut plant = TldagNetwork::new(cfg, topology, GenerationSchedule::uniform(20), 7);
    plant.set_verification_workload(VerificationWorkload::Disabled);
    plant.run_slots(30);

    // --- Audit 1: an honest vibration sensor (n4), reading from slot 3. ---
    let sensor = NodeId(4);
    let operator = NodeId(0);
    let block_id = plant.node(sensor).store().get(3).expect("slot-3 block").id;

    println!("== audit of {block_id} (honest sensor) ==");
    let report = plant.run_pop(operator, block_id, true);
    println!(
        "  PoP: {:?}, {} vouching nodes, {} messages",
        report.outcome.as_ref().map(|_| "consensus"),
        report.distinct_nodes,
        report.metrics.total_messages()
    );

    // The operator can additionally audit one sample inside the body with a
    // Merkle inclusion proof — no need to trust the transport.
    let tldag::core::node::BlockFetch::Served(block) = plant.node(sensor).serve_block(block_id)
    else {
        panic!("honest sensor serves its block");
    };
    let chunk_bytes = plant.config().merkle_chunk_bytes;
    let chunks: Vec<&[u8]> = block.body.payload.chunks(chunk_bytes).collect();
    let tree = MerkleTree::build(chunks.iter());
    let proof = tree.proof(0).expect("payload has at least one chunk");
    let sample_ok = proof.verify(&block.header.root, chunks[0]);
    println!("  sample[0] Merkle inclusion vs signed root: {sample_ok}");

    // --- Audit 2: a compromised sensor that rewrote its history. ---
    let rogue = NodeId(9);
    let rogue_block = plant.node(rogue).store().get(3).expect("slot-3 block").id;
    plant.set_behavior(rogue, Behavior::CorruptStore);

    println!("\n== audit of {rogue_block} (tampered store) ==");
    let report = plant.run_pop(operator, rogue_block, false);
    match report.outcome {
        Ok(()) => println!("  UNEXPECTED: tampering went unnoticed"),
        Err(e) => println!("  audit rejected the block: {e}"),
    }

    // --- Audit 3: the tampered node cannot hide behind silence either. ---
    plant.set_behavior(rogue, Behavior::Unresponsive);
    let report = plant.run_pop(operator, rogue_block, false);
    match report.outcome {
        Ok(()) => println!("  UNEXPECTED: silent node verified"),
        Err(e) => println!("  silent sensor also fails the audit: {e}"),
    }

    println!("\nconclusion: decisions based on {block_id} are safe; {rogue_block} is not.");
}
