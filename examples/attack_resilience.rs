//! Attack resilience: walks through the adversaries of Sec. IV-D and shows
//! how 2LDAG/PoP defeats each one.
//!
//! Run with: `cargo run --example attack_resilience`

use tldag::core::attack::Behavior;
use tldag::core::config::ProtocolConfig;
use tldag::core::network::TldagNetwork;
use tldag::core::workload::VerificationWorkload;
use tldag::sim::engine::GenerationSchedule;
use tldag::sim::fault::{FaultPlan, MaliciousPlacement};
use tldag::sim::topology::{Topology, TopologyConfig};
use tldag::sim::{DetRng, NodeId};

fn fresh_network(seed: u64) -> TldagNetwork {
    let mut rng = DetRng::seed_from(seed);
    let topology = Topology::random_connected(
        &TopologyConfig {
            nodes: 16,
            side_m: 220.0,
            ..TopologyConfig::paper_default()
        },
        &mut rng,
    );
    let cfg = ProtocolConfig::paper_default()
        .with_body_bits(8 * 128)
        .with_gamma(4)
        .with_difficulty(4);
    let mut net = TldagNetwork::new(cfg, topology, GenerationSchedule::uniform(16), seed);
    net.set_verification_workload(VerificationWorkload::Disabled);
    net.run_slots(24);
    net
}

fn verdict(label: &str, ok: bool, detail: String) {
    println!("{} {label}: {detail}", if ok { "✓" } else { "✗" });
}

fn main() {
    let operator = NodeId(0);

    // --- 1. Majority-style attack: a third of the nodes stop cooperating. ---
    {
        let mut net = fresh_network(1);
        let topo = net.topology().clone();
        let plan = FaultPlan::select(
            &topo,
            5,
            MaliciousPlacement::Uniform,
            &mut DetRng::seed_from(99),
        );
        net.apply_fault_plan(&plan, Behavior::Unresponsive);
        let honest_owner = plan
            .honest_ids()
            .into_iter()
            .find(|&id| id != operator)
            .expect("an honest node exists");
        let target = net.node(honest_owner).store().get(0).unwrap().id;
        let report = net.run_pop(operator, target, false);
        verdict(
            "majority attack (5/16 silent)",
            report.is_success(),
            format!(
                "consensus with {} distinct nodes despite silent third",
                report.distinct_nodes
            ),
        );
    }

    // --- 2. Sybil attack: a node impersonates another identity. ---
    {
        let mut net = fresh_network(2);
        let sybil = NodeId(3);
        net.set_behavior(sybil, Behavior::SybilImpersonator { claimed: 11 });
        let target = net.node(NodeId(5)).store().get(0).unwrap().id;
        let report = net.run_pop(operator, target, false);
        let clean_path = report.path.iter().all(|s| s.owner != sybil);
        verdict(
            "Sybil impersonation",
            report.is_success() && clean_path,
            format!(
                "forged replies rejected by key check; consensus via {} other nodes",
                report.distinct_nodes
            ),
        );
    }

    // --- 3. DoS flooding: digests faster than the puzzle allows. ---
    {
        let mut net = fresh_network(3);
        let flooder = NodeId(2);
        net.set_behavior(flooder, Behavior::Flooder { rate_multiplier: 6 });
        net.run_slots(2);
        let banned_by = net
            .topology()
            .neighbors(flooder)
            .iter()
            .filter(|&&nb| net.node(nb).blacklist().is_banned(flooder))
            .count();
        verdict(
            "DoS flooding",
            banned_by > 0,
            format!(
                "{banned_by}/{} neighbors banned the flooder (puzzle rate check)",
                net.topology().degree(flooder)
            ),
        );
    }

    // --- 4. Selfish node: generates data but never answers. ---
    {
        let mut net = fresh_network(4);
        let selfish = NodeId(6);
        net.set_behavior(selfish, Behavior::Selfish);
        // Its own data becomes unverifiable...
        let own = net.node(selfish).store().get(0).unwrap().id;
        let own_report = net.run_pop(operator, own, false);
        // ...while the rest of the network still reaches consensus.
        let other = net.node(NodeId(8)).store().get(0).unwrap().id;
        let other_report = net.run_pop(operator, other, true);
        verdict(
            "selfish node",
            !own_report.is_success() && other_report.is_success(),
            "its blocks lose verifiability; everyone else's remain fine".to_string(),
        );
    }

    // --- 5. Eclipse attack: every neighbor of one victim corrupts its
    //        replies, and the auditor is outside the ring. The forged
    //        headers are detected (signature/digest checks), so the attack
    //        can deny verification of the victim's data but never forge a
    //        successful audit. ---
    {
        let mut net = fresh_network(5);
        let victim = net
            .topology()
            .node_ids()
            .find(|&id| id != operator && !net.topology().are_neighbors(id, operator))
            .expect("a non-adjacent victim exists");
        let neighbors: Vec<NodeId> = net.topology().neighbors(victim).to_vec();
        for &nb in &neighbors {
            net.set_behavior(nb, Behavior::CorruptReply);
        }
        let target = net.node(victim).store().get(0).unwrap().id;
        let report = net.run_pop(operator, target, false);
        verdict(
            "eclipse ring (corrupt replies)",
            report.metrics.invalid_replies > 0 && !report.is_success(),
            format!(
                "{} forged replies detected; audit denied but never forged ({:?})",
                report.metrics.invalid_replies,
                report.outcome.err().map(|e| e.to_string())
            ),
        );
    }

    // --- 6. Tampered storage: rewriting history breaks the Merkle root. ---
    {
        let mut net = fresh_network(6);
        let rogue = NodeId(10);
        net.set_behavior(rogue, Behavior::CorruptStore);
        let target = net.node(rogue).store().get(0).unwrap().id;
        let report = net.run_pop(operator, target, false);
        verdict(
            "storage tampering",
            !report.is_success(),
            format!(
                "audit outcome: {:?}",
                report.outcome.err().map(|e| e.to_string())
            ),
        );
    }
}
