//! Fleet telemetry at mixed data rates: compares what a city-scale sensor
//! fleet pays to run 2LDAG versus replicated ledgers, and shows the
//! micro-loop effect of heterogeneous generation rates (Fig. 6 of the
//! paper) on proof-path lengths.
//!
//! Run with: `cargo run --example fleet_telemetry`

use tldag::baselines::iota::IotaNetwork;
use tldag::baselines::ledger::LedgerSim;
use tldag::baselines::pbft::PbftNetwork;
use tldag::baselines::BaselineConfig;
use tldag::core::config::ProtocolConfig;
use tldag::core::network::TldagNetwork;
use tldag::core::workload::VerificationWorkload;
use tldag::sim::bus::TrafficClass;
use tldag::sim::engine::GenerationSchedule;
use tldag::sim::topology::{Topology, TopologyConfig};
use tldag::sim::{Bits, DetRng, NodeId};

fn main() {
    let nodes = 24;
    let slots = 60;
    let body = Bits::from_kilobytes(64); // 64 kB per telemetry block
    let mut rng = DetRng::seed_from(99);
    let topology = Topology::random_connected(
        &TopologyConfig {
            nodes,
            side_m: 350.0,
            ..TopologyConfig::paper_default()
        },
        &mut rng,
    );

    // Heterogeneous fleet: traffic cameras every slot, air-quality sensors
    // every other slot, parking sensors every fourth.
    let schedule = GenerationSchedule::random_periods(nodes, &[1, 2, 4], &mut rng);

    let cfg = ProtocolConfig::paper_default()
        .with_body_bits(body.bits())
        .with_gamma(5)
        .with_difficulty(6);
    let mut tldag = TldagNetwork::new(cfg, topology.clone(), schedule, 99);
    tldag.set_verification_workload(VerificationWorkload::RandomPast {
        min_age_slots: nodes as u64,
    });

    let base = BaselineConfig::paper_default().with_body_bits(body.bits());
    let mut pbft = PbftNetwork::new(base, topology.clone(), 99);
    let mut iota = IotaNetwork::new(base, topology.clone(), 99);

    for _ in 0..slots {
        LedgerSim::step(&mut tldag);
        pbft.step();
        iota.step();
    }

    println!("== fleet of {nodes} sensors, {slots} slots, 64 kB blocks ==\n");
    println!(
        "{:<8} {:>16} {:>20}",
        "system", "storage MB/node", "comm Mb/node (tx)"
    );
    let tldag_comm = tldag
        .accounting()
        .mean_node_tx(TrafficClass::DagConstruction)
        .as_megabits()
        + tldag
            .accounting()
            .mean_node_tx(TrafficClass::Consensus)
            .as_megabits();
    println!(
        "{:<8} {:>16.2} {:>20.3}",
        "2LDAG",
        tldag.mean_storage_mb(),
        tldag_comm
    );
    println!(
        "{:<8} {:>16.2} {:>20.3}",
        "PBFT",
        pbft.storage_bits_per_node()[0].as_megabytes(),
        pbft.accounting()
            .mean_node_tx(TrafficClass::Pbft)
            .as_megabits()
    );
    println!(
        "{:<8} {:>16.2} {:>20.3}",
        "IOTA",
        iota.storage_bits_per_node()[0].as_megabytes(),
        iota.accounting()
            .mean_node_tx(TrafficClass::IotaGossip)
            .as_megabits()
    );

    let (attempts, successes) = tldag.pop_counters();
    println!("\n2LDAG verification workload: {successes}/{attempts} PoP runs reached consensus");

    // Micro-loops: verify a block of a fast node whose neighborhood includes
    // slow nodes — the proof path revisits owners, exactly Fig. 6.
    let fast = topology
        .node_ids()
        .find(|&id| tldag.node(id).chain_len() as u64 >= slots)
        .expect("some node generates every slot");
    let target = tldag.node(fast).store().get(0).unwrap().id;
    let report = tldag.run_pop(NodeId((fast.0 + 1) % nodes as u32), target, false);
    if report.is_success() {
        let owners: Vec<String> = report.path.iter().map(|s| s.owner.to_string()).collect();
        let distinct = report.distinct_nodes;
        println!(
            "\nproof path for {target}: {} blocks over {} distinct nodes (micro-loops = {})",
            report.path.len(),
            distinct,
            report.path.len().saturating_sub(distinct)
        );
        println!("  path owners: {}", owners.join(" → "));
    } else {
        println!(
            "\nproof for {target} did not complete: {:?}",
            report.outcome
        );
    }
}
