//! Fleet telemetry: the observability toolkit on a live 2LDAG fleet.
//!
//! Runs a city-scale sensor fleet in-process and demonstrates the
//! `tldag::obs` primitives end to end — the same ones every deployed
//! `tldag node --metrics-addr` serves over HTTP:
//!
//! * **Phase-latency histograms** — the engine times every slot-loop
//!   phase (generate/exchange/gossip/verify/commit) into lock-free
//!   log-bucketed histograms; quantiles come out without ever locking
//!   the hot path.
//! * **Ad-hoc histograms** — [`tldag::obs::LatencyHistogram`] timing PoP
//!   verifications from the outside.
//! * **The event journal** — a bounded ring of structured events,
//!   dumped as JSONL (the `/journal` route's format).
//! * **Exposition round trip** — rendering Prometheus-style text with
//!   [`tldag::obs::Expo`] and re-estimating quantiles from the parsed
//!   buckets, which is exactly what `tldag status` does to a live
//!   cluster.
//!
//! Run with: `cargo run --example fleet_telemetry`

use tldag::core::block::BlockId;
use tldag::core::config::ProtocolConfig;
use tldag::core::network::TldagNetwork;
use tldag::core::workload::VerificationWorkload;
use tldag::obs::{
    histogram_quantile, parse_exposition, EventKind, Expo, Journal, LatencyHistogram,
};
use tldag::sim::engine::GenerationSchedule;
use tldag::sim::topology::{Topology, TopologyConfig};
use tldag::sim::{DetRng, NodeId};

fn main() {
    let nodes = 24;
    let slots = 60;
    let mut rng = DetRng::seed_from(99);
    let topology = Topology::random_connected(
        &TopologyConfig {
            nodes,
            side_m: 350.0,
            ..TopologyConfig::paper_default()
        },
        &mut rng,
    );

    // Heterogeneous fleet: traffic cameras every slot, air-quality sensors
    // every other slot, parking sensors every fourth.
    let schedule = GenerationSchedule::random_periods(nodes, &[1, 2, 4], &mut rng);
    let cfg = ProtocolConfig::paper_default()
        .with_gamma(5)
        .with_difficulty(6);
    let mut net = TldagNetwork::new(cfg, topology, schedule, 99);
    net.set_verification_workload(VerificationWorkload::RandomPast {
        min_age_slots: nodes as u64,
    });
    net.run_slots(slots);

    // --- 1. The engine's always-on phase timings.
    println!("== slot-loop phase latencies over {slots} slots ({nodes} sensors) ==\n");
    println!(
        "{:<10} {:>8} {:>9} {:>9} {:>9} {:>9}",
        "phase", "count", "p50 µs", "p90 µs", "p99 µs", "max µs"
    );
    for (phase, snap) in net.phase_timings().snapshot() {
        println!(
            "{:<10} {:>8} {:>9} {:>9} {:>9} {:>9}",
            phase.name(),
            snap.count,
            snap.p50(),
            snap.p90(),
            snap.p99(),
            snap.max_micros
        );
    }

    // --- 2. An ad-hoc histogram + journal around PoP verifications.
    let pop_rtt = LatencyHistogram::new();
    let journal = Journal::bounded(64);
    let validator = NodeId(0);
    for owner in 1..6u32 {
        let target = BlockId::new(NodeId(owner), 0);
        let report = pop_rtt.time(|| net.run_pop(validator, target, false));
        journal.record(
            slots,
            EventKind::Pop,
            format!(
                "verify {target}: {} ({} msgs)",
                if report.is_success() { "ok" } else { "failed" },
                report.metrics.total_messages()
            ),
        );
    }
    let snap = pop_rtt.snapshot();
    println!(
        "\nPoP verification wall clock: {} runs, p50 {} µs, max {} µs",
        snap.count,
        snap.p50(),
        snap.max_micros
    );

    // --- 3. The journal as JSONL — the `/journal` route's exact format.
    println!("\n== event journal (JSONL) ==\n{}", journal.to_jsonl());

    // --- 4. Exposition round trip: render → parse → re-estimate, the
    // `tldag status` path in miniature.
    let mut expo = Expo::new();
    expo.gauge("fleet_slot", "Slots executed.", slots as f64);
    expo.histogram(
        "fleet_pop_rtt_micros",
        "PoP verification wall clock.",
        &[(&[], &snap)],
    );
    let text = expo.finish();
    let samples = parse_exposition(&text).expect("own exposition parses");
    let p50 = histogram_quantile(&samples, "fleet_pop_rtt_micros", &[], 0.5).expect("quantile");
    println!("== scraped back from the exposition ==\n");
    print!("{text}");
    println!(
        "\nre-estimated p50 from scraped buckets: {p50} µs (recorded p50: {} µs)",
        snap.p50()
    );
}
