//! Quickstart: build a small IoT network, let it generate sensed data for a
//! while, then verify one node's block with Proof-of-Path.
//!
//! Run with: `cargo run --example quickstart`

use tldag::core::config::ProtocolConfig;
use tldag::core::network::TldagNetwork;
use tldag::core::workload::VerificationWorkload;
use tldag::sim::engine::GenerationSchedule;
use tldag::sim::topology::{Topology, TopologyConfig};
use tldag::sim::{DetRng, NodeId};

fn main() {
    // 1. Deploy 12 IoT nodes with a 50 m radio range, placed one by one so
    //    the network is connected (the paper's Sec. VI procedure).
    let mut rng = DetRng::seed_from(42);
    let topo_cfg = TopologyConfig {
        nodes: 12,
        side_m: 300.0,
        ..TopologyConfig::paper_default()
    };
    let topology = Topology::random_connected(&topo_cfg, &mut rng);
    println!(
        "deployed {} nodes, {} links, diameter {:?} hops",
        topology.len(),
        topology.edge_count(),
        topology.diameter().expect("connected")
    );

    // 2. Configure the protocol: tolerate γ = 3 malicious nodes, so PoP needs
    //    γ + 1 = 4 distinct vouching nodes per verification.
    let cfg = ProtocolConfig::paper_default()
        .with_body_bits(8 * 1024) // 1 kB sensor payloads for the demo
        .with_gamma(3)
        .with_difficulty(8); // a small generation puzzle (Eq. 5)

    // 3. Every node samples its sensors once per slot.
    let schedule = GenerationSchedule::uniform(topology.len());
    let mut network = TldagNetwork::new(cfg, topology, schedule, 42);
    network.set_verification_workload(VerificationWorkload::Disabled);

    // 4. Run 20 time slots of data generation + digest exchange.
    network.run_slots(20);
    println!(
        "after 20 slots: {} blocks network-wide, node n0 stores {}",
        network.total_blocks(),
        network.node(NodeId(0)).storage_bits(network.config())
    );

    // 5. A digital twin asks node n0 to verify node n7's first reading.
    let target = network
        .node(NodeId(7))
        .store()
        .get(0)
        .expect("block exists")
        .id;
    let report = network.run_pop(NodeId(0), target, true);
    match report.outcome {
        Ok(()) => {
            println!(
                "PoP consensus on {target}: {} distinct nodes vouch via a {}-block path",
                report.distinct_nodes,
                report.path.len()
            );
            println!(
                "cost: {} messages, {} on the air",
                report.metrics.total_messages(),
                report.metrics.total_bits()
            );
        }
        Err(e) => println!("verification failed: {e}"),
    }

    // 6. The proof path is cached (H_i), so re-verifying is nearly free.
    let again = network.run_pop(NodeId(0), target, false);
    println!(
        "re-verification: {} REQ_CHILD messages ({} TPS cache extensions)",
        again.metrics.req_child_sent, again.metrics.tps_extensions
    );
}
